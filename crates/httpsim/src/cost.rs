//! The CPU/disk cost model for the pseudo-server and the proxies.
//!
//! The paper measures server load with `iostat` on a SPARC-20; we charge
//! explicit CPU time per operation instead. Absolute values are calibrated
//! to mid-1990s workstation magnitudes, but — as the paper itself says of
//! its load numbers — they are "only meaningful for comparison purposes".

use wcc_types::{ByteSize, SimDuration};

/// Per-operation CPU and disk costs.
///
/// # Examples
///
/// ```
/// use wcc_httpsim::CostModel;
/// use wcc_types::ByteSize;
///
/// let costs = CostModel::default();
/// let big = costs.serve_200_cpu(ByteSize::from_kib(100));
/// let small = costs.serve_200_cpu(ByteSize::from_kib(1));
/// assert!(big > small);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Parsing + dispatching any incoming HTTP request at the server.
    pub request_parse: SimDuration,
    /// Appending one line to the server's request log (all three protocols
    /// log every request — that is why the paper's disk write rates are
    /// similar across approaches).
    pub log_write_cpu: SimDuration,
    /// Base cost of assembling a `200` reply.
    pub serve_200_base: SimDuration,
    /// Additional `200` cost per KiB of *stored* (scaled) document.
    pub serve_200_per_kib: SimDuration,
    /// Cost of a `304 Not Modified` reply.
    pub serve_304: SimDuration,
    /// Reading a document from disk on an accelerator memory-cache miss.
    pub disk_read_cpu: SimDuration,
    /// Sending one `INVALIDATE` over TCP (connection setup dominates — this
    /// is the cost that makes synchronous fan-out stall the server).
    pub inval_send: SimDuration,
    /// Marginal cost of one extra entry riding a batched `INVALIDATE`
    /// round. A batch pays `inval_send` once (the connection) plus this
    /// per entry, so coalesced fan-out amortises the dominant setup cost.
    pub inval_batch_entry: SimDuration,
    /// Processing a modifier check-in.
    pub notify_cpu: SimDuration,
    /// Processing an invalidation acknowledgement.
    pub ack_cpu: SimDuration,
    /// Proxy-side work to handle one user request (driver + proxy parse).
    pub proxy_request_cpu: SimDuration,
    /// Proxy-side work to serve a cache hit locally (also the latency a
    /// pure cache hit exhibits).
    pub proxy_hit_cpu: SimDuration,
    /// Proxy-side work to process an incoming `INVALIDATE`.
    pub proxy_inval_cpu: SimDuration,
    /// The factor by which stored documents are scaled down (the paper's
    /// disk-space trick; message *bytes* are accounted at full size).
    pub doc_scale: u64,
}

impl CostModel {
    /// The `200` serve cost for a document of the given (unscaled) size.
    pub fn serve_200_cpu(&self, size: ByteSize) -> SimDuration {
        let scaled_kib = size.as_u64() / self.doc_scale.max(1) / 1024;
        self.serve_200_base + self.serve_200_per_kib.saturating_mul(scaled_kib + 1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            request_parse: SimDuration::from_micros(200),
            log_write_cpu: SimDuration::from_micros(100),
            serve_200_base: SimDuration::from_micros(500),
            serve_200_per_kib: SimDuration::from_micros(150),
            serve_304: SimDuration::from_micros(300),
            disk_read_cpu: SimDuration::from_micros(800),
            inval_send: SimDuration::from_micros(1_800),
            inval_batch_entry: SimDuration::from_micros(150),
            notify_cpu: SimDuration::from_micros(300),
            ack_cpu: SimDuration::from_micros(100),
            proxy_request_cpu: SimDuration::from_micros(8_000),
            proxy_hit_cpu: SimDuration::from_micros(1_500),
            proxy_inval_cpu: SimDuration::from_micros(300),
            doc_scale: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_cost_scales_with_size() {
        let c = CostModel::default();
        // 21 KiB unscaled → 0.21 KiB stored → base + per_kib ≈ 0.95 ms.
        let t = c.serve_200_cpu(ByteSize::from_kib(21));
        assert!(t >= c.serve_200_base);
        assert!(t < SimDuration::from_millis(2));
        // 2 MiB unscaled → ~20 KiB stored → noticeably slower.
        let big = c.serve_200_cpu(ByteSize::from_mib(2));
        assert!(big > t);
    }

    #[test]
    fn zero_scale_guard() {
        let c = CostModel {
            doc_scale: 0,
            ..CostModel::default()
        };
        // Must not divide by zero.
        let _ = c.serve_200_cpu(ByteSize::from_kib(4));
    }

    #[test]
    fn inval_send_dominates_304() {
        // The stall phenomenon requires invalidation sends to be expensive
        // relative to ordinary request handling.
        let c = CostModel::default();
        assert!(c.inval_send > c.serve_304);
    }

    #[test]
    fn batch_entries_amortise_connection_setup() {
        // A k-entry batch must be cheaper than k standalone sends, or the
        // proposer would trade messages for more CPU.
        let c = CostModel::default();
        let k = 8;
        let batch = c.inval_send + c.inval_batch_entry.saturating_mul(k);
        assert!(batch < c.inval_send.saturating_mul(k));
    }
}
