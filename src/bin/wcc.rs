//! `wcc` — the command-line front end to the webcache reproduction.
//!
//! ```text
//! wcc replay  --trace epa --protocol invalidation [--lifetime-days N]
//!             [--scale N] [--seed N] [--wan] [--decoupled] [--hierarchy]
//!             [--shared] [--lease-days N] [--adaptive-lease] [--cache-mib N]
//!             [--inval-batch N] [--shards N|auto] [--trace-out PATH]
//!             [--metrics]
//! wcc replay  --family flash-crowd [--protocol NAME] [--scale N] [--seed N]
//!             [--shards N|auto] [--audit]     # city-scale scenario families
//! wcc trio    --trace sask [--scale N] [--seed N] [--jobs N]  # Tables 3/4 block
//! wcc trace   <path>                                # analyse a --trace-out log
//! wcc summary [--scale N] [--seed N]                # Table 2
//! wcc clf     <path> [--protocol NAME]              # replay a real log
//! wcc fuzz    [--iters N] [--seed N] [--shrink] [--inject-stale]
//!             [--repro PATH] [--jobs N]             # scenario fuzzer
//! wcc serve   [--role pair|origin|proxy] [...]      # reactor-served daemon
//! wcc bench serve [--connections N] [...]           # keep-alive stress bench
//!
//! `--jobs N` (or the `WCC_JOBS` environment variable) sets the worker
//! count for commands that fan independent replays out over threads; the
//! output is byte-identical at any job count.
//!
//! `--shards N` (or `WCC_SHARDS`) splits a *single* replay across engine
//! shards running on worker threads (conservative lookahead windows); the
//! output is byte-identical at any shard count. Default 1 (sequential).
//! `--shards auto` requests the standard 8-shard engine configuration
//! capped at the host's core count — on a 1-core box it resolves to a
//! plain sequential replay instead of paying the barrier tax for
//! parallelism the host cannot deliver.
//!
//! `--inval-batch N` turns on the batched invalidation proposer with a
//! count threshold of `N` entries (age and byte thresholds at their
//! defaults); `--adaptive-lease` derives per-document lease durations from
//! read/write counters instead of one fixed length. Family replays bound
//! the adaptive cap by the tightest per-client freshness deadline the
//! workload carries.
//!
//! `--trace-out PATH` records every request and invalidation lifetime as
//! structured span events (sim-time keyed, deterministic) and dumps them as
//! JSONL; `wcc trace PATH` reconstructs cross-node causality from such a
//! dump. `--metrics` prints the replay's measurements as a Prometheus text
//! exposition — the same format the TCP prototype serves on `GET /metrics`.
//! wcc protocols                                     # list protocol names
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use webcache::bench::serve::{self as serve_bench, ServeBenchConfig};
use webcache::core::{AdaptiveLeaseConfig, ProtocolConfig, ProtocolKind};
use webcache::fuzz::{fuzz, FuzzConfig};
use webcache::httpsim::{CacheSharing, Deployment, DeploymentOptions, InvalSendMode, Topology};
use webcache::net::{scrape, NetOrigin, NetProxy, OriginConfig};
use webcache::proto::{encode, FrameReader, GetRequest, HttpMsg, HttpMsgRef, RequestId};
use webcache::reactor::{Poller, Signals, SIGHUP, SIGINT, SIGTERM};
use webcache::replay::tables::{format_table5_column, format_trio_block};
use webcache::replay::{ExperimentConfig, ReplayReport};
use webcache::simnet::NetworkConfig;
use webcache::traces::clf::parse_clf;
use webcache::traces::family::{self, FamilyConfig, WorkloadFamily};
use webcache::traces::{synthetic, ModSchedule, TraceSpec, TraceSummary};
use webcache::types::{ByteSize, ClientId, InvalBatchConfig, ServerId, SimDuration, SimTime, Url};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match raw.peek() {
                    Some(v) if !v.starts_with("--") => raw.next(),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  wcc replay  --trace NAME --protocol NAME [--lifetime-days N] [--scale N]\n              [--seed N] [--wan] [--decoupled] [--hierarchy] [--shared]\n              [--lease-days N] [--volume-mins N] [--adaptive-lease]\n              [--cache-mib N] [--audit] [--inval-batch N] [--shards N|auto]\n              [--trace-out PATH] [--metrics]\n  wcc replay  --family NAME [--protocol NAME] [--scale N] [--seed N]\n              [--shards N|auto] [--audit]   # families: zipf-federation,\n              flash-crowd, breaking-news, real-time-feed, archival-scan\n  wcc trio    --trace NAME [--scale N] [--seed N] [--jobs N]\n  wcc compare --trace NAME --protocols a,b,c [--scale N] [--seed N] [--jobs N]\n  wcc trace   PATH\n  wcc summary [--scale N] [--seed N]\n  wcc clf     PATH [--protocol NAME]\n  wcc fuzz    [--iters N] [--seed N] [--shrink] [--inject-stale] [--repro PATH]\n              [--jobs N]\n  wcc serve   [--role pair|origin|proxy] [--origin ADDR] [--port N] [--docs N]\n              [--doc-scale N] [--protocol NAME] [--cache-mib N]\n              [--port-file PATH] [--state-file PATH] [--config PATH]\n              [--self-check]        # SIGHUP reloads --config; SIGTERM drains\n  wcc bench serve [--connections N] [--requests N] [--docs N] [--protocol NAME]\n              [--soak-secs N] [--restart] [--in-process] [--out PATH]\n  wcc protocols"
}

fn spec_for(args: &Args) -> Result<TraceSpec, String> {
    let name = args.value("trace").unwrap_or("epa");
    let spec = TraceSpec::by_name(name)
        .ok_or_else(|| format!("unknown trace {name:?}; try epa/sdsc/clarknet/nasa/sask"))?;
    let scale = args.num("scale", 1)?.max(1);
    Ok(spec.scaled_down(scale))
}

fn protocol_for(args: &Args) -> Result<ProtocolConfig, String> {
    let name = args.value("protocol").unwrap_or("invalidation");
    let kind = ProtocolKind::from_name(name).ok_or_else(|| {
        let names: Vec<_> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown protocol {name:?}; one of {}", names.join(", "))
    })?;
    let mut cfg = ProtocolConfig::new(kind);
    if let Some(days) = args.value("lease-days") {
        let days: u64 = days
            .parse()
            .map_err(|_| "--lease-days expects a number".to_string())?;
        cfg = cfg.with_lease(SimDuration::from_days(days));
    }
    if let Some(mins) = args.value("volume-mins") {
        let mins: u64 = mins
            .parse()
            .map_err(|_| "--volume-mins expects a number".to_string())?;
        cfg = cfg.with_volume_lease(SimDuration::from_mins(mins));
    }
    if args.flag("adaptive-lease") {
        cfg = cfg.with_adaptive_lease(AdaptiveLeaseConfig::default());
    }
    Ok(cfg)
}

fn options_for(args: &Args) -> Result<DeploymentOptions, String> {
    let mut options = DeploymentOptions::default();
    if args.flag("wan") {
        options.network = NetworkConfig::wan();
    }
    if args.flag("decoupled") {
        options.send_mode = InvalSendMode::Decoupled;
    }
    if args.flag("hierarchy") {
        options.topology = Topology::Hierarchy;
        options.sharing = CacheSharing::SharedPerProxy;
    }
    if args.flag("shared") {
        options.sharing = CacheSharing::SharedPerProxy;
    }
    if args.flag("audit") {
        options.audit = true;
    }
    if let Some(mib) = args.value("cache-mib") {
        let mib: u64 = mib
            .parse()
            .map_err(|_| "--cache-mib expects a number".to_string())?;
        options.cache_capacity = ByteSize::from_mib(mib.max(1));
    }
    if args.value("inval-batch").is_some() {
        let entries = args.num("inval-batch", 0)? as usize;
        options.inval_batch = Some(InvalBatchConfig::with_max_entries(entries));
    }
    Ok(options)
}

/// `--jobs N` as passed (`None` defers to `WCC_JOBS` / the core count).
fn jobs_for(args: &Args) -> Result<Option<usize>, String> {
    Ok(match args.value("jobs") {
        None => None,
        Some(_) => Some(args.num("jobs", 0)? as usize),
    })
}

/// `--shards N` resolved through `WCC_SHARDS` (default 1, sequential).
/// `--shards auto` requests the acceptance 8-shard configuration capped at
/// the host's core count (`min(8, host_cores)`) — sequential on one core.
fn shards_for(args: &Args) -> Result<usize, String> {
    if args.value("shards") == Some("auto") {
        return Ok(webcache::replay::auto_shards(8));
    }
    let explicit = match args.value("shards") {
        None => None,
        Some(_) => Some(args.num("shards", 0)? as usize),
    };
    Ok(webcache::replay::effective_shards(explicit))
}

fn print_report(report: &ReplayReport) {
    let r = &report.raw;
    println!(
        "trace {} · protocol {} · lifetime {} · {} modifications · seed {}",
        report.trace, report.protocol, report.mean_lifetime, report.files_modified, report.seed
    );
    println!("  requests        {:>12}", r.requests);
    println!(
        "  hits            {:>12} ({:.1}%)",
        r.hits,
        r.hit_ratio() * 100.0
    );
    println!("  GET / IMS       {:>12} / {}", r.gets, r.ims);
    println!(
        "  200 / 304       {:>12} / {}",
        r.replies_200, r.replies_304
    );
    println!("  invalidations   {:>12}", r.invalidations);
    println!("  total messages  {:>12}", r.total_messages);
    println!("  total bytes     {:>12}", r.total_bytes.to_string());
    let fmt =
        |d: Option<webcache::types::SimDuration>| d.map_or("-".to_string(), |d| d.to_string());
    println!(
        "  latency         avg {} / min {} / max {}",
        fmt(r.latency.mean()),
        fmt(r.latency.min()),
        fmt(r.latency.max())
    );
    println!(
        "  latency tails   p50 {} / p90 {} / p99 {} / p99.9 {}",
        fmt(r.latency.median()),
        fmt(r.latency.p90()),
        fmt(r.latency.p99()),
        fmt(r.latency.p999())
    );
    println!("  server CPU      {:>11.1}%", r.server_cpu * 100.0);
    println!("  stale hits      {:>12}", r.stale_hits);
    println!(
        "  strong consistency: violations {} · writes complete {}",
        r.final_violations, r.writes_complete
    );
    if let Some(parent) = &r.parent {
        println!(
            "  hierarchy: parent hits {} · relayed {} invalidations · child lists {}",
            parent.counters.parent_hits,
            parent.counters.invalidations_relayed,
            parent.child_sitelist.total_entries
        );
    }
    if report.protocol.uses_invalidation() {
        println!("\n{}", format_table5_column(report));
    }
}

/// `wcc replay --family NAME`: replay a city-scale scenario family over a
/// multi-origin federation (`wcc_traces::family`). `--scale N` shrinks the
/// city preset proportionally (origin count is kept).
fn cmd_replay_family(args: &Args, name: &str) -> Result<(), String> {
    let family = WorkloadFamily::from_name(name).ok_or_else(|| {
        let names: Vec<_> = WorkloadFamily::ALL.iter().map(|f| f.name()).collect();
        format!("unknown family {name:?}; one of {}", names.join(", "))
    })?;
    if args.flag("hierarchy") || args.flag("decoupled") {
        return Err("--family runs a flat multi-origin federation; \
                    --hierarchy/--decoupled are single-origin modes"
            .to_string());
    }
    let scale = args.num("scale", 1)?.max(1);
    let seed = args.num("seed", 1997)?;
    let cfg = FamilyConfig::city(family).scaled_down(scale);
    let mut protocol = protocol_for(args)?;
    let options = options_for(args)?;
    let want_audit = options.audit;
    let shards = shards_for(args)?;

    let workload = family::generate(&cfg, seed);
    // Per-client freshness deadlines spread over [0.5, 1.5]× the family's
    // base, so an adaptively stretched lease must stay within half the base
    // or it could promise freshness past the tightest client's budget.
    if let (Some(lease), Some(base)) = (protocol.adaptive_lease, workload.freshness_deadline) {
        let tightest = SimDuration::from_micros(base.as_micros() / 2);
        protocol = protocol.with_adaptive_lease(lease.with_cap(lease.cap.min(tightest)));
    }
    let mut deployment = Deployment::build_multi(&workload.workloads, &protocol, options);
    deployment.run_sharded(shards);
    let report = ReplayReport {
        trace: cfg.name().to_string(),
        protocol: protocol.kind,
        mean_lifetime: cfg.mean_lifetime,
        files_modified: workload
            .workloads
            .iter()
            .map(|(_, m)| m.modifications().len() as u64)
            .sum(),
        seed,
        raw: deployment.collect(),
        audit: want_audit.then(|| deployment.audit()),
    };
    print_report(&report);
    println!(
        "  federation      {} origins · {} requests · {} shards",
        workload.workloads.len(),
        workload.total_requests(),
        shards
    );
    let mem = deployment.memory_model();
    println!(
        "  peak memory     {} (legacy layout {}, -{:.1}%)",
        ByteSize::from_bytes(mem.peak_bytes()),
        ByteSize::from_bytes(mem.legacy_peak_bytes()),
        mem.reduction_pct()
    );
    if workload.freshness_deadline.is_some() {
        let mut serves = Vec::new();
        for i in 0..deployment.proxy_ids().len() {
            serves.extend(
                deployment
                    .proxy(i)
                    .serves()
                    .iter()
                    .map(|s| (s.url, s.client, s.trace_at, s.version)),
            );
        }
        println!(
            "  freshness       {} of {} serves exceeded their per-client deadline",
            workload.freshness_violations(serves),
            report.raw.requests
        );
    }
    if let Some(audit) = &report.audit {
        println!("{audit}");
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    if let Some(name) = args.value("family") {
        let name = name.to_string();
        return cmd_replay_family(args, &name);
    }
    let spec = spec_for(args)?;
    let protocol = protocol_for(args)?;
    let seed = args.num("seed", 1997)?;
    let lifetime = match args.value("lifetime-days") {
        Some(d) => {
            let days: f64 = d
                .parse()
                .map_err(|_| "--lifetime-days expects a number".to_string())?;
            SimDuration::from_secs_f64(days * 86_400.0)
        }
        None => spec.default_lifetime,
    };
    let mut options = options_for(args)?;
    let trace_out = args.value("trace-out");
    // Span recording is write-only, so turning it on cannot perturb the
    // replay (the determinism suite asserts byte-identity).
    options.trace = trace_out.is_some();

    let trace = synthetic::generate(&spec, seed);
    let mods = ModSchedule::generate(spec.num_docs, lifetime, spec.duration, seed);
    let want_audit = options.audit;
    let shards = shards_for(args)?;
    let mut deployment = Deployment::build(&trace, &mods, &protocol, options);
    deployment.run_sharded(shards);
    if let Some(path) = trace_out {
        let log = deployment.trace_log();
        std::fs::write(path, webcache::obs::to_jsonl(&log))
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        println!("wrote {} trace events to {path}", log.len());
    }
    let report = ReplayReport {
        trace: trace.name.clone(),
        protocol: protocol.kind,
        mean_lifetime: lifetime,
        files_modified: mods.modifications().len() as u64,
        seed,
        raw: deployment.collect(),
        audit: want_audit.then(|| deployment.audit()),
    };
    print_report(&report);
    if let Some(audit) = &report.audit {
        println!("{audit}");
    }
    if args.flag("metrics") {
        println!(
            "\n{}",
            webcache::replay::tables::prometheus_snapshot(&report)
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let spec = spec_for(args)?;
    let seed = args.num("seed", 1997)?;
    let names = args
        .value("protocols")
        .unwrap_or("adaptive-ttl,poll-every-time,invalidation,volume-lease");
    let kinds: Result<Vec<ProtocolKind>, String> = names
        .split(',')
        .map(|n| {
            ProtocolKind::from_name(n.trim())
                .ok_or_else(|| format!("unknown protocol {n:?} (see `wcc protocols`)"))
        })
        .collect();
    let kinds = kinds?;
    let base = ExperimentConfig::builder(spec).seed(seed).build();
    let (trace, mods) = webcache::replay::experiment::materialise(&base);
    let configs: Vec<ExperimentConfig> = kinds
        .into_iter()
        .map(|kind| {
            let mut cfg = base.clone();
            cfg.protocol = ProtocolConfig::new(kind);
            cfg
        })
        .collect();
    let jobs = webcache::replay::effective_jobs(jobs_for(args)?);
    let reports: Vec<ReplayReport> =
        webcache::replay::parallel::map_indexed(&configs, jobs, |cfg| {
            webcache::replay::experiment::run_on(cfg, &trace, &mods)
        });
    println!("{}", format_trio_block(&reports));
    Ok(())
}

fn cmd_trio(args: &Args) -> Result<(), String> {
    let spec = spec_for(args)?;
    let seed = args.num("seed", 1997)?;
    let cfg = ExperimentConfig::builder(spec).seed(seed).build();
    let trio = webcache::replay::run_trio_jobs(&cfg, jobs_for(args)?);
    println!("{}", format_trio_block(&trio));
    Ok(())
}

fn cmd_summary(args: &Args) -> Result<(), String> {
    let scale = args.num("scale", 1)?.max(1);
    let seed = args.num("seed", 1997)?;
    println!("{}", TraceSummary::header());
    for spec in TraceSpec::all() {
        let trace = synthetic::generate(&spec.scaled_down(scale), seed);
        println!("{}", TraceSummary::of(&trace));
    }
    Ok(())
}

fn cmd_clf(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| "clf needs a file path".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (trace, skipped) = parse_clf(std::io::BufReader::new(file), path)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    println!(
        "parsed {} records ({skipped} skipped)\n{}\n{}",
        trace.records.len(),
        TraceSummary::header(),
        TraceSummary::of(&trace)
    );
    let protocol = protocol_for(args)?;
    let mods = ModSchedule::none(trace.doc_count() as u32);
    let mut deployment = Deployment::build(&trace, &mods, &protocol, DeploymentOptions::default());
    deployment.run();
    let report = ReplayReport {
        trace: trace.name.clone(),
        protocol: protocol.kind,
        mean_lifetime: SimDuration::ZERO,
        files_modified: 0,
        seed: 0,
        raw: deployment.collect(),
        audit: None,
    };
    print_report(&report);
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    use webcache::obs::{Histogram, Phase, SpanKind, TraceEvent};

    let path = args
        .positional
        .get(1)
        .ok_or_else(|| "trace needs a file path".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events =
        webcache::obs::from_jsonl(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    if events.is_empty() {
        println!("empty trace log");
        return Ok(());
    }

    let nodes: BTreeSet<&str> = events.iter().map(|e| e.node.as_str()).collect();
    println!(
        "{} events across {} nodes ({})",
        events.len(),
        nodes.len(),
        nodes.into_iter().collect::<Vec<_>>().join(", ")
    );

    // Request lifetimes: proxy-side spans, keyed by (node, span id). The
    // origin records its half under the wire RequestId instead — which the
    // proxy's Upstream/Reply events carry in `req`, so the join across
    // nodes goes proxy span → req id → origin event.
    let mut requests: BTreeMap<(&str, u64), Vec<&TraceEvent>> = BTreeMap::new();
    let mut origin_reqs: BTreeSet<u64> = BTreeSet::new();
    let mut invalidations: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in &events {
        match e.kind {
            SpanKind::Request if e.phase == Phase::Origin => {
                origin_reqs.insert(e.span);
            }
            SpanKind::Request => {
                requests
                    .entry((e.node.as_str(), e.span))
                    .or_default()
                    .push(e);
            }
            SpanKind::Invalidation => invalidations.entry(e.span).or_default().push(e),
        }
    }

    let mut fetch_latency = Histogram::default();
    let (mut hits, mut upstream_spans, mut joined) = (0u64, 0u64, 0u64);
    let mut slowest: Vec<(u64, String, u64)> = Vec::new();
    for ((node, span), evs) in &requests {
        if evs.iter().any(|e| e.phase == Phase::Hit) {
            hits += 1;
        }
        let first_upstream = evs.iter().find(|e| e.phase == Phase::Upstream);
        let last_reply = evs.iter().rev().find(|e| e.phase == Phase::Reply);
        if first_upstream.is_some() {
            upstream_spans += 1;
        }
        if let (Some(up), Some(reply)) = (first_upstream, last_reply) {
            let micros = (reply.at - up.at).as_micros();
            fetch_latency.record(micros);
            slowest.push((micros, format!("{node} span {span} {}", up.url), *span));
            if up.req.is_some_and(|req| origin_reqs.contains(&req)) {
                joined += 1;
            }
        }
    }

    let fmt_us = |us: Option<u64>| match us {
        Some(us) => SimDuration::from_micros(us).to_string(),
        None => "-".to_string(),
    };
    println!(
        "\nrequests: {} spans · {hits} cache hits · {upstream_spans} fetched upstream \
         ({joined} joined to an origin event)",
        requests.len()
    );
    println!(
        "  upstream latency  p50 {} / p90 {} / p99 {} / max {} (n={})",
        fmt_us(fetch_latency.p50()),
        fmt_us(fetch_latency.p90()),
        fmt_us(fetch_latency.p99()),
        fmt_us(fetch_latency.max()),
        fetch_latency.count()
    );

    let mut write_to_quorum = Histogram::default();
    let (mut writes, mut quorums, mut fanout, mut acks) = (0u64, 0u64, 0u64, 0u64);
    for evs in invalidations.values() {
        let write = evs.iter().find(|e| e.phase == Phase::Write);
        let quorum = evs.iter().rev().find(|e| e.phase == Phase::Quorum);
        writes += u64::from(write.is_some());
        quorums += u64::from(quorum.is_some());
        fanout += evs.iter().filter(|e| e.phase == Phase::Invalidate).count() as u64;
        acks += evs.iter().filter(|e| e.phase == Phase::Ack).count() as u64;
        if let (Some(w), Some(q)) = (write, quorum) {
            write_to_quorum.record((q.at - w.at).as_micros());
        }
    }
    println!(
        "invalidations: {writes} writes · {fanout} INVALIDATEs fanned out · \
         {acks} acks · {quorums} completed"
    );
    println!(
        "  write→complete    p50 {} / p90 {} / p99 {} / max {} (n={})",
        fmt_us(write_to_quorum.p50()),
        fmt_us(write_to_quorum.p90()),
        fmt_us(write_to_quorum.p99()),
        fmt_us(write_to_quorum.max()),
        write_to_quorum.count()
    );

    slowest.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
    if !slowest.is_empty() {
        println!("\nslowest upstream fetches:");
        for (micros, label, _) in slowest.iter().take(5) {
            println!(
                "  {:>12}  {label}",
                SimDuration::from_micros(*micros).to_string()
            );
        }
    }
    Ok(())
}

fn cmd_fuzz(args: &Args) -> Result<(), String> {
    let config = FuzzConfig {
        iters: args.num("iters", 100)?,
        seed: args.num("seed", 1)?,
        shrink: args.flag("shrink"),
        inject_stale_serve: args.flag("inject-stale"),
        jobs: jobs_for(args)?.unwrap_or(0),
    };
    let outcome = fuzz(&config);
    print!("{outcome}");
    if let Some(found) = &outcome.failure {
        let repro = found.repro();
        match args.value("repro") {
            Some(path) => {
                std::fs::write(path, &repro)
                    .map_err(|e| format!("cannot write repro to {path}: {e}"))?;
                println!("  repro written to {path}");
            }
            None => print!("\n{repro}"),
        }
    }
    if outcome.passed() {
        Ok(())
    } else {
        Err("fuzz: oracle violation (see repro above)".to_string())
    }
}

/// Reads a `--config` file (lines of `key=value`) and applies what is
/// reloadable at runtime. Today that is `doc_scale=N` on the origin; the
/// rest of the serving shape (ports, roles, protocol) is boot-only.
fn apply_serve_config(path: &str, origin: Option<&NetOrigin>) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("serve: cannot read {path}: {e}"))?;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once('=') {
            Some(("doc_scale", v)) => {
                let scale: u64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("serve: doc_scale expects a number, got {v:?}"))?;
                if let Some(origin) = origin {
                    origin.set_doc_scale(scale);
                    eprintln!("serve: reloaded doc_scale={scale}");
                }
            }
            _ => eprintln!("serve: ignoring unknown config line {line:?}"),
        }
    }
    Ok(())
}

/// Spawns a pair in-process, drives one keep-alive connection with two
/// pipelined requests, scrapes `/metrics`, and shuts down — the smoke
/// test `verify.sh` runs.
fn serve_self_check() -> Result<(), String> {
    use std::io::Write as _;
    let e = |err: std::io::Error| format!("serve self-check: {err}");
    let protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let origin = NetOrigin::spawn(OriginConfig {
        server: ServerId::new(0),
        doc_sizes: vec![ByteSize::from_kib(8); 8],
        protocol: protocol.clone(),
        doc_scale: 100,
        inval_batch: None,
    })
    .map_err(e)?;
    let proxy =
        NetProxy::spawn(origin.addr(), &protocol, 0, 1, ByteSize::from_mib(16)).map_err(e)?;

    let mut stream = std::net::TcpStream::connect(proxy.client_addr()).map_err(e)?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(e)?;
    let mut payload = Vec::new();
    let mut req = RequestId::default();
    for doc in 0..2u32 {
        req = req.next();
        payload.extend_from_slice(&encode(&HttpMsg::Get(GetRequest {
            req,
            url: Url::new(ServerId::new(0), doc),
            client: ClientId::from_raw(1),
            ims: None,
            issued_at: SimTime::from_secs(1),
            cache_hits: 0,
        })));
    }
    stream.write_all(&payload).map_err(e)?;
    let mut reader = FrameReader::new(stream);
    for _ in 0..2 {
        match reader.next_msg() {
            Ok(HttpMsgRef::Reply(_)) => {}
            other => return Err(format!("serve self-check: expected a reply, got {other:?}")),
        }
    }
    drop(reader);

    let metrics = scrape(proxy.metrics_addr()).map_err(e)?;
    if !metrics.contains("wcc_requests_total{node=\"proxy\"} 2") {
        return Err(format!(
            "serve self-check: /metrics did not count the requests:\n{metrics}"
        ));
    }
    drop(proxy);
    drop(origin);
    println!("serve self-check: ok (2 pipelined replies, metrics scraped, clean shutdown)");
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.flag("self-check") {
        return serve_self_check();
    }
    let role = args.value("role").unwrap_or("pair");
    let port = args.num("port", 0)?;
    let docs = args.num("docs", 256)?.max(1) as usize;
    let doc_scale = args.num("doc-scale", 100)?;
    let cache_mib = args.num("cache-mib", 64)?;
    let protocol = protocol_for(args)?;
    let config_path = args.value("config").map(str::to_string);
    let state_file = args.value("state-file").map(str::to_string);
    // A state file left behind means the previous instance died without a
    // clean shutdown: its in-memory site lists are gone, so come back up
    // in the paper's §5 recovery mode (bulk-invalidate every proxy that
    // reconnects until each one acks).
    let recovering = state_file
        .as_deref()
        .is_some_and(|p| std::path::Path::new(p).exists());

    let e = |err: std::io::Error| format!("serve: {err}");
    let bind: SocketAddr = format!("127.0.0.1:{port}")
        .parse()
        .map_err(|_| format!("serve: bad --port {port}"))?;
    let origin_cfg = OriginConfig {
        server: ServerId::new(0),
        doc_sizes: vec![ByteSize::from_kib(8); docs],
        protocol: protocol.clone(),
        doc_scale,
        inval_batch: None,
    };

    let (origin, proxy) = match role {
        "origin" => (
            Some(NetOrigin::spawn_at(bind, origin_cfg, recovering).map_err(e)?),
            None,
        ),
        "proxy" => {
            let upstream: SocketAddr = args
                .value("origin")
                .ok_or("serve: --role proxy needs --origin ADDR")?
                .parse()
                .map_err(|_| "serve: --origin expects HOST:PORT".to_string())?;
            let proxy = NetProxy::spawn(upstream, &protocol, 0, 1, ByteSize::from_mib(cache_mib))
                .map_err(e)?;
            (None, Some(proxy))
        }
        "pair" => {
            let origin = NetOrigin::spawn_at(bind, origin_cfg, recovering).map_err(e)?;
            let proxy = NetProxy::spawn(
                origin.addr(),
                &protocol,
                0,
                1,
                ByteSize::from_mib(cache_mib),
            )
            .map_err(e)?;
            (Some(origin), Some(proxy))
        }
        other => {
            return Err(format!(
                "serve: unknown --role {other:?}; pair, origin or proxy"
            ))
        }
    };
    if recovering {
        eprintln!("serve: stale state file found — running §5 site-list recovery");
    }
    if let Some(path) = &config_path {
        apply_serve_config(path, origin.as_ref())?;
    }

    // Publish the listening addresses — on stdout for humans, and
    // atomically into --port-file for harnesses that wait on it.
    let mut lines = String::new();
    if let Some(o) = &origin {
        lines.push_str(&format!("origin={}\n", o.addr()));
    }
    if let Some(p) = &proxy {
        lines.push_str(&format!("client={}\n", p.client_addr()));
        lines.push_str(&format!("metrics={}\n", p.metrics_addr()));
    }
    print!("{lines}");
    if let Some(path) = args.value("port-file") {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, &lines).map_err(|e| format!("serve: cannot write {tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("serve: cannot publish {path}: {e}"))?;
    }
    if let Some(path) = &state_file {
        std::fs::write(path, b"wcc-serve/1\n")
            .map_err(|e| format!("serve: cannot write state file {path}: {e}"))?;
    }

    // Signals are the daemon's only input: SIGHUP reloads --config,
    // SIGTERM/SIGINT drain in-flight requests and exit. The loop blocks
    // in the poller, so an idle daemon costs nothing.
    let signals = Signals::install(&[SIGHUP, SIGINT, SIGTERM]).map_err(e)?;
    let mut poller = Poller::new().map_err(e)?;
    signals.register(&mut poller, 0).map_err(e)?;
    let mut events = Vec::new();
    eprintln!("serve: up (role {role}, pid {})", std::process::id());
    loop {
        // EINTR from the signal itself is fine; the pipe byte persists.
        let _ = poller.wait(&mut events, None);
        while let Some(sig) = signals.try_recv() {
            match sig {
                SIGHUP => {
                    if let Some(path) = &config_path {
                        if let Err(err) = apply_serve_config(path, origin.as_ref()) {
                            eprintln!("{err}");
                        }
                    } else {
                        eprintln!("serve: SIGHUP with no --config; nothing to reload");
                    }
                }
                _ => {
                    eprintln!("serve: signal {sig}, draining");
                    // Drop order matters: the proxy drains client replies
                    // while its upstream is still alive.
                    drop(proxy);
                    drop(origin);
                    if let Some(path) = &state_file {
                        let _ = std::fs::remove_file(path);
                    }
                    if let Some(path) = args.value("port-file") {
                        let _ = std::fs::remove_file(path);
                    }
                    eprintln!("serve: shutdown complete");
                    return Ok(());
                }
            }
        }
    }
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    match args.positional.get(1).map(String::as_str) {
        Some("serve") => {}
        other => {
            return Err(format!(
                "bench: unknown subcommand {other:?}; try `wcc bench serve`"
            ))
        }
    }
    let soak_secs = args
        .value("soak-secs")
        .map(|_| args.num("soak-secs", 0))
        .transpose()?;
    let cfg = ServeBenchConfig {
        connections: args.num("connections", 64)? as usize,
        requests_per_conn: args.num("requests", 16)?,
        docs: args.num("docs", 64)?.max(1),
        protocol: protocol_for(args)?,
        soak_secs,
        restart: args.flag("restart"),
        // Out-of-process serving kicks in automatically when the fd
        // budget demands it; --in-process pins everything local.
        exe: if args.flag("in-process") {
            None
        } else {
            std::env::current_exe().ok()
        },
    };
    let report = serve_bench::run(&cfg).map_err(|e| format!("bench serve: {e}"))?;
    let json = report.to_json();
    match args.value("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| format!("bench serve: cannot write {path}: {e}"))?;
            eprintln!("bench serve: stats written to {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "bench serve: {} conns, {} replies, {} dropped, {} stale, p99 {}us, {:.0} req/s{}",
        report.connections,
        report.requests,
        report.dropped,
        report.stale,
        report.latency.p99().unwrap_or(0),
        report.requests_per_sec(),
        if report.external {
            " (external daemon)"
        } else {
            ""
        },
    );
    if report.stale > 0 {
        return Err(format!(
            "bench serve: {} stale serves audited",
            report.stale
        ));
    }
    if cfg.restart && !report.recovered {
        return Err("bench serve: origin recovery did not complete".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let command = args.positional.first().map(String::as_str);
    let result = match command {
        Some("replay") => cmd_replay(&args),
        Some("trio") => cmd_trio(&args),
        Some("compare") => cmd_compare(&args),
        Some("trace") => cmd_trace(&args),
        Some("summary") => cmd_summary(&args),
        Some("clf") => cmd_clf(&args),
        Some("fuzz") => cmd_fuzz(&args),
        Some("serve") => cmd_serve(&args),
        Some("bench") => cmd_bench(&args),
        Some("protocols") => {
            for kind in ProtocolKind::ALL {
                let strength = if kind.is_strong() { "strong" } else { "weak" };
                println!("{:<20} {strength}", kind.name());
            }
            Ok(())
        }
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
