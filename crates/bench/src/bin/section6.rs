//! §6: the two-tier lease-augmented invalidation scheme on the SASK trace.
//!
//! The paper reports: "at the end of the 8-day SASK trace, the site lists
//! have only 2489 entries, compared to [~24k] entries under the simple
//! invalidation scheme. The maximum length of the site list of a document
//! is reduced from 1155 entries to 473 entries. The reduction is achieved
//! with 2489 extra if-modified-since requests."

use wcc_bench::{parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::{run_batch, ExperimentConfig, TwoTierComparison};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn main() {
    let scale = parse_scale(std::env::args());
    let jobs = parse_jobs(std::env::args());
    println!("=== Section 6: two-tier lease-augmented invalidation (SASK, scale 1/{scale}) ===\n");
    let base = ExperimentConfig::builder(TraceSpec::sask().scaled_down(scale))
        .mean_lifetime(SimDuration::from_days(14))
        .seed(TABLE_SEED)
        .build();
    // Full lease longer than the 8-day trace, as in the paper's comparison
    // (their simple scheme is "a lease equal to the duration of each trace").
    // Both arms fan out together; same result as `two_tier_comparison`.
    let mut plain_cfg = base.clone();
    plain_cfg.protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let mut two_tier_cfg = base;
    two_tier_cfg.protocol =
        ProtocolConfig::new(ProtocolKind::TwoTierLease).with_lease(SimDuration::from_days(30));
    let mut reports = run_batch(&[plain_cfg, two_tier_cfg], jobs);
    let two_tier = reports.pop().expect("two reports");
    let plain = reports.pop().expect("two reports");
    let cmp = TwoTierComparison { plain, two_tier };

    let (plain_entries, tt_entries) = cmp.entries();
    let (plain_max, tt_max) = cmp.max_list();
    println!("{:<34}{:>14}{:>14}", "", "plain inval", "two-tier");
    println!(
        "{:<34}{:>14}{:>14}",
        "Site-list entries (end of trace)", plain_entries, tt_entries
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "Max site-list length", plain_max, tt_max
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "Site-list storage",
        cmp.plain.raw.sitelist.storage.to_string(),
        cmp.two_tier.raw.sitelist.storage.to_string()
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "If-Modified-Since requests", cmp.plain.raw.ims, cmp.two_tier.raw.ims
    );
    println!(
        "{:<34}{:>28}",
        "Extra IMS paid by two-tier",
        cmp.extra_ims()
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "Invalidations sent", cmp.plain.raw.invalidations, cmp.two_tier.raw.invalidations
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "Total messages", cmp.plain.raw.total_messages, cmp.two_tier.raw.total_messages
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "Strong-consistency violations",
        cmp.plain.raw.final_violations,
        cmp.two_tier.raw.final_violations
    );
    println!(
        "\nPaper reference: entries ~24k → 2489; max list 1155 → 473; +2489 IMS.\n\
         Reduction ratio here: entries ÷{:.1}, max list ÷{:.1}.",
        plain_entries as f64 / tt_entries.max(1) as f64,
        plain_max as f64 / tt_max.max(1) as f64,
    );
}
