//! The server-side (accelerator) half of each consistency protocol.

use crate::config::{LeasePolicy, ProtocolConfig, ProtocolKind};
use crate::economics::LeaseEconomics;
use crate::sitelist::InvalidationTable;
use wcc_types::{ClientId, DocMeta, FxHashMap, FxHashSet, ServerId, SimDuration, SimTime, Url};

/// The accelerator's decision about one `GET`/`If-Modified-Since` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetGrant {
    /// `true` → reply `200` with the body; `false` → reply `304`.
    pub send_body: bool,
    /// Lease expiry granted to the client (`None` for non-lease protocols;
    /// `Some(SimTime::NEVER)` is the plain-invalidation infinite promise).
    pub lease: Option<SimTime>,
    /// Whether the client was registered in the document's site list.
    pub register: bool,
    /// Whether registering required a recovery-list disk write (first time
    /// this client site has ever been seen by this server).
    pub new_site_disk_write: bool,
    /// Invalidations piggybacked on this reply (PSI and volume leases):
    /// documents this client must drop.
    pub piggyback: Vec<Url>,
    /// Volume-lease grant: every reply renews the client's per-server
    /// volume lease ([`ProtocolKind::VolumeLease`] only).
    pub volume_lease: Option<SimTime>,
}

/// Counters the server half maintains (inputs to Tables 3–5).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Modifications processed.
    pub modifications: u64,
    /// `INVALIDATE <url>` messages requested (sum of fan-outs).
    pub invalidations_sent: u64,
    /// Site registrations performed.
    pub registrations: u64,
    /// Disk writes to the persistent ever-seen site list.
    pub recovery_disk_writes: u64,
    /// Invalidations delivered by piggybacking on replies (PSI).
    pub piggybacked: u64,
}

/// The server-side protocol state machine, living in the Harvest
/// accelerator so the origin server itself needs no modification.
///
/// Owns the invalidation table (per-document site lists with leases), the
/// set of invalidations awaiting acknowledgement, and the persistent
/// ever-seen client list used for crash recovery. Pure state: actual message
/// transmission, timers and retries are the embedding's job (`wcc-httpsim`
/// or `wcc-net`).
#[derive(Debug, Clone)]
pub struct ServerConsistency {
    server: ServerId,
    kind: ProtocolKind,
    lease_policy: LeasePolicy,
    table: InvalidationTable,
    /// Invalidations sent but not yet acknowledged, per document.
    pending: FxHashMap<Url, FxHashSet<ClientId>>,
    /// Every client site this server has ever replied to (mirrored to disk;
    /// survives crashes — used for the bulk `INVALIDATE <server>` on
    /// recovery).
    ever_seen: FxHashSet<ClientId>,
    /// PSI / volume leases: invalidations waiting to ride the next reply
    /// to each site.
    piggyback_queues: FxHashMap<ClientId, Vec<Url>>,
    /// Volume leases: per-client volume expiry (trace time).
    volume_leases: FxHashMap<ClientId, SimTime>,
    /// Volume-lease length.
    volume_len: SimDuration,
    /// Site-list length observed at each modification (Table 5's
    /// "taken among the site lists of files that have been modified").
    modified_list_lens: Vec<u64>,
    /// Adaptive lease economics: per-URL read/write counters driving
    /// per-document lease durations (when configured).
    economics: Option<LeaseEconomics>,
    stats: ServerStats,
}

impl ServerConsistency {
    /// Creates the server half of the configured protocol for `server`.
    pub fn new(cfg: &ProtocolConfig, server: ServerId) -> Self {
        ServerConsistency {
            server,
            kind: cfg.kind,
            lease_policy: cfg.lease_policy(),
            table: InvalidationTable::new(),
            pending: FxHashMap::default(),
            ever_seen: FxHashSet::default(),
            piggyback_queues: FxHashMap::default(),
            volume_leases: FxHashMap::default(),
            volume_len: cfg.volume_lease,
            modified_list_lens: Vec::new(),
            economics: cfg.adaptive_lease.map(LeaseEconomics::new),
            stats: ServerStats::default(),
        }
    }

    /// The origin server this accelerator fronts.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The protocol this half implements.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The invalidation table (site lists).
    pub fn table(&self) -> &InvalidationTable {
        &self.table
    }

    /// Server-side counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Site-list lengths observed at modification time, for Table 5's
    /// avg/max rows.
    pub fn modified_list_lens(&self) -> &[u64] {
        &self.modified_list_lens
    }

    /// Handles a `GET` (plain if `ims` is `None`, conditional otherwise)
    /// from `client` for `url`, whose current version is `doc`.
    pub fn on_get(
        &mut self,
        url: Url,
        client: ClientId,
        ims: Option<SimTime>,
        doc: DocMeta,
        now: SimTime,
    ) -> GetGrant {
        debug_assert_eq!(url.server(), self.server);
        let send_body = match ims {
            Some(validator) => doc.modified_since(validator),
            None => true,
        };
        let (lease, register) = match self.lease_policy {
            LeasePolicy::None => (None, false),
            LeasePolicy::Infinite => (Some(SimTime::NEVER), true),
            LeasePolicy::Fixed(d) => (Some(now + d), true),
            LeasePolicy::TwoTier {
                get_lease,
                ims_lease,
            } => {
                // Repeat readers (those that come back with an
                // If-Modified-Since) earn the full lease; first-time GETs
                // get the short one and are only tracked if it is non-zero.
                let d = if ims.is_some() { ims_lease } else { get_lease };
                (Some(now + d), !d.is_zero())
            }
        };
        // Adaptive lease economics: every request is a read, and tracked
        // grants replace the policy's fixed duration with the per-document
        // cost objective (plain invalidation's infinite promise becomes a
        // bounded adaptive lease).
        let lease = match self.economics.as_mut() {
            Some(econ) => {
                econ.on_read(url);
                match (register, lease) {
                    (true, Some(_)) => Some(now + econ.lease_for(url)),
                    (_, lease) => lease,
                }
            }
            None => lease,
        };
        let mut new_site_disk_write = false;
        // Every registering policy grants a lease, so destructuring both
        // together keeps that invariant in the types instead of a panic.
        if let (true, Some(expiry)) = (register, lease) {
            self.stats.registrations += 1;
            // "A disk access is only necessary when a new client site which
            // has never been seen before contacts the server."
            if self.ever_seen.insert(client) {
                self.stats.recovery_disk_writes += 1;
                new_site_disk_write = true;
            }
            self.table.register(url, client, expiry);
        }
        // PSI / volume leases: deliver any invalidations queued for this
        // site on this reply (its own freshly-requested document needs no
        // notice).
        let piggyback = match self.kind {
            ProtocolKind::PiggybackInvalidation | ProtocolKind::VolumeLease => {
                let mut urls = self.piggyback_queues.remove(&client).unwrap_or_default();
                urls.retain(|&u| u != url);
                self.stats.piggybacked += urls.len() as u64;
                urls
            }
            _ => Vec::new(),
        };
        // Volume leases: every reply renews the short volume lease.
        let volume_lease = match self.kind {
            ProtocolKind::VolumeLease => {
                let expiry = now + self.volume_len;
                self.volume_leases.insert(client, expiry);
                Some(expiry)
            }
            _ => None,
        };
        GetGrant {
            send_body,
            lease,
            register,
            new_site_disk_write,
            piggyback,
            volume_lease,
        }
    }

    /// The accelerator detected a modification of `url` (via the check-in
    /// `NOTIFY` or the browser-based heuristic). Returns the clients that
    /// must receive `INVALIDATE <url>`, sorted for determinism; they are
    /// moved to the pending set until acknowledged.
    pub fn on_modify(&mut self, url: Url, now: SimTime) -> Vec<ClientId> {
        self.stats.modifications += 1;
        if let Some(econ) = self.economics.as_mut() {
            econ.on_write(url);
        }
        if self.kind == ProtocolKind::PiggybackInvalidation {
            // PSI: no push — queue the invalidation for each site's next
            // contact instead.
            self.modified_list_lens
                .push(self.table.site_count(url) as u64);
            for client in self.table.take_sites(url, now) {
                self.piggyback_queues.entry(client).or_default().push(url);
            }
            return Vec::new();
        }
        if !self.kind.uses_invalidation() {
            return Vec::new();
        }
        self.modified_list_lens
            .push(self.table.site_count(url) as u64);
        let mut fresh = self.table.take_sites(url, now);
        if self.kind == ProtocolKind::VolumeLease {
            // Push only to clients whose volume lease is live; the rest
            // cannot use the copy without renewing, and the renewal reply
            // will piggyback the invalidation.
            fresh.retain(|client| {
                let live = self.volume_leases.get(client).is_some_and(|&exp| exp > now);
                if !live {
                    self.piggyback_queues.entry(*client).or_default().push(url);
                }
                live
            });
        }
        self.stats.invalidations_sent += fresh.len() as u64;
        let pend = self.pending.entry(url).or_default();
        for c in &fresh {
            pend.insert(*c);
        }
        // Include previously un-acked recipients: they may have missed the
        // earlier INVALIDATE (partition / crash) and must still be told.
        let mut all: Vec<ClientId> = pend.iter().copied().collect();
        all.sort_unstable();
        if pend.is_empty() {
            self.pending.remove(&url);
        }
        all
    }

    /// A proxy acknowledged `INVALIDATE <url>`: "once a client receives the
    /// invalidation message, the accelerator deletes it from the site list
    /// of the document."
    pub fn on_inval_ack(&mut self, url: Url, client: ClientId) {
        if let Some(pend) = self.pending.get_mut(&url) {
            pend.remove(&client);
            if pend.is_empty() {
                self.pending.remove(&url);
            }
        }
    }

    /// Whether any invalidation for `url` is still awaiting an
    /// acknowledgement — a cheap, allocation-free [`Self::pending_for`]
    /// emptiness probe for hot paths (write-completion tracking).
    pub fn has_pending(&self, url: Url) -> bool {
        self.pending.contains_key(&url)
    }

    /// The adaptive lease economics tracker, when configured.
    pub fn economics(&self) -> Option<&LeaseEconomics> {
        self.economics.as_ref()
    }

    /// Clients still awaiting an `INVALIDATE <url>` acknowledgement (retry
    /// targets), sorted.
    pub fn pending_for(&self, url: Url) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self
            .pending
            .get(&url)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// All documents with unacknowledged invalidations, sorted.
    pub fn pending_urls(&self) -> Vec<Url> {
        let mut v: Vec<Url> = self.pending.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Returns `true` once every invalidation has been acknowledged — the
    /// paper's definition of write completion for the invalidation approach.
    pub fn writes_complete(&self) -> bool {
        self.pending.is_empty()
    }

    /// Volume leases: drops pending invalidations for clients whose volume
    /// lease has expired — they can no longer use the copy without a
    /// renewal, and the renewal reply carries the invalidation, so the
    /// write is complete with respect to them. Returns entries dropped.
    /// This is what bounds write completion at `volume-lease length` even
    /// through crashes and partitions.
    pub fn expire_pending(&mut self, now: SimTime) -> u64 {
        if self.kind != ProtocolKind::VolumeLease {
            return 0;
        }
        let mut dropped = 0;
        let volume_leases = &self.volume_leases;
        let queues = &mut self.piggyback_queues;
        self.pending.retain(|url, clients| {
            clients.retain(|client| {
                let live = volume_leases.get(client).is_some_and(|&exp| exp > now);
                if !live {
                    dropped += 1;
                    queues.entry(*client).or_default().push(*url);
                }
                live
            });
            !clients.is_empty()
        });
        dropped
    }

    /// The server site recovered from a crash: every site it has *ever*
    /// served (the persistent on-disk list) must receive the bulk
    /// `INVALIDATE <server-addr>`, because modifications during the outage
    /// may have gone unnoticed. Returns the recipients, sorted.
    pub fn on_server_recover(&mut self) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self.ever_seen.iter().copied().collect();
        v.sort_unstable();
        // Volatile site lists (and queued piggybacks) died with the crash;
        // the conservative bulk invalidation replaces them.
        self.table = InvalidationTable::new();
        self.pending.clear();
        self.piggyback_queues.clear();
        v
    }

    /// Garbage-collects expired leases (lease protocols call this
    /// periodically). Returns entries collected.
    pub fn purge_expired_leases(&mut self, now: SimTime) -> u64 {
        self.table.purge_expired(now)
    }

    /// Average interval between lease-GC sweeps that keeps the table close
    /// to its steady-state size: a quarter of the lease length, floored at
    /// one minute.
    pub fn suggested_gc_interval(lease: SimDuration) -> SimDuration {
        lease.div(4).max(SimDuration::from_mins(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolConfig;
    use wcc_types::ByteSize;

    fn url(doc: u32) -> Url {
        Url::new(ServerId::new(0), doc)
    }

    fn client(raw: u32) -> ClientId {
        ClientId::from_raw(raw)
    }

    fn doc(modified_secs: u64) -> DocMeta {
        DocMeta::new(ByteSize::from_kib(10), SimTime::from_secs(modified_secs))
    }

    fn server(kind: ProtocolKind) -> ServerConsistency {
        ServerConsistency::new(&ProtocolConfig::new(kind), ServerId::new(0))
    }

    #[test]
    fn ims_semantics() {
        let mut s = server(ProtocolKind::PollEveryTime);
        let now = SimTime::from_secs(100);
        // Unchanged since validator → 304.
        let g = s.on_get(
            url(1),
            client(1),
            Some(SimTime::from_secs(50)),
            doc(50),
            now,
        );
        assert!(!g.send_body);
        // Changed → 200.
        let g = s.on_get(
            url(1),
            client(1),
            Some(SimTime::from_secs(50)),
            doc(60),
            now,
        );
        assert!(g.send_body);
        // Plain GET always 200.
        let g = s.on_get(url(1), client(1), None, doc(1), now);
        assert!(g.send_body);
        // Polling registers nothing.
        assert!(!g.register);
        assert_eq!(g.lease, None);
        assert_eq!(s.table().total_entries(), 0);
    }

    #[test]
    fn plain_invalidation_grants_infinite_lease_and_registers() {
        let mut s = server(ProtocolKind::Invalidation);
        let g = s.on_get(url(1), client(7), None, doc(0), SimTime::from_secs(5));
        assert_eq!(g.lease, Some(SimTime::NEVER));
        assert!(g.register);
        assert!(g.new_site_disk_write, "first sighting hits the disk list");
        assert_eq!(s.table().site_count(url(1)), 1);

        // Second request from the same client: registered again, but no
        // disk write.
        let g = s.on_get(url(2), client(7), None, doc(0), SimTime::from_secs(6));
        assert!(!g.new_site_disk_write);
        assert_eq!(s.stats().recovery_disk_writes, 1);
        assert_eq!(s.stats().registrations, 2);
    }

    #[test]
    fn adaptive_lease_bounds_the_infinite_promise_and_tracks_writes() {
        use crate::economics::AdaptiveLeaseConfig;

        let cfg = ProtocolConfig::new(ProtocolKind::Invalidation).with_adaptive_lease(
            AdaptiveLeaseConfig {
                base: SimDuration::from_secs(3600),
                floor: SimDuration::from_secs(60),
                cap: SimDuration::from_secs(86_400),
            },
        );
        let mut s = ServerConsistency::new(&cfg, ServerId::new(0));
        let now = SimTime::from_secs(100);

        // First read: ratio (1+1)/(0+1) = 2 → sqrt 2 × base ≈ 5091s, not
        // the infinite promise plain invalidation would otherwise grant.
        let g = s.on_get(url(1), client(7), None, doc(0), now);
        assert!(g.register);
        let expiry = g.lease.expect("adaptive lease still granted");
        assert!(expiry < SimTime::NEVER);
        assert!(expiry > now + SimDuration::from_secs(3600), "{expiry}");
        assert!(expiry < now + SimDuration::from_secs(7200), "{expiry}");

        // Writes shorten the next grant.
        for _ in 0..50 {
            s.on_modify(url(1), now);
        }
        let g = s.on_get(url(1), client(7), None, doc(0), now);
        let short = g.lease.expect("lease still granted");
        assert!(short < expiry, "{short} vs {expiry}");
        assert!(s.economics().expect("configured").tracked() >= 1);
        assert!(s.has_pending(url(1)));
        assert!(!s.has_pending(url(2)));
    }

    #[test]
    fn modify_fans_out_and_acks_clear_pending() {
        let mut s = server(ProtocolKind::Invalidation);
        for c in [3u32, 1, 2] {
            s.on_get(url(1), client(c), None, doc(0), SimTime::from_secs(1));
        }
        let recipients = s.on_modify(url(1), SimTime::from_secs(10));
        assert_eq!(recipients, vec![client(1), client(2), client(3)]);
        assert_eq!(s.stats().invalidations_sent, 3);
        assert!(!s.writes_complete());
        assert_eq!(s.table().site_count(url(1)), 0, "list reset on modify");

        s.on_inval_ack(url(1), client(1));
        s.on_inval_ack(url(1), client(2));
        assert_eq!(s.pending_for(url(1)), vec![client(3)]);
        s.on_inval_ack(url(1), client(3));
        assert!(s.writes_complete());
        assert!(s.pending_urls().is_empty());
    }

    #[test]
    fn unacked_recipients_are_retried_on_next_modify() {
        let mut s = server(ProtocolKind::Invalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
        let first = s.on_modify(url(1), SimTime::from_secs(10));
        assert_eq!(first, vec![client(1)]);
        // No ack (message lost). A later modification re-targets client 1.
        let second = s.on_modify(url(1), SimTime::from_secs(20));
        assert_eq!(second, vec![client(1)]);
        // invalidations_sent counts fresh fan-outs only once.
        assert_eq!(s.stats().invalidations_sent, 1);
    }

    #[test]
    fn weak_protocols_send_no_invalidations() {
        for kind in [ProtocolKind::AdaptiveTtl, ProtocolKind::PollEveryTime] {
            let mut s = server(kind);
            s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
            assert!(
                s.on_modify(url(1), SimTime::from_secs(2)).is_empty(),
                "{kind}"
            );
            assert!(s.writes_complete());
        }
    }

    #[test]
    fn lease_invalidation_only_notifies_live_leases() {
        let cfg = ProtocolConfig::new(ProtocolKind::LeaseInvalidation)
            .with_lease(SimDuration::from_secs(100));
        let mut s = ServerConsistency::new(&cfg, ServerId::new(0));
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(0));
        s.on_get(url(1), client(2), None, doc(0), SimTime::from_secs(90));
        // At t=150 client 1's lease (expires t=100) is dead; client 2 lives.
        let recipients = s.on_modify(url(1), SimTime::from_secs(150));
        assert_eq!(recipients, vec![client(2)]);
    }

    #[test]
    fn two_tier_registers_only_repeat_readers() {
        let cfg =
            ProtocolConfig::new(ProtocolKind::TwoTierLease).with_lease(SimDuration::from_days(3));
        let mut s = ServerConsistency::new(&cfg, ServerId::new(0));
        let now = SimTime::from_secs(10);
        // First-time GET: zero lease, not tracked.
        let g = s.on_get(url(1), client(1), None, doc(0), now);
        assert_eq!(g.lease, Some(now), "zero-length lease expires immediately");
        assert!(!g.register);
        assert_eq!(s.table().total_entries(), 0);
        // The promised revalidation arrives: full lease, tracked.
        let g = s.on_get(url(1), client(1), Some(SimTime::from_secs(0)), doc(0), now);
        assert_eq!(g.lease, Some(now + SimDuration::from_days(3)));
        assert!(g.register);
        assert_eq!(s.table().site_count(url(1)), 1);
    }

    #[test]
    fn modification_list_length_sampling() {
        let mut s = server(ProtocolKind::Invalidation);
        for c in 0..5 {
            s.on_get(url(1), client(c), None, doc(0), SimTime::from_secs(1));
        }
        s.on_modify(url(1), SimTime::from_secs(2));
        s.on_modify(url(2), SimTime::from_secs(3)); // empty list
        assert_eq!(s.modified_list_lens(), &[5, 0]);
    }

    #[test]
    fn server_recovery_targets_every_site_ever_seen() {
        let mut s = server(ProtocolKind::Invalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
        s.on_get(url(2), client(2), None, doc(0), SimTime::from_secs(2));
        s.on_modify(url(1), SimTime::from_secs(3));
        let recipients = s.on_server_recover();
        assert_eq!(recipients, vec![client(1), client(2)]);
        assert_eq!(s.table().total_entries(), 0, "volatile lists lost");
        assert!(s.writes_complete(), "pending cleared by bulk invalidation");
        // The ever-seen list survives (it is on disk).
        let again = s.on_server_recover();
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn psi_queues_and_piggybacks_instead_of_pushing() {
        let mut s = server(ProtocolKind::PiggybackInvalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
        s.on_get(url(2), client(1), None, doc(0), SimTime::from_secs(2));
        // Modification pushes nothing…
        assert!(s.on_modify(url(1), SimTime::from_secs(10)).is_empty());
        assert_eq!(s.stats().invalidations_sent, 0);
        assert!(s.writes_complete(), "PSI never has pending pushes");
        // …but the next contact from that client carries the invalidation.
        let g = s.on_get(
            url(2),
            client(1),
            Some(SimTime::ZERO),
            doc(0),
            SimTime::from_secs(20),
        );
        assert_eq!(g.piggyback, vec![url(1)]);
        assert_eq!(s.stats().piggybacked, 1);
        // Delivered once only.
        let g = s.on_get(
            url(2),
            client(1),
            Some(SimTime::ZERO),
            doc(0),
            SimTime::from_secs(21),
        );
        assert!(g.piggyback.is_empty());
    }

    #[test]
    fn psi_does_not_piggyback_the_requested_document_itself() {
        let mut s = server(ProtocolKind::PiggybackInvalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
        s.on_modify(url(1), SimTime::from_secs(10));
        // The client asks for url(1) itself: the fresh reply *is* the news.
        let g = s.on_get(
            url(1),
            client(1),
            Some(SimTime::ZERO),
            doc(20),
            SimTime::from_secs(30),
        );
        assert!(g.send_body);
        assert!(g.piggyback.is_empty());
    }

    #[test]
    fn psi_queues_are_per_client() {
        let mut s = server(ProtocolKind::PiggybackInvalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(1));
        s.on_get(url(1), client(2), None, doc(0), SimTime::from_secs(1));
        s.on_modify(url(1), SimTime::from_secs(10));
        let g1 = s.on_get(url(9), client(1), None, doc(0), SimTime::from_secs(20));
        assert_eq!(g1.piggyback, vec![url(1)]);
        let g2 = s.on_get(url(9), client(2), None, doc(0), SimTime::from_secs(21));
        assert_eq!(g2.piggyback, vec![url(1)], "client 2 gets its own copy");
    }

    #[test]
    fn volume_lease_replies_renew_and_partition_push_by_volume_state() {
        let cfg = ProtocolConfig::new(ProtocolKind::VolumeLease)
            .with_volume_lease(SimDuration::from_secs(100));
        let mut s = ServerConsistency::new(&cfg, ServerId::new(0));
        // Client 1 contacts at t=0 (volume until 100); client 2 at t=90
        // (volume until 190).
        let g = s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(0));
        assert_eq!(g.volume_lease, Some(SimTime::from_secs(100)));
        s.on_get(url(1), client(2), None, doc(0), SimTime::from_secs(90));
        // Modification at t=150: only client 2's volume is live → push to
        // it; client 1 gets a queued piggyback instead.
        let recipients = s.on_modify(url(1), SimTime::from_secs(150));
        assert_eq!(recipients, vec![client(2)]);
        // Client 1's next contact carries the invalidation.
        let g = s.on_get(url(9), client(1), None, doc(0), SimTime::from_secs(200));
        assert_eq!(g.piggyback, vec![url(1)]);
    }

    #[test]
    fn volume_lease_expire_pending_bounds_write_completion() {
        let cfg = ProtocolConfig::new(ProtocolKind::VolumeLease)
            .with_volume_lease(SimDuration::from_secs(100));
        let mut s = ServerConsistency::new(&cfg, ServerId::new(0));
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(0));
        // Push goes out at t=50 (volume live)…
        let recipients = s.on_modify(url(1), SimTime::from_secs(50));
        assert_eq!(recipients, vec![client(1)]);
        assert!(!s.writes_complete());
        // …but the ack never arrives (partition). Once the volume expires,
        // the pending entry may be dropped: the client cannot use the copy
        // without a renewal, and the renewal will piggyback the news.
        assert_eq!(
            s.expire_pending(SimTime::from_secs(99)),
            0,
            "volume still live"
        );
        assert_eq!(s.expire_pending(SimTime::from_secs(101)), 1);
        assert!(s.writes_complete(), "write completed by volume expiry");
        let g = s.on_get(url(2), client(1), None, doc(0), SimTime::from_secs(300));
        assert_eq!(
            g.piggyback,
            vec![url(1)],
            "missed invalidation delivered on renewal"
        );
    }

    #[test]
    fn expire_pending_is_noop_for_other_protocols() {
        let mut s = server(ProtocolKind::Invalidation);
        s.on_get(url(1), client(1), None, doc(0), SimTime::from_secs(0));
        s.on_modify(url(1), SimTime::from_secs(5));
        assert_eq!(s.expire_pending(SimTime::NEVER), 0);
        assert!(
            !s.writes_complete(),
            "plain invalidation must wait for acks"
        );
    }

    #[test]
    fn gc_interval_suggestion() {
        assert_eq!(
            ServerConsistency::suggested_gc_interval(SimDuration::from_days(4)),
            SimDuration::from_days(1)
        );
        assert_eq!(
            ServerConsistency::suggested_gc_interval(SimDuration::from_secs(1)),
            SimDuration::from_mins(1)
        );
    }
}
