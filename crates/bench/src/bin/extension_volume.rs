//! Extension E4: volume leases (Yin, Alvisi, Dahlin & Lin).
//!
//! The paper's §4 concedes that "it is difficult to maintain strong
//! consistency in the event of network partition" and falls back to TCP
//! retry. Volume leases are the published fix: a long per-object lease plus
//! a short per-server *volume* lease renewed by every reply. A copy is
//! served only while both are live, so the server never waits longer than
//! the volume length for an unreachable client — and the client learns of
//! missed invalidations via the piggyback on its first renewal.

use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::experiment::{materialise, run_on};
use wcc_replay::{partition_scenario, ExperimentConfig};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn main() {
    let scale = parse_scale(std::env::args());
    println!("=== Extension E4: volume leases (SASK, scale 1/{scale}) ===\n");
    let base = ExperimentConfig::builder(TraceSpec::sask().scaled_down(scale))
        .mean_lifetime(SimDuration::from_days(14))
        .seed(TABLE_SEED)
        .build();
    let (trace, mods) = materialise(&base);

    println!("Normal operation — the volume-length trade-off:");
    println!(
        "{:<18}{:>12}{:>14}{:>12}{:>12}{:>12}",
        "volume lease", "messages", "invalidations", "IMS", "piggybacked", "violations"
    );
    let volumes = [
        ("30s", SimDuration::from_secs(30)),
        ("2m", SimDuration::from_mins(2)),
        ("10m", SimDuration::from_mins(10)),
        ("1h", SimDuration::from_hours(1)),
    ];
    for (label, volume) in volumes {
        let mut cfg = base.clone();
        cfg.protocol = ProtocolConfig::new(ProtocolKind::VolumeLease).with_volume_lease(volume);
        let r = run_on(&cfg, &trace, &mods).raw;
        println!(
            "{:<18}{:>12}{:>14}{:>12}{:>12}{:>12}",
            label, r.total_messages, r.invalidations, r.ims, r.piggybacked, r.final_violations,
        );
    }
    let mut plain = base.clone();
    plain.protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let p = run_on(&plain, &trace, &mods).raw;
    println!(
        "{:<18}{:>12}{:>14}{:>12}{:>12}{:>12}",
        "plain (∞)", p.total_messages, p.invalidations, p.ims, p.piggybacked, p.final_violations,
    );

    println!("\nPartition (server↔proxy 0, 30%→70% of the run):");
    let scenario = |kind: ProtocolKind| {
        let mut cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(scale.max(50)))
            .mean_lifetime(SimDuration::from_hours(4))
            .seed(TABLE_SEED)
            .build();
        cfg.protocol = ProtocolConfig::new(kind).with_volume_lease(SimDuration::from_mins(5));
        partition_scenario(&cfg, 0.3, 0.7)
    };
    for kind in [ProtocolKind::Invalidation, ProtocolKind::VolumeLease] {
        let out = scenario(kind);
        let r = &out.report.raw;
        println!(
            "  {:<16} retries {:>4}  writes complete {:>5}  violations {}",
            kind.name(),
            r.invalidation_retries,
            r.writes_complete,
            r.final_violations,
        );
    }
    println!(
        "\nExpected shape: volume leases trade a few renewal IMS for fewer\n\
         pushes (expired-volume clients are piggybacked) and, under the\n\
         partition, complete every write within the volume length instead of\n\
         hammering TCP retries — the §4 open problem, closed."
    );
}
