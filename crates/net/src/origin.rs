//! The TCP origin server + accelerator.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wcc_core::{ProtocolConfig, ServerConsistency, SiteListStats};
use wcc_obs::{Histogram, Registry};
use wcc_proto::{
    encode, FrameReader, GetRequest, HttpMsg, HttpMsgRef, Reply, ReplyStatus, WireError,
};
use wcc_types::{
    Body, ByteSize, ClientId, DocMeta, ServerId, SimDuration, SimTime, Url, WallClock,
};

/// Configuration for [`NetOrigin::spawn`].
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// The server's identity (must match the URLs clients request).
    pub server: ServerId,
    /// Document sizes, indexed by document id.
    pub doc_sizes: Vec<ByteSize>,
    /// The consistency protocol to run.
    pub protocol: ProtocolConfig,
    /// Storage scale factor for document payloads (the paper's 100×).
    pub doc_scale: u64,
}

/// Counters and state visible through [`NetOrigin::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct OriginSnapshot {
    /// Plain `GET`s served.
    pub gets: u64,
    /// `If-Modified-Since` requests served.
    pub ims: u64,
    /// `200` replies sent.
    pub replies_200: u64,
    /// `304` replies sent.
    pub replies_304: u64,
    /// `INVALIDATE`s pushed.
    pub invalidations: u64,
    /// Acks received.
    pub acks: u64,
    /// Check-ins processed.
    pub notifies: u64,
    /// Whether every invalidation has been acknowledged.
    pub writes_complete: bool,
    /// Site-list statistics.
    pub sitelist: SiteListStats,
}

struct Protected {
    consistency: ServerConsistency,
    versions: Vec<SimTime>,
    counters: OriginSnapshot,
    /// Wall-time GET service latency (decode to reply built).
    serve_latency: Histogram,
}

struct State {
    server: ServerId,
    doc_sizes: Vec<ByteSize>,
    doc_scale: u64,
    protected: Mutex<Protected>,
    /// Push channels to proxies, keyed by partition index.
    channels: Mutex<HashMap<u32, Sender<HttpMsg>>>,
    partitions: AtomicU32,
    shutdown: AtomicBool,
}

impl State {
    fn handle_get(&self, get: &GetRequest) -> HttpMsg {
        let mut p = self.protected.lock();
        if get.is_ims() {
            p.counters.ims += 1;
        } else {
            p.counters.gets += 1;
        }
        let doc = get.url.doc() as usize;
        let meta = DocMeta::new(self.doc_sizes[doc], p.versions[doc]);
        let grant = p
            .consistency
            .on_get(get.url, get.client, get.ims, meta, get.issued_at);
        let status = if grant.send_body {
            p.counters.replies_200 += 1;
            ReplyStatus::Ok(Body::synthetic(meta, self.doc_scale))
        } else {
            p.counters.replies_304 += 1;
            ReplyStatus::NotModified
        };
        HttpMsg::Reply(Reply {
            req: get.req,
            url: get.url,
            client: get.client,
            status,
            lease: grant.lease,
            piggyback: grant.piggyback,
            volume_lease: grant.volume_lease,
        })
    }

    fn handle_notify(&self, url: Url, at: SimTime) {
        let recipients = {
            let mut p = self.protected.lock();
            p.counters.notifies += 1;
            let doc = url.doc() as usize;
            p.versions[doc] = p.versions[doc].max(at);
            let recipients = p.consistency.on_modify(url, at);
            p.counters.invalidations += recipients.len() as u64;
            recipients
        };
        let partitions = self.partitions.load(Ordering::SeqCst).max(1);
        let channels = self.channels.lock();
        for client in recipients {
            let partition = client.partition(partitions);
            if let Some(tx) = channels.get(&partition) {
                // Best-effort: a dead channel leaves the entry pending; a
                // re-registered proxy (or the bulk recovery invalidation)
                // will pick it up.
                let _ = tx.send(HttpMsg::Invalidate { url, client });
            }
        }
    }

    fn handle_ack(&self, url: Url, client: ClientId) {
        let mut p = self.protected.lock();
        p.counters.acks += 1;
        p.consistency.on_inval_ack(url, client);
    }

    /// Renders the node's registry as Prometheus text exposition.
    fn render_metrics(&self) -> String {
        let p = self.protected.lock();
        let node = [("node", "origin")];
        let c = &p.counters;
        let mut r = Registry::default();
        r.set_counter(
            "wcc_gets_total",
            "Plain GET requests served.",
            &node,
            c.gets,
        );
        r.set_counter(
            "wcc_ims_total",
            "If-Modified-Since requests served.",
            &node,
            c.ims,
        );
        r.set_counter(
            "wcc_replies_200_total",
            "200 replies sent.",
            &node,
            c.replies_200,
        );
        r.set_counter(
            "wcc_replies_304_total",
            "304 replies sent.",
            &node,
            c.replies_304,
        );
        r.set_counter(
            "wcc_invalidations_total",
            "INVALIDATEs pushed to proxies.",
            &node,
            c.invalidations,
        );
        r.set_counter(
            "wcc_inval_acks_total",
            "Invalidation acknowledgements received.",
            &node,
            c.acks,
        );
        r.set_counter(
            "wcc_notifies_total",
            "Modifier check-ins processed.",
            &node,
            c.notifies,
        );
        let stats = p.consistency.table().stats();
        r.set_gauge(
            "wcc_sitelist_entries",
            "Live site-list entries (granted leases / registrations).",
            &node,
            stats.total_entries,
        );
        r.set_gauge(
            "wcc_sitelist_tracked_documents",
            "Documents with a non-empty site list.",
            &node,
            stats.tracked_documents,
        );
        r.set_gauge(
            "wcc_sitelist_max_list_len",
            "Longest site list.",
            &node,
            stats.max_list_len,
        );
        r.set_gauge(
            "wcc_sitelist_storage_bytes",
            "Estimated site-list memory.",
            &node,
            stats.storage.as_u64(),
        );
        r.set_gauge(
            "wcc_writes_complete",
            "1 when every invalidation has been acknowledged.",
            &node,
            u64::from(p.consistency.writes_complete()),
        );
        r.set_histogram(
            "wcc_serve_latency_seconds",
            "Wall-time GET service latency.",
            &node,
            &p.serve_latency,
        );
        r.render()
    }
}

/// A running TCP origin. Shuts down (and joins its threads) on drop.
pub struct NetOrigin {
    addr: SocketAddr,
    state: Arc<State>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetOrigin")
            .field("addr", &self.addr)
            .finish()
    }
}

impl NetOrigin {
    /// Binds a loopback listener and starts serving.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    pub fn spawn(config: OriginConfig) -> std::io::Result<NetOrigin> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let n = config.doc_sizes.len();
        let state = Arc::new(State {
            server: config.server,
            doc_sizes: config.doc_sizes,
            doc_scale: config.doc_scale.max(1),
            protected: Mutex::new(Protected {
                consistency: ServerConsistency::new(&config.protocol, config.server),
                versions: vec![SimTime::ZERO; n],
                counters: OriginSnapshot::default(),
                serve_latency: Histogram::default(),
            }),
            channels: Mutex::new(HashMap::new()),
            partitions: AtomicU32::new(0),
            shutdown: AtomicBool::new(false),
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_state = Arc::clone(&state);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&accept_state);
                let handle = std::thread::spawn(move || {
                    let _ = serve_connection(&conn_state, stream);
                });
                accept_threads.lock().push(handle);
            }
        });

        Ok(NetOrigin {
            addr,
            state,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address to point proxies and the check-in utility at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current Prometheus text exposition — the same body `GET
    /// /metrics` on [`NetOrigin::addr`] returns.
    pub fn metrics_text(&self) -> String {
        self.state.render_metrics()
    }

    /// A copy of the current counters and site-list stats.
    pub fn snapshot(&self) -> OriginSnapshot {
        let p = self.state.protected.lock();
        let mut snap = p.counters.clone();
        snap.writes_complete = p.consistency.writes_complete();
        snap.sitelist = p.consistency.table().stats();
        snap
    }

    /// Polls until every outstanding invalidation is acknowledged (the
    /// paper's write-completion condition) or `timeout` elapses. Returns
    /// whether completion was reached.
    pub fn wait_writes_complete(&self, timeout: Duration) -> bool {
        let clock = WallClock::start();
        let timeout =
            SimDuration::from_micros(u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX));
        loop {
            if self.state.protected.lock().consistency.writes_complete() {
                return true;
            }
            if clock.has_elapsed(timeout) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for NetOrigin {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drop push channels so writer threads exit, then join handlers.
        self.state.channels.lock().clear();
        for t in self.conn_threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves one connection until it closes or shutdown.
fn serve_connection(state: &Arc<State>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    // Zero-copy frame reader: requests are decoded straight from the
    // receive buffer. Nothing the origin handles retains request bytes
    // (GETs, notifies and acks are all inline data), so no copy is made.
    let mut reader = FrameReader::new(stream);
    // Writer thread for a registered invalidation channel, if any.
    let mut push_writer: Option<JoinHandle<()>> = None;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let msg = match reader.next_msg() {
            Ok(msg) => msg,
            Err(WireError::Closed) => break,
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle; re-check shutdown
            }
            Err(_) => break, // malformed or broken stream
        };
        match msg {
            HttpMsgRef::Get(get) if get.url.server() == state.server => {
                let clock = WallClock::start();
                let reply = state.handle_get(&get);
                // Record before the reply ships: once the requester's fetch
                // returns, a scrape must already see this serve.
                state
                    .protected
                    .lock()
                    .serve_latency
                    .record(clock.elapsed().as_micros());
                writer.write_all(&encode(&reply))?;
                writer.flush()?;
            }
            HttpMsgRef::MetricsGet => {
                // One-shot scrape: raw HTTP response, then close.
                writer.write_all(&crate::scrape::metrics_response(&state.render_metrics()))?;
                writer.flush()?;
                break;
            }
            HttpMsgRef::Notify { url, at } if url.server() == state.server => {
                state.handle_notify(url, at);
            }
            HttpMsgRef::InvalAck {
                url,
                client,
                cache_hits: _,
            } => {
                state.handle_ack(url, client);
            }
            HttpMsgRef::InvalidateServerAck { .. } => {
                // Bulk-invalidation ack; the TCP prototype has no crash
                // recovery, so there is no retry loop to cancel.
                state.protected.lock().counters.acks += 1;
            }
            HttpMsgRef::Hello {
                partition,
                partitions,
            } => {
                state.partitions.store(partitions, Ordering::SeqCst);
                let (tx, rx) = unbounded::<HttpMsg>();
                state.channels.lock().insert(partition, tx);
                let mut push_stream = writer.try_clone()?;
                // Dedicated writer: pushes INVALIDATEs as they are queued.
                push_writer = Some(std::thread::spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        if push_stream.write_all(&encode(&msg)).is_err() {
                            break;
                        }
                        let _ = push_stream.flush();
                    }
                }));
                // Keep reading this stream for ACKs.
            }
            HttpMsgRef::Reply(_)
            | HttpMsgRef::Invalidate { .. }
            | HttpMsgRef::InvalidateServer { .. } => {
                break; // protocol violation: these flow origin -> proxy only
            }
            // Guard fallthrough: a Get/Notify for a server we do not own.
            _ => break,
        }
    }
    if let Some(t) = push_writer {
        // Channel sender may still be registered; dropping happens on
        // shutdown or re-registration. Detach politely: only join if the
        // channel was already dropped.
        drop(t);
    }
    Ok(())
}

/// The modifier's check-in utility: tells the accelerator at `origin` that
/// `url` was modified at (logical) time `at`.
///
/// # Errors
///
/// Returns any socket error.
pub fn check_in(origin: SocketAddr, url: Url, at: SimTime) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(origin)?;
    stream.write_all(&encode(&HttpMsg::Notify { url, at }))?;
    stream.flush()
}
