//! The paper's Table 1: closed-form message counts for one client viewing
//! one document, and an exact single-pair interpreter that drives the *real*
//! protocol state machines to cross-check the formulas.
//!
//! Following §3: let `R` be the number of times client C views document D,
//! and `RI` the number of intervals during which C repeatedly requests D
//! while D is unchanged (for the stream `r r r m m m r r m r r r m m r`,
//! `RI = 4`). Assuming C's cache always has space for D, the minimum traffic
//! for strong consistency is `RI` control messages plus `RI` file transfers.
//!
//! | messages | polling-every-time | invalidation | adaptive TTL |
//! |---|---|---|---|
//! | `GET` requests | 0 | RI | 0 |
//! | If-Modified-Since | R | 0 | TTL-missed |
//! | 304 replies | R − RI | 0 | TTL-missed − TTL-missed-and-new-doc |
//! | Invalidation | 0 | RI | 0 |
//! | total control | 2R − RI | 2RI | 2·TTL-missed − TTL-missed-and-new-doc |
//! | file transfers | RI | RI | RI − stale hits |
//!
//! The formulas idealise away the very first fetch, so the exact interpreter
//! ([`simulate`]) matches them up to ±1 on individual rows; the tests pin
//! down the exact relationships.

use crate::{ProtocolConfig, ProtocolKind, ProxyAction, ProxyPolicy, ServerConsistency};
use wcc_cache::{CacheStore, ReplacementPolicy};
use wcc_types::{ByteSize, ClientId, DocMeta, ServerId, SimTime, Url};

/// One event in a single-client, single-document access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The client views the document (an `r` in the paper's notation).
    Request,
    /// The document is modified at the server (an `m`).
    Modify,
}

/// An [`Event`] with its occurrence time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the event happens.
    pub at: SimTime,
    /// What happens.
    pub event: Event,
}

/// Builds a timed stream from the paper's `r`/`m` notation, spacing events
/// `step` seconds apart.
///
/// # Examples
///
/// ```
/// use wcc_core::analytical::{parse_stream, seq_stats};
///
/// let events = parse_stream("rrrmmmrrmrrrmmr", 60);
/// let s = seq_stats(&events);
/// assert_eq!(s.r, 9);
/// assert_eq!(s.m, 6);
/// assert_eq!(s.ri, 4);
/// ```
///
/// # Panics
///
/// Panics if the string contains characters other than `r`, `m` and spaces.
pub fn parse_stream(stream: &str, step: u64) -> Vec<TimedEvent> {
    stream
        .chars()
        .filter(|c| !c.is_whitespace())
        .enumerate()
        .map(|(i, c)| TimedEvent {
            at: SimTime::from_secs((i as u64 + 1) * step),
            event: match c {
                'r' => Event::Request,
                'm' => Event::Modify,
                other => panic!("invalid event character {other:?}"),
            },
        })
        .collect()
}

/// The quantities Table 1 is parameterised on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeqStats {
    /// Total requests (`R`).
    pub r: u64,
    /// Total modifications.
    pub m: u64,
    /// Request intervals with no intervening modification (`RI`).
    pub ri: u64,
}

/// Computes `R`, `M` and `RI` for an event stream.
pub fn seq_stats(events: &[TimedEvent]) -> SeqStats {
    let mut stats = SeqStats::default();
    let mut in_run = false;
    for ev in events {
        match ev.event {
            Event::Request => {
                stats.r += 1;
                if !in_run {
                    stats.ri += 1;
                    in_run = true;
                }
            }
            Event::Modify => {
                stats.m += 1;
                in_run = false;
            }
        }
    }
    stats
}

/// Message counts for one client/document pair, in Table 1's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageCounts {
    /// Plain `GET` requests.
    pub plain_gets: u64,
    /// `If-Modified-Since` requests.
    pub ims: u64,
    /// `304 Not Modified` replies.
    pub replies_304: u64,
    /// File transfers (`200` replies).
    pub file_transfers: u64,
    /// `INVALIDATE` messages.
    pub invalidations: u64,
    /// Invalidations delivered by piggybacking (PSI; not extra messages).
    pub piggybacked: u64,
    /// Requests served from cache that returned a stale version to the user
    /// (each stale serve counted).
    pub stale_serves: u64,
    /// Request intervals served *entirely* from a stale copy — the "stale
    /// hits" that let adaptive TTL skip a file transfer in Table 1.
    pub stale_intervals: u64,
    /// `If-Modified-Since` requests sent because a TTL expired.
    pub ttl_missed: u64,
    /// Of those, how many found the document changed (and transferred it).
    pub ttl_missed_new_doc: u64,
}

impl MessageCounts {
    /// Control messages: everything except file-transfer payloads (Table 1's
    /// "Total Control Msg" row counts requests, 304s and invalidations).
    pub fn control_messages(&self) -> u64 {
        self.plain_gets + self.ims + self.replies_304 + self.invalidations
    }

    /// All messages (control + file transfers).
    pub fn total_messages(&self) -> u64 {
        self.control_messages() + self.file_transfers
    }
}

/// Table 1's polling-every-time column.
pub fn polling_formula(s: SeqStats) -> MessageCounts {
    MessageCounts {
        plain_gets: 0,
        ims: s.r,
        replies_304: s.r - s.ri,
        file_transfers: s.ri,
        ..MessageCounts::default()
    }
}

/// Table 1's invalidation column.
pub fn invalidation_formula(s: SeqStats) -> MessageCounts {
    MessageCounts {
        plain_gets: s.ri,
        file_transfers: s.ri,
        invalidations: s.ri,
        ..MessageCounts::default()
    }
}

/// Table 1's adaptive-TTL column, parameterised on the interpreter-measured
/// TTL quantities.
pub fn adaptive_ttl_formula(
    s: SeqStats,
    ttl_missed: u64,
    ttl_missed_new_doc: u64,
    stale_intervals: u64,
) -> MessageCounts {
    MessageCounts {
        plain_gets: 0,
        ims: ttl_missed,
        replies_304: ttl_missed - ttl_missed_new_doc,
        file_transfers: s.ri - stale_intervals,
        stale_intervals,
        ttl_missed,
        ttl_missed_new_doc,
        ..MessageCounts::default()
    }
}

/// Exactly interprets an event stream against the production protocol state
/// machines ([`ProxyPolicy`] + [`ServerConsistency`]) with an unbounded
/// cache and instantaneous delivery, returning the observed message counts.
///
/// This is the ground truth the Table 1 formulas approximate; the paper's
/// observations (e.g. "invalidation incurs at most twice the minimum number
/// of control messages") are asserted against it in the tests.
pub fn simulate(cfg: &ProtocolConfig, events: &[TimedEvent]) -> MessageCounts {
    let server_id = ServerId::new(0);
    let url = Url::new(server_id, 0);
    let client = ClientId::from_raw(1);
    let key = url.scoped(client);

    let mut proxy = ProxyPolicy::new(cfg);
    let mut server = ServerConsistency::new(cfg, server_id);
    let mut cache = CacheStore::unbounded(ReplacementPolicy::Lru);
    let mut counts = MessageCounts::default();

    // The document exists from t=0 with size 8 KiB.
    let mut current = DocMeta::new(ByteSize::from_kib(8), SimTime::ZERO);
    // Per-interval bookkeeping for the stale-interval identity.
    let mut interval_open = false;
    let mut interval_had_transfer = false;
    let mut interval_had_stale_serve = false;
    let close_interval = |counts: &mut MessageCounts, had_transfer: bool, had_stale: bool| {
        if had_stale && !had_transfer {
            counts.stale_intervals += 1;
        }
    };

    for ev in events {
        let now = ev.at;
        match ev.event {
            Event::Request => {
                if !interval_open {
                    interval_open = true;
                    interval_had_transfer = false;
                    interval_had_stale_serve = false;
                }
                let d = proxy.on_request(key, now, &mut cache);
                match d.action {
                    ProxyAction::ServeFromCache => {
                        // A serve-from-cache without a cache entry would be a
                        // proxy bug; count it as stale rather than panic so
                        // the interpreter stays total over any decision stream.
                        let cached_version = cache.peek(key).map(|e| e.meta.last_modified());
                        if cached_version != Some(current.last_modified()) {
                            counts.stale_serves += 1;
                            interval_had_stale_serve = true;
                        }
                    }
                    ProxyAction::SendGet { ims } => {
                        let is_ttl_miss =
                            d.had_entry && cfg.kind == ProtocolKind::AdaptiveTtl && ims.is_some();
                        if ims.is_some() {
                            counts.ims += 1;
                            if is_ttl_miss {
                                counts.ttl_missed += 1;
                            }
                        } else {
                            counts.plain_gets += 1;
                        }
                        let grant = server.on_get(url, client, ims, current, now);
                        counts.piggybacked += grant.piggyback.len() as u64;
                        proxy.on_piggyback(&grant.piggyback, client, &mut cache);
                        proxy.on_volume_grant(key, grant.volume_lease);
                        if grant.send_body {
                            counts.file_transfers += 1;
                            interval_had_transfer = true;
                            if is_ttl_miss {
                                counts.ttl_missed_new_doc += 1;
                            }
                            proxy.on_reply_200(key, current, grant.lease, now, &mut cache);
                        } else {
                            counts.replies_304 += 1;
                            let ok = proxy.on_reply_304(key, grant.lease, now, &mut cache);
                            debug_assert!(ok, "unbounded cache cannot evict");
                        }
                    }
                }
            }
            Event::Modify => {
                if interval_open {
                    close_interval(&mut counts, interval_had_transfer, interval_had_stale_serve);
                    interval_open = false;
                }
                current = DocMeta::new(current.size(), now);
                for recipient in server.on_modify(url, now) {
                    counts.invalidations += 1;
                    proxy.on_invalidate(url, recipient, &mut cache);
                    server.on_inval_ack(url, recipient);
                }
            }
        }
    }
    if interval_open {
        close_interval(&mut counts, interval_had_transfer, interval_had_stale_serve);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdaptiveTtlConfig;
    use wcc_types::SimDuration;

    const PAPER_STREAM: &str = "rrrmmmrrmrrrmmr";

    fn cfg(kind: ProtocolKind) -> ProtocolConfig {
        ProtocolConfig::new(kind)
    }

    #[test]
    fn paper_example_ri_is_four() {
        let events = parse_stream(PAPER_STREAM, 60);
        let s = seq_stats(&events);
        assert_eq!(s, SeqStats { r: 9, m: 6, ri: 4 });
    }

    #[test]
    fn parse_stream_accepts_spaces() {
        let spaced = parse_stream("r r r m", 10);
        let tight = parse_stream("rrrm", 10);
        assert_eq!(spaced, tight);
    }

    #[test]
    #[should_panic(expected = "invalid event character")]
    fn parse_stream_rejects_garbage() {
        parse_stream("rmx", 10);
    }

    #[test]
    fn polling_exact_vs_formula() {
        let events = parse_stream(PAPER_STREAM, 60);
        let s = seq_stats(&events);
        let exact = simulate(&cfg(ProtocolKind::PollEveryTime), &events);
        let formula = polling_formula(s);
        // The first-ever fetch is a plain GET in reality, an IMS in the
        // idealised formula; everything else matches exactly.
        assert_eq!(exact.plain_gets, 1);
        assert_eq!(exact.ims, formula.ims - 1);
        assert_eq!(exact.replies_304, formula.replies_304);
        assert_eq!(exact.file_transfers, formula.file_transfers);
        assert_eq!(exact.control_messages(), formula.control_messages());
        assert_eq!(exact.stale_serves, 0, "polling never serves stale bytes");
    }

    #[test]
    fn invalidation_exact_vs_formula() {
        let events = parse_stream(PAPER_STREAM, 60);
        let s = seq_stats(&events);
        let exact = simulate(&cfg(ProtocolKind::Invalidation), &events);
        let formula = invalidation_formula(s);
        assert_eq!(exact.plain_gets, formula.plain_gets);
        assert_eq!(exact.file_transfers, formula.file_transfers);
        // The trailing interval is never invalidated (the trace ends), so
        // the exact count is RI−1 here; the formula rounds up to RI.
        assert_eq!(exact.invalidations, formula.invalidations - 1);
        assert_eq!(exact.ims, 0);
        assert_eq!(exact.replies_304, 0);
        assert_eq!(exact.stale_serves, 0, "acks are instantaneous here");
    }

    #[test]
    fn invalidation_control_messages_at_most_twice_minimum() {
        // §3: "Invalidation incurs at most twice the minimum number of
        // control messages" (the minimum being RI).
        for stream in ["rrrmmmrrmrrrmmr", "rmrmrmrm", "rrrrrrrr", "mmmmrrr", "r"] {
            let events = parse_stream(stream, 30);
            let s = seq_stats(&events);
            let exact = simulate(&cfg(ProtocolKind::Invalidation), &events);
            assert!(
                exact.control_messages() <= 2 * s.ri,
                "{stream}: {} > 2·{}",
                exact.control_messages(),
                s.ri
            );
        }
    }

    #[test]
    fn adaptive_ttl_transfer_identity() {
        // With a large threshold the TTL never expires within the stream, so
        // every interval after the first is served entirely stale.
        let events = parse_stream(PAPER_STREAM, 60);
        let s = seq_stats(&events);
        let generous =
            ProtocolConfig::new(ProtocolKind::AdaptiveTtl).with_adaptive_ttl(AdaptiveTtlConfig {
                threshold: 1000.0,
                floor: SimDuration::from_days(100),
                cap: SimDuration::from_days(10_000),
            });
        let exact = simulate(&generous, &events);
        assert_eq!(exact.file_transfers, 1, "only the compulsory first fetch");
        assert_eq!(exact.stale_intervals, s.ri - 1);
        assert_eq!(exact.file_transfers, s.ri - exact.stale_intervals);
        assert!(exact.stale_serves >= exact.stale_intervals);
    }

    #[test]
    fn adaptive_ttl_zero_ttl_degenerates_to_polling_traffic() {
        // threshold→0 with zero floor: every hit revalidates, i.e. the
        // adaptive-TTL column becomes the polling column.
        let events = parse_stream(PAPER_STREAM, 60);
        let s = seq_stats(&events);
        let paranoid =
            ProtocolConfig::new(ProtocolKind::AdaptiveTtl).with_adaptive_ttl(AdaptiveTtlConfig {
                threshold: 0.0,
                floor: SimDuration::ZERO,
                cap: SimDuration::ZERO,
            });
        let exact = simulate(&paranoid, &events);
        let polling = simulate(&cfg(ProtocolKind::PollEveryTime), &events);
        assert_eq!(exact.file_transfers, polling.file_transfers);
        assert_eq!(exact.control_messages(), polling.control_messages());
        assert_eq!(exact.stale_serves, 0);
        assert_eq!(s.ri, exact.file_transfers);
    }

    #[test]
    fn ttl_formula_matches_interpreter_quantities() {
        let events = parse_stream("rrrrmmrrrrmmrrrr", 3600);
        let s = seq_stats(&events);
        // Default 10% threshold with a 30 s floor: expiries happen.
        let exact = simulate(&cfg(ProtocolKind::AdaptiveTtl), &events);
        let formula = adaptive_ttl_formula(
            s,
            exact.ttl_missed,
            exact.ttl_missed_new_doc,
            exact.stale_intervals,
        );
        assert_eq!(exact.ims, formula.ims);
        assert_eq!(exact.replies_304, formula.replies_304);
        assert_eq!(exact.file_transfers, formula.file_transfers);
    }

    #[test]
    fn bandwidth_saving_comes_only_from_staleness() {
        // §3's key observation: "the only times when adaptive TTL saves file
        // transfers over the other approaches are when stale documents are
        // returned to the user."
        for stream in ["rrrmmmrrmrrrmmr", "rmrmrm", "rrrrmrrrr"] {
            for step in [10u64, 600, 86_400] {
                let events = parse_stream(stream, step);
                let ttl = simulate(&cfg(ProtocolKind::AdaptiveTtl), &events);
                let poll = simulate(&cfg(ProtocolKind::PollEveryTime), &events);
                assert_eq!(
                    poll.file_transfers - ttl.file_transfers,
                    ttl.stale_intervals,
                    "stream {stream} step {step}"
                );
            }
        }
    }

    #[test]
    fn empty_and_degenerate_streams() {
        for kind in ProtocolKind::ALL {
            let zero = simulate(&cfg(kind), &[]);
            assert_eq!(zero, MessageCounts::default(), "{kind}");
            let only_mods = simulate(&cfg(kind), &parse_stream("mmmm", 10));
            assert_eq!(only_mods.total_messages(), 0, "{kind}");
        }
    }

    #[test]
    fn strong_protocols_never_serve_stale() {
        for kind in [
            ProtocolKind::PollEveryTime,
            ProtocolKind::Invalidation,
            ProtocolKind::LeaseInvalidation,
            ProtocolKind::TwoTierLease,
        ] {
            let exact = simulate(&cfg(kind), &parse_stream("rrmrmrrrmmrrrmr", 3600));
            assert_eq!(exact.stale_serves, 0, "{kind}");
            assert_eq!(exact.stale_intervals, 0, "{kind}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn stream_strategy() -> impl Strategy<Value = Vec<TimedEvent>> {
        (
            proptest::collection::vec(prop_oneof![Just('r'), Just('m')], 0..60),
            1u64..100_000,
        )
            .prop_map(|(chars, step)| {
                let s: String = chars.into_iter().collect();
                parse_stream(&s, step)
            })
    }

    proptest! {
        /// Polling: control-message totals match Table 1 exactly; transfers
        /// equal RI; never stale.
        #[test]
        fn polling_matches_table1(events in stream_strategy()) {
            let s = seq_stats(&events);
            let exact = simulate(&ProtocolConfig::new(ProtocolKind::PollEveryTime), &events);
            let formula = polling_formula(s);
            prop_assert_eq!(exact.control_messages(), formula.control_messages());
            prop_assert_eq!(exact.file_transfers, s.ri);
            prop_assert_eq!(exact.stale_serves, 0);
            prop_assert_eq!(exact.invalidations, 0);
        }

        /// Invalidation: GETs and transfers equal RI; invalidations are RI
        /// or RI−1 (the trailing interval); never more control messages than
        /// twice the minimum.
        #[test]
        fn invalidation_matches_table1(events in stream_strategy()) {
            let s = seq_stats(&events);
            let exact = simulate(&ProtocolConfig::new(ProtocolKind::Invalidation), &events);
            prop_assert_eq!(exact.plain_gets, s.ri);
            prop_assert_eq!(exact.file_transfers, s.ri);
            prop_assert!(exact.invalidations <= s.ri);
            prop_assert!(s.ri - exact.invalidations <= 1);
            prop_assert_eq!(exact.ims, 0);
            prop_assert!(exact.control_messages() <= 2 * s.ri);
            prop_assert_eq!(exact.stale_serves, 0);
        }

        /// Adaptive TTL: the transfer/staleness identity holds, and TTL
        /// saves bandwidth only through stale intervals.
        #[test]
        fn ttl_identity(events in stream_strategy()) {
            let s = seq_stats(&events);
            let exact = simulate(&ProtocolConfig::new(ProtocolKind::AdaptiveTtl), &events);
            prop_assert_eq!(exact.file_transfers, s.ri - exact.stale_intervals);
            prop_assert!(exact.stale_serves >= exact.stale_intervals);
            prop_assert_eq!(exact.replies_304, exact.ims - exact.ttl_missed_new_doc
                - (exact.ims - exact.ttl_missed)); // non-TTL IMS (questionable) are zero here
        }

        /// Lease protocols are strong for any interleaving.
        #[test]
        fn leases_never_stale(events in stream_strategy(), lease_secs in 1u64..1_000_000) {
            for kind in [ProtocolKind::LeaseInvalidation, ProtocolKind::TwoTierLease] {
                let cfg = ProtocolConfig::new(kind)
                    .with_lease(wcc_types::SimDuration::from_secs(lease_secs));
                let exact = simulate(&cfg, &events);
                prop_assert_eq!(exact.stale_serves, 0);
            }
        }
    }
}
