//! §7 hit metering: recovering true document popularity at the server.
//!
//! "For those commercial Web sites that want to control the accesses to its
//! contents, invalidation should be merged with other hit-metering
//! protocols [Leach & Mogul] to provide both the benefits of caching and
//! the capability of access control."
//!
//! The merge implemented here costs zero extra messages: caches count the
//! hits they serve locally and report them on whatever they were going to
//! send anyway — the next `GET`/`If-Modified-Since` for that document, or
//! the `InvalAck` when an invalidation deletes the copy (the dying copy's
//! count rides the ack). The server-side [`HitMeter`] adds the reports to
//! the requests it sees directly, reconstructing the document's true view
//! count.

use wcc_types::{FxHashMap, Url};

/// Per-document view accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocViews {
    /// Requests the server answered itself (`GET` + `If-Modified-Since`).
    pub served: u64,
    /// Cache hits reported by downstream caches.
    pub reported: u64,
}

impl DocViews {
    /// Total metered views: directly served plus cache-reported.
    pub fn total(self) -> u64 {
        self.served + self.reported
    }
}

/// The server-side hit meter.
///
/// # Examples
///
/// ```
/// use wcc_core::HitMeter;
/// use wcc_types::{ServerId, Url};
///
/// let url = Url::new(ServerId::new(0), 1);
/// let mut meter = HitMeter::new();
/// meter.record_request(url);      // a GET the server answers
/// meter.record_report(url, 4);    // four cache hits reported with it
/// assert_eq!(meter.views(url).total(), 5);
/// ```
#[derive(Debug, Default, Clone)]
pub struct HitMeter {
    per_doc: FxHashMap<Url, DocViews>,
    served: u64,
    reported: u64,
}

impl HitMeter {
    /// An empty meter.
    pub fn new() -> Self {
        HitMeter::default()
    }

    /// Records one request the server answered directly.
    pub fn record_request(&mut self, url: Url) {
        self.per_doc.entry(url).or_default().served += 1;
        self.served += 1;
    }

    /// Records `hits` cache hits reported by a downstream cache (on a
    /// request or an invalidation ack).
    pub fn record_report(&mut self, url: Url, hits: u64) {
        if hits == 0 {
            return;
        }
        self.per_doc.entry(url).or_default().reported += hits;
        self.reported += hits;
    }

    /// This document's accounting.
    pub fn views(&self, url: Url) -> DocViews {
        self.per_doc.get(&url).copied().unwrap_or_default()
    }

    /// Total requests served directly.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total cache hits reported.
    pub fn reported(&self) -> u64 {
        self.reported
    }

    /// Total metered views across all documents.
    pub fn total(&self) -> u64 {
        self.served + self.reported
    }

    /// The `n` most-viewed documents, by metered total, descending
    /// (ties broken by URL for determinism).
    pub fn top(&self, n: usize) -> Vec<(Url, DocViews)> {
        let mut v: Vec<(Url, DocViews)> = self.per_doc.iter().map(|(u, d)| (*u, *d)).collect();
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::ServerId;

    fn url(doc: u32) -> Url {
        Url::new(ServerId::new(0), doc)
    }

    #[test]
    fn accumulates_served_and_reported() {
        let mut m = HitMeter::new();
        m.record_request(url(1));
        m.record_request(url(1));
        m.record_report(url(1), 10);
        m.record_request(url(2));
        m.record_report(url(2), 0); // no-op
        assert_eq!(
            m.views(url(1)),
            DocViews {
                served: 2,
                reported: 10
            }
        );
        assert_eq!(m.views(url(1)).total(), 12);
        assert_eq!(m.views(url(2)).total(), 1);
        assert_eq!(m.views(url(9)).total(), 0);
        assert_eq!(m.served(), 3);
        assert_eq!(m.reported(), 10);
        assert_eq!(m.total(), 13);
    }

    #[test]
    fn top_orders_by_total_views() {
        let mut m = HitMeter::new();
        m.record_request(url(1));
        m.record_report(url(2), 5);
        m.record_request(url(3));
        m.record_report(url(3), 1);
        let top = m.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, url(2));
        assert_eq!(top[1].0, url(3));
        assert!(m.top(0).is_empty());
        assert_eq!(m.top(10).len(), 3);
    }
}
