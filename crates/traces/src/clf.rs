//! Common Log Format importer.
//!
//! The five ITA traces the paper uses are distributed in NCSA Common Log
//! Format. This importer lets a user who has downloaded them replay the
//! *real* traces instead of the calibrated synthetic ones:
//!
//! ```text
//! host - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245
//! ```
//!
//! Hosts become dense [`ClientId`]s (hashed into a stable synthetic IP),
//! paths become dense document ids, and each document's size is taken from
//! the largest `200` response observed for it.

use crate::{Trace, TraceRecord};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use wcc_types::{ByteSize, ClientId, ServerId, SimDuration, SimTime, Url};

/// Error importing a CLF trace.
#[derive(Debug)]
pub enum ClfError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// No parseable request lines were found.
    Empty,
}

impl fmt::Display for ClfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClfError::Io(e) => write!(f, "clf i/o error: {e}"),
            ClfError::Empty => write!(f, "no parseable CLF records"),
        }
    }
}

impl std::error::Error for ClfError {}

impl From<std::io::Error> for ClfError {
    fn from(e: std::io::Error) -> Self {
        ClfError::Io(e)
    }
}

/// One parsed CLF line (before id assignment).
#[derive(Debug, Clone, PartialEq, Eq)]
struct RawRecord {
    host: String,
    epoch_secs: i64,
    path: String,
    status: u16,
    bytes: u64,
}

/// Parses a whole CLF stream into a replayable [`Trace`].
///
/// Lines that do not parse (truncated, non-GET, bad dates) are skipped and
/// counted; timestamps are rebased so the first request is at `t = 0`.
///
/// # Errors
///
/// Returns [`ClfError::Io`] if reading fails, [`ClfError::Empty`] if no line
/// parsed.
///
/// # Examples
///
/// ```
/// use wcc_traces::clf::parse_clf;
///
/// let log = "\
/// alpha.example.com - - [01/Jul/1995:00:00:01 -0400] \"GET /a.html HTTP/1.0\" 200 1024\n\
/// beta.example.com - - [01/Jul/1995:00:00:09 -0400] \"GET /a.html HTTP/1.0\" 304 0\n";
/// let (trace, skipped) = parse_clf(log.as_bytes(), "demo")?;
/// assert_eq!(trace.records.len(), 2);
/// assert_eq!(skipped, 0);
/// # Ok::<(), wcc_traces::clf::ClfError>(())
/// ```
pub fn parse_clf<R: BufRead>(reader: R, name: &str) -> Result<(Trace, u64), ClfError> {
    let server = ServerId::new(0);
    let mut raws = Vec::new();
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = line?;
        match parse_line(&line) {
            Some(raw) => raws.push(raw),
            None => {
                if !line.trim().is_empty() {
                    skipped += 1;
                }
            }
        }
    }
    if raws.is_empty() {
        return Err(ClfError::Empty);
    }
    raws.sort_by_key(|r| r.epoch_secs);
    let t0 = raws[0].epoch_secs;
    let t_end = raws.last().expect("nonempty").epoch_secs;

    let mut host_ids: HashMap<String, ClientId> = HashMap::new();
    let mut doc_ids: HashMap<String, u32> = HashMap::new();
    let mut doc_sizes: Vec<ByteSize> = Vec::new();
    let mut records = Vec::with_capacity(raws.len());
    for raw in &raws {
        let next_client = host_ids.len() as u32;
        let client = *host_ids
            .entry(raw.host.clone())
            .or_insert_with(|| synth_ip(next_client));
        let doc = *doc_ids.entry(raw.path.clone()).or_insert_with(|| {
            doc_sizes.push(ByteSize::ZERO);
            (doc_sizes.len() - 1) as u32
        });
        if raw.status == 200 {
            let seen = &mut doc_sizes[doc as usize];
            *seen = (*seen).max(ByteSize::from_bytes(raw.bytes));
        }
        records.push(TraceRecord {
            at: SimTime::from_secs((raw.epoch_secs - t0) as u64),
            client,
            url: Url::new(server, doc),
        });
    }
    // Documents never seen with a 200 get a nominal 8 KiB.
    for size in &mut doc_sizes {
        if size.is_zero() {
            *size = ByteSize::from_kib(8);
        }
    }
    let trace = Trace {
        name: name.to_string(),
        server,
        duration: SimDuration::from_secs((t_end - t0).max(0) as u64 + 1),
        doc_sizes,
        records,
    };
    trace.validate().map_err(|_| ClfError::Empty)?;
    Ok((trace, skipped))
}

/// Deterministic synthetic IP for the n-th distinct host (stays out of the
/// 0.x and 255.x ranges).
fn synth_ip(n: u32) -> ClientId {
    ClientId::from_ip([
        10 + ((n >> 16) % 200) as u8,
        ((n >> 8) & 0xff) as u8,
        (n & 0xff) as u8,
        1 + (n % 250) as u8,
    ])
}

fn parse_line(line: &str) -> Option<RawRecord> {
    // host ident user [date] "method path proto" status bytes
    let (host, rest) = line.split_once(' ')?;
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    let date = &rest[open + 1..close];
    let epoch_secs = parse_clf_date(date)?;
    let after = &rest[close + 1..];
    let q1 = after.find('"')?;
    let q2 = after[q1 + 1..].find('"')? + q1 + 1;
    let request = &after[q1 + 1..q2];
    let mut req_parts = request.split_whitespace();
    let method = req_parts.next()?;
    if method != "GET" {
        return None;
    }
    let path = req_parts.next()?.to_string();
    let tail = after[q2 + 1..].trim();
    let mut tail_parts = tail.split_whitespace();
    let status: u16 = tail_parts.next()?.parse().ok()?;
    let bytes: u64 = match tail_parts.next()? {
        "-" => 0,
        n => n.parse().ok()?,
    };
    Some(RawRecord {
        host: host.to_string(),
        epoch_secs,
        path,
        status,
        bytes,
    })
}

/// Parses `01/Jul/1995:00:00:01 -0400` into Unix seconds (UTC).
fn parse_clf_date(s: &str) -> Option<i64> {
    let (stamp, zone) = match s.split_once(' ') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    };
    let mut parts = stamp.split(':');
    let date = parts.next()?;
    let hh: i64 = parts.next()?.parse().ok()?;
    let mm: i64 = parts.next()?.parse().ok()?;
    let ss: i64 = parts.next()?.parse().ok()?;
    let mut dmy = date.split('/');
    let day: i64 = dmy.next()?.parse().ok()?;
    let month = month_number(dmy.next()?)?;
    let year: i64 = dmy.next()?.parse().ok()?;
    let days = days_from_civil(year, month, day);
    let mut secs = days * 86_400 + hh * 3_600 + mm * 60 + ss;
    if let Some(zone) = zone {
        // `-0400` means local = UTC − 4 h, so UTC = local + 4 h.
        let sign = match zone.as_bytes().first()? {
            b'+' => 1,
            b'-' => -1,
            _ => return None,
        };
        let zh: i64 = zone.get(1..3)?.parse().ok()?;
        let zm: i64 = zone.get(3..5)?.parse().ok()?;
        secs -= sign * (zh * 3_600 + zm * 60);
    }
    Some(secs)
}

fn month_number(name: &str) -> Option<i64> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS
        .iter()
        .position(|m| m.eq_ignore_ascii_case(name))
        .map(|i| i as i64 + 1)
}

/// Howard Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
unicomp6.unicomp.net - - [01/Jul/1995:00:00:06 -0400] \"GET /shuttle/countdown/ HTTP/1.0\" 200 3985
burger.letters.com - - [01/Jul/1995:00:00:11 -0400] \"GET /shuttle/countdown/liftoff.html HTTP/1.0\" 304 0
burger.letters.com - - [01/Jul/1995:00:00:12 -0400] \"GET /images/NASA-logosmall.gif HTTP/1.0\" 304 0
205.212.115.106 - - [01/Jul/1995:00:00:12 -0400] \"GET /shuttle/countdown/countdown.html HTTP/1.0\" 200 3985
d104.aa.net - - [01/Jul/1995:00:00:13 -0400] \"POST /cgi/form HTTP/1.0\" 200 100
garbage line that does not parse
unicomp6.unicomp.net - - [01/Jul/1995:00:00:14 -0400] \"GET /shuttle/countdown/ HTTP/1.0\" 200 3985
";

    #[test]
    fn parses_nasa_style_log() {
        let (trace, skipped) = parse_clf(SAMPLE.as_bytes(), "NASA-real").unwrap();
        // 5 GET lines; POST and the garbage line are skipped.
        assert_eq!(trace.records.len(), 5);
        assert_eq!(skipped, 2);
        assert!(trace.validate().is_ok());
        // First record rebased to t = 0.
        assert_eq!(trace.records[0].at, SimTime::ZERO);
        assert_eq!(trace.records[4].at, SimTime::from_secs(8));
        // Same host ⇒ same client id; same path ⇒ same doc id.
        assert_eq!(trace.records[0].client, trace.records[4].client);
        assert_eq!(trace.records[0].url, trace.records[4].url);
        assert_ne!(trace.records[0].client, trace.records[1].client);
        // Doc size captured from the 200.
        assert_eq!(
            trace.doc_size(trace.records[0].url.doc()),
            ByteSize::from_bytes(3985)
        );
        // 304-only docs get the nominal size.
        assert_eq!(
            trace.doc_size(trace.records[1].url.doc()),
            ByteSize::from_kib(8)
        );
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(parse_clf(&b""[..], "x"), Err(ClfError::Empty)));
        assert!(matches!(
            parse_clf(&b"junk\nmore junk\n"[..], "x"),
            Err(ClfError::Empty)
        ));
    }

    #[test]
    fn date_parsing_epoch_and_zones() {
        // 01/Jan/1970:00:00:00 +0000 == 0.
        assert_eq!(parse_clf_date("01/Jan/1970:00:00:00 +0000"), Some(0));
        // One day later.
        assert_eq!(parse_clf_date("02/Jan/1970:00:00:00 +0000"), Some(86_400));
        // Zone conversion: 00:00 -0400 is 04:00 UTC.
        assert_eq!(
            parse_clf_date("01/Jan/1970:00:00:00 -0400"),
            Some(4 * 3_600)
        );
        assert_eq!(parse_clf_date("01/Jan/1970:02:00:00 +0200"), Some(0));
        // NASA trace epoch: 01/Jul/1995:00:00:01 -0400 = 804 571 201.
        assert_eq!(
            parse_clf_date("01/Jul/1995:00:00:01 -0400"),
            Some(804_571_201)
        );
        assert_eq!(parse_clf_date("bogus"), None);
        assert_eq!(parse_clf_date("01/Zzz/1995:00:00:01 -0400"), None);
    }

    #[test]
    fn days_from_civil_reference_points() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn dash_bytes_and_missing_fields() {
        let line = r#"h - - [01/Jul/1995:00:00:06 -0400] "GET /x HTTP/1.0" 200 -"#;
        let raw = parse_line(line).unwrap();
        assert_eq!(raw.bytes, 0);
        assert!(parse_line("too short").is_none());
        assert!(parse_line(r#"h - - [bad] "GET /x HTTP/1.0" 200 1"#).is_none());
    }

    #[test]
    fn synthetic_ips_distinct_for_small_n() {
        let mut set = std::collections::HashSet::new();
        for n in 0..10_000 {
            set.insert(synth_ip(n));
        }
        assert_eq!(set.len(), 10_000);
    }
}
