//! Scenario sampling: one seed → one complete, reproducible experiment.
//!
//! A [`Scenario`] bundles everything a replay needs — workload shape,
//! protocol and tuning, deployment knobs, and a declarative fault plan —
//! and is a pure function of a single `u64` seed, so any failure the
//! fuzzer finds is reproducible from its seed line alone.

use rand::Rng;
use wcc_core::{AdaptiveLeaseConfig, ProtocolConfig, ProtocolKind};
use wcc_httpsim::{CacheSharing, ChangeDetection, DeploymentOptions, InvalSendMode, Topology};
use wcc_traces::{TraceSpec, WorkloadFamily};
use wcc_types::{ByteSize, InvalBatchConfig, SimDuration};

/// Fault windows are placed at fractions of the fault-free replay's wall
/// duration (the same technique as `wcc_replay::failure`), so the plan
/// stays meaningful when the shrinker changes the workload size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Proxy `proxy` (index modulo the proxy count) crashes over the
    /// window `[from, to)` (fractions of the reference wall).
    ProxyOutage {
        /// Which proxy, as an index reduced modulo `num_proxies`.
        proxy: u32,
        /// Window start as a fraction of the reference wall duration.
        from: f64,
        /// Window end as a fraction of the reference wall duration.
        to: f64,
    },
    /// The origin server crashes over `[from, to)`; on recovery it sends
    /// the paper's bulk `INVALIDATE <server>` to every persisted site.
    OriginOutage {
        /// Window start as a fraction of the reference wall duration.
        from: f64,
        /// Window end as a fraction of the reference wall duration.
        to: f64,
    },
    /// A network partition between the origin and proxy `proxy` over
    /// `[from, to)`.
    Partition {
        /// Which proxy, as an index reduced modulo `num_proxies`.
        proxy: u32,
        /// Window start as a fraction of the reference wall duration.
        from: f64,
        /// Window end as a fraction of the reference wall duration.
        to: f64,
    },
}

/// Optional request steering: re-point a fraction of reads at recently
/// modified documents (`wcc_traces::synthetic::with_modification_interest`),
/// so writes actually land on cached copies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interest {
    /// Probability that a qualifying read is redirected.
    pub boost: f64,
    /// How long after a write a read counts as "interested".
    pub window: SimDuration,
}

/// One fully specified fuzz scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was generated from; also drives trace
    /// generation and the modifier.
    pub seed: u64,
    /// The synthetic workload's calibration targets.
    pub spec: TraceSpec,
    /// Mean file lifetime driving the modifier.
    pub mean_lifetime: SimDuration,
    /// The protocol under test, fully tuned.
    pub protocol: ProtocolConfig,
    /// Deployment knobs (`audit` is forced on by the checker).
    pub options: DeploymentOptions,
    /// Optional post-write read steering.
    pub interest: Option<Interest>,
    /// The declarative failure schedule.
    pub faults: Vec<FaultSpec>,
    /// When set, the workload is a multi-origin scenario family
    /// (`wcc_traces::family`) generated from `spec`/`mean_lifetime` instead
    /// of the classic single-origin synthetic trace.
    pub family: Option<WorkloadFamily>,
}

impl Scenario {
    /// Samples the scenario for `seed`. Deterministic: the same seed always
    /// yields the same scenario, on every platform.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xf0_22_5c_e2_a7_1b_4d_93);

        // Workload shape: small enough that one scenario replays in
        // milliseconds, varied enough to exercise caching, eviction,
        // sharing and churn.
        let duration = SimDuration::from_hours(rng.gen_range(2u64..=36));
        let num_docs = rng.gen_range(4u32..=48);
        let mut spec = TraceSpec {
            name: "fuzz",
            duration,
            total_requests: rng.gen_range(60u64..=320),
            num_docs,
            num_clients: rng.gen_range(2u32..=32),
            avg_doc_size: ByteSize::from_kib(rng.gen_range(2u64..=64)),
            doc_zipf: rng.gen_range(0.6..1.05),
            client_zipf: rng.gen_range(0.5..0.9),
            diurnal_amplitude: rng.gen_range(0.0..0.7),
            default_lifetime: duration, // overridden by `mean_lifetime`
            num_origins: 1,
            origin_zipf: 0.0,
        };
        // Pick the lifetime so the modifier performs a target number of
        // writes (2..=40), independent of duration and population.
        let target_mods = rng.gen_range(2u64..=40);
        let mean_lifetime = duration
            .saturating_mul(num_docs as u64)
            .div(target_mods)
            .max(SimDuration::from_mins(10));

        let kind = *pick_weighted(
            &mut rng,
            &[
                (ProtocolKind::Invalidation, 22),
                (ProtocolKind::AdaptiveTtl, 13),
                (ProtocolKind::PollEveryTime, 13),
                (ProtocolKind::LeaseInvalidation, 13),
                (ProtocolKind::TwoTierLease, 13),
                (ProtocolKind::VolumeLease, 13),
                (ProtocolKind::FixedTtl, 6),
                (ProtocolKind::PiggybackInvalidation, 7),
            ],
        );
        let mut protocol = ProtocolConfig::new(kind)
            .with_lease(SimDuration::from_days(rng.gen_range(1u64..=4)))
            .with_fixed_ttl(SimDuration::from_hours(rng.gen_range(1u64..=48)))
            .with_volume_lease(SimDuration::from_mins(rng.gen_range(1u64..=8)));

        let mut options = DeploymentOptions {
            num_proxies: rng.gen_range(1u32..=4),
            ..Default::default()
        };
        if rng.gen_bool(0.25) {
            options.send_mode = InvalSendMode::Decoupled;
        }
        if rng.gen_bool(0.3) {
            options.sharing = CacheSharing::SharedPerProxy;
        }
        if rng.gen_bool(0.25) {
            options.detection = ChangeDetection::BrowserBased;
        }
        options.window = SimDuration::from_mins(rng.gen_range(1u64..=8));
        if rng.gen_bool(0.2) {
            // A tight cache to force evictions and revalidation races.
            options.cache_capacity = ByteSize::from_kib(rng.gen_range(64u64..=512));
        }
        options.retry_interval = SimDuration::from_secs(rng.gen_range(1u64..=3));
        options.max_retries = rng.gen_range(10u32..=30);
        options.audit = true;

        let mut interest = rng.gen_bool(0.5).then(|| Interest {
            boost: rng.gen_range(0.2..0.6),
            window: SimDuration::from_hours(rng.gen_range(1u64..=4)),
        });

        let num_faults = *pick_weighted(&mut rng, &[(0usize, 35), (1, 30), (2, 20), (3, 15)]);
        let faults = (0..num_faults)
            .map(|_| {
                let from = rng.gen_range(0.05..0.7);
                let to = from + rng.gen_range(0.05..0.25);
                let proxy = rng.gen_range(0u32..4);
                match rng.gen_range(0u32..3) {
                    0 => FaultSpec::ProxyOutage { proxy, from, to },
                    1 => FaultSpec::OriginOutage { from, to },
                    _ => FaultSpec::Partition { proxy, from, to },
                }
            })
            .collect();

        // Family dimension — drawn *after* every classic draw so that every
        // pre-existing seed (the committed corpus included) still samples an
        // identical classic scenario.
        let family = rng
            .gen_bool(0.25)
            .then(|| WorkloadFamily::ALL[rng.gen_range(0..WorkloadFamily::ALL.len())]);
        if let Some(f) = family {
            spec.name = f.name();
            spec.num_origins = rng.gen_range(2u32..=6);
            spec.origin_zipf = rng.gen_range(0.3..1.0);
            spec.num_docs = spec.num_docs.max(spec.num_origins);
            if f == WorkloadFamily::RealTimeFeed {
                spec.diurnal_amplitude = 0.85;
            }
            // Multi-origin deployments are flat with synchronous fan-out
            // (`Deployment::build_multi`'s contract), and the interest
            // steering is a single-origin feature.
            options.topology = Topology::Flat;
            options.send_mode = InvalSendMode::Synchronous;
            interest = None;
        }

        // Batched-proposer dimension — drawn after the family block for
        // the same reason: committed corpus seeds must keep sampling the
        // scenario they were committed for. Half the scenarios keep the
        // per-write fan-out; the other half sweep the count threshold
        // across the full ablation range with a short age bound (sim-time
        // windows are five minutes, so a long age would just mean "flush
        // at the window barrier" for every setting).
        if rng.gen_bool(0.5) {
            let thresholds = [2usize, 4, 8, 16, 32];
            options.inval_batch = Some(InvalBatchConfig {
                max_entries: thresholds[rng.gen_range(0..thresholds.len())],
                max_age: SimDuration::from_micros(rng.gen_range(100u64..=200_000)),
                max_bytes: ByteSize::from_kib(rng.gen_range(1u64..=8)),
            });
        }
        // Adaptive lease economics ride along for a third of the
        // scenarios; the config is inert under non-lease protocols.
        if rng.gen_bool(0.35) {
            protocol = protocol.with_adaptive_lease(
                AdaptiveLeaseConfig::default()
                    .with_base(SimDuration::from_mins(rng.gen_range(10u64..=240))),
            );
        }

        Scenario {
            seed,
            spec,
            mean_lifetime,
            protocol,
            options,
            interest,
            faults,
            family,
        }
    }

    /// A one-line summary for progress logs and fuzz summaries.
    pub fn summary(&self) -> String {
        let family = self.family.map_or(String::new(), |f| {
            format!(", family {} ({} origins)", f.name(), self.spec.num_origins)
        });
        format!(
            "seed {:#018x}: {} reqs/{} docs/{} clients over {}, {} (lifetime {}), \
             {} prox, {} fault(s){family}",
            self.seed,
            self.spec.total_requests,
            self.spec.num_docs,
            self.spec.num_clients,
            self.spec.duration,
            self.protocol.kind,
            self.mean_lifetime,
            self.options.num_proxies,
            self.faults.len(),
        )
    }

    /// The full machine-readable scenario description (RON-style debug
    /// text) emitted in repro reports.
    pub fn describe(&self) -> String {
        format!("{self:#?}")
    }
}

/// Picks from `choices` with the given integer weights.
fn pick_weighted<'c, T>(rng: &mut impl Rng, choices: &'c [(T, u32)]) -> &'c T {
    let total: u32 = choices.iter().map(|(_, w)| w).sum();
    let mut draw = rng.gen_range(0..total);
    for (value, weight) in choices {
        if draw < *weight {
            return value;
        }
        draw -= weight;
    }
    &choices[choices.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert_eq!(a.summary(), b.summary(), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::generate(1);
        let b = Scenario::generate(2);
        assert_ne!(a.describe(), b.describe());
    }

    #[test]
    fn sampled_space_is_diverse_and_well_formed() {
        let mut kinds = std::collections::HashSet::new();
        let mut with_faults = 0usize;
        for seed in 0..200u64 {
            let s = Scenario::generate(seed);
            kinds.insert(s.protocol.kind);
            with_faults += usize::from(!s.faults.is_empty());
            assert!(s.spec.total_requests >= 60);
            assert!(s.spec.num_docs >= 4);
            assert!(s.options.num_proxies >= 1);
            assert!(s.faults.len() <= 3);
            for f in &s.faults {
                let (from, to) = match *f {
                    FaultSpec::ProxyOutage { from, to, .. }
                    | FaultSpec::OriginOutage { from, to }
                    | FaultSpec::Partition { from, to, .. } => (from, to),
                };
                assert!(from > 0.0 && to > from && to < 1.0, "window {from}..{to}");
            }
            // The modifier must have a plausible write budget.
            let mods = s.spec.expected_modifications(s.mean_lifetime);
            assert!(mods >= 1, "seed {seed}: no writes sampled");
        }
        assert!(
            kinds.len() >= 6,
            "only {} protocol kinds in 200 seeds",
            kinds.len()
        );
        assert!(
            with_faults >= 80,
            "only {with_faults} faulted scenarios in 200"
        );
    }

    #[test]
    fn family_dimension_samples_every_family_and_keeps_multi_origin_legal() {
        let mut families = std::collections::HashSet::new();
        let mut with_family = 0usize;
        for seed in 0..400u64 {
            let s = Scenario::generate(seed);
            match s.family {
                None => assert_eq!(s.spec.num_origins, 1, "seed {seed}"),
                Some(f) => {
                    with_family += 1;
                    families.insert(f);
                    assert!(
                        (2..=6).contains(&s.spec.num_origins),
                        "seed {seed}: {} origins",
                        s.spec.num_origins
                    );
                    assert!(s.spec.num_docs >= s.spec.num_origins, "seed {seed}");
                    // `Deployment::build_multi` contract.
                    assert_eq!(s.options.topology, Topology::Flat, "seed {seed}");
                    assert_eq!(
                        s.options.send_mode,
                        InvalSendMode::Synchronous,
                        "seed {seed}"
                    );
                    assert!(s.interest.is_none(), "seed {seed}");
                }
            }
        }
        assert_eq!(
            families.len(),
            WorkloadFamily::ALL.len(),
            "only {families:?} sampled in 400 seeds"
        );
        assert!(
            with_family >= 60,
            "only {with_family} family scenarios in 400"
        );
    }
}
