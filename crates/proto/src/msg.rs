//! The message vocabulary exchanged by proxies, the accelerator, the origin
//! server, the modifier and the time coordinator.

use core::fmt;
use wcc_types::{Body, ByteSize, ClientId, ServerId, SimTime, Url};

/// Correlates a reply with the request that caused it. Unique per issuing
/// proxy (the pair `(proxy node, RequestId)` is globally unique).
///
/// # Examples
///
/// ```
/// use wcc_proto::RequestId;
///
/// let id = RequestId::new(7);
/// assert_eq!(id.get(), 7);
/// assert_eq!(id.next(), RequestId::new(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw counter value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The next id in sequence.
    #[must_use]
    pub const fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A `GET` request from a proxy to the origin site, optionally conditional.
///
/// `ims: Some(validator)` makes this an `If-Modified-Since` request: the
/// server replies `304` unless the document was modified strictly after
/// `validator`. `client` is the real client on whose behalf the proxy asks —
/// the paper's proxies forward it so the accelerator can maintain per-client
/// site lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetRequest {
    /// Correlation id chosen by the issuing proxy.
    pub req: RequestId,
    /// The requested document.
    pub url: Url,
    /// The real client behind the request.
    pub client: ClientId,
    /// `If-Modified-Since` validator, if this is a conditional request.
    pub ims: Option<SimTime>,
    /// The request's *trace-time* timestamp (the simulated time the
    /// coordinator broadcast for the current lock-step window). Consistency
    /// decisions — lease grants, TTL ages — are made against this clock.
    pub issued_at: SimTime,
    /// Cache hits served locally since this client's last contact for this
    /// document — the §7 hit-metering report, riding the request for free.
    pub cache_hits: u64,
}

impl GetRequest {
    /// Returns `true` if this is a conditional (`If-Modified-Since`) request.
    pub fn is_ims(&self) -> bool {
        self.ims.is_some()
    }
}

/// The status line + body of a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyStatus {
    /// `200 OK` — "document follows".
    Ok(Body),
    /// `304 Not Modified`.
    NotModified,
}

impl ReplyStatus {
    /// The HTTP status code.
    pub fn code(&self) -> u16 {
        match self {
            ReplyStatus::Ok(_) => 200,
            ReplyStatus::NotModified => 304,
        }
    }
}

/// A reply from the origin site to a proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Echo of the request's correlation id.
    pub req: RequestId,
    /// The document the reply concerns.
    pub url: Url,
    /// The real client behind the original request.
    pub client: ClientId,
    /// Status and (for `200`) body.
    pub status: ReplyStatus,
    /// Lease grant: the server promises to invalidate this client until the
    /// given expiry. `None` outside the lease protocols.
    pub lease: Option<SimTime>,
    /// Piggybacked invalidations (the PSI extension): documents whose
    /// copies this client must drop. Empty outside PSI.
    pub piggyback: Vec<Url>,
    /// Volume-lease renewal (the volume-lease extension): the client's
    /// per-server volume lease now expires at this instant.
    pub volume_lease: Option<SimTime>,
}

/// One `(document, client)` entry of a batched invalidation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BatchEntry {
    /// The modified document.
    pub url: Url,
    /// The real client whose copy must be dropped.
    pub client: ClientId,
}

/// One entry of a batch acknowledgement: the invalidated copy plus its
/// §7 hit-metering report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BatchAckEntry {
    /// The document whose invalidation is being acknowledged.
    pub url: Url,
    /// The acknowledging client.
    pub client: ClientId,
    /// Unreported cache hits on the copy that was just deleted.
    pub cache_hits: u64,
}

/// The HTTP-level messages of the consistency protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpMsg {
    /// Proxy → origin: plain or conditional `GET`.
    Get(GetRequest),
    /// Origin → proxy: `200` or `304` reply.
    Reply(Reply),
    /// Origin → proxy: the cached copy of `url` held for `client` is stale;
    /// delete it. (The paper's `INVALIDATE <url>` form.)
    Invalidate {
        /// The modified document.
        url: Url,
        /// The real client whose copy must be dropped.
        client: ClientId,
    },
    /// Origin → proxy: the server at `server` has recovered from a crash and
    /// may have missed modifications; mark every cached copy from it
    /// *questionable*. (The paper's `INVALIDATE <server-addr>` form.)
    InvalidateServer {
        /// The recovered origin server.
        server: ServerId,
    },
    /// Origin → proxy: one coalesced round of the batched invalidation
    /// proposer — every stale `(document, client)` copy this proxy's
    /// partition holds for `server`, in one wire message instead of one
    /// `INVALIDATE <url>` per copy. Every entry's URL lives on `server`,
    /// and the list is never empty (an empty round is simply not sent).
    InvalidateBatch {
        /// The origin whose proposer flushed this round.
        server: ServerId,
        /// The coalesced `(document, client)` entries, sorted.
        entries: Vec<BatchEntry>,
    },
    /// Proxy → origin: acknowledges a whole [`HttpMsg::InvalidateBatch`]
    /// round — delivered reliably like [`HttpMsg::InvalidateServerAck`] —
    /// carrying the per-entry §7 hit reports so the accelerator can clean
    /// its site lists and merge metering exactly as per-entry
    /// [`HttpMsg::InvalAck`]s would have.
    InvalidateBatchAck {
        /// The origin being acknowledged.
        server: ServerId,
        /// Per-entry acknowledgements, in the round's order.
        entries: Vec<BatchAckEntry>,
    },
    /// Proxy → origin: acknowledges receipt of an `InvalidateServer` bulk
    /// message. The recovery invalidation must be delivered reliably —
    /// a partition at recovery time would otherwise leave the proxy
    /// promising freshness for documents modified during the outage — so
    /// the origin retries the bulk message until this ack arrives.
    InvalidateServerAck {
        /// The recovered origin server being acknowledged.
        server: ServerId,
    },
    /// Proxy → origin: acknowledges receipt of an `Invalidate`, letting the
    /// accelerator delete the client from the document's site list. (Models
    /// the TCP-level delivery confirmation the paper relies on.)
    InvalAck {
        /// The document whose invalidation is being acknowledged.
        url: Url,
        /// The acknowledging client.
        client: ClientId,
        /// Unreported cache hits on the copy that was just deleted — the
        /// §7 hit-metering merge: the report rides the ack for free.
        cache_hits: u64,
    },
    /// Proxy → origin (real-TCP prototype only): registers this connection
    /// as the push channel for invalidations to the proxy handling
    /// partition `partition` of `partitions`. Proxy-initiated, so it works
    /// through firewalls (cf. the paper's §7 remark that invalidation
    /// should run between the server and the firewall proxy).
    Hello {
        /// This proxy's partition index.
        partition: u32,
        /// Total number of partitions.
        partitions: u32,
    },
    /// Scraper → any node (real-TCP prototype only): `GET /metrics`. The
    /// node replies with a raw Prometheus text exposition (outside the
    /// [`HttpMsg`] vocabulary — the reply is plain HTTP, not a simulated
    /// protocol message) and closes the connection.
    MetricsGet,
    /// Modifier utility → accelerator: `url` has just been checked in
    /// (modified). The paper's "notify" change-detection path.
    Notify {
        /// The modified document.
        url: Url,
        /// The touch's trace-time timestamp (becomes the document's new
        /// `Last-Modified`).
        at: SimTime,
    },
}

/// Lock-step control messages for the trace replay (§5.1: the time
/// coordinator runs the simulation "in lock step for every five minutes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordMsg {
    /// Coordinator → pseudo-clients and modifier: begin replaying the
    /// records whose timestamps fall before `window_end`.
    StepStart {
        /// Zero-based step index.
        step: u32,
        /// End of the step's time window.
        window_end: SimTime,
    },
    /// Pseudo-client/modifier → coordinator: finished issuing this step's
    /// work.
    StepDone {
        /// Echo of the step index.
        step: u32,
    },
}

/// Every message that can travel between simulation nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Protocol traffic (counted in the paper's message tallies).
    Http(HttpMsg),
    /// Replay scaffolding (not protocol traffic; excluded from tallies).
    Coord(CoordMsg),
}

/// Nominal wire sizes of the control messages, in bytes. These approximate
/// typical HTTP/1.0 header sizes; file transfers add the document body on
/// top of [`sizes::REPLY200_HEADER_SIZE`].
pub mod sizes {
    /// A plain `GET` request.
    pub const GET_SIZE: u64 = 256;
    /// A `GET` with `If-Modified-Since` (one extra header line).
    pub const IMS_SIZE: u64 = 288;
    /// A `304 Not Modified` reply.
    pub const REPLY304_SIZE: u64 = 160;
    /// The header portion of a `200` reply (body size is added).
    pub const REPLY200_HEADER_SIZE: u64 = 256;
    /// An `INVALIDATE <url>` message.
    pub const INVALIDATE_SIZE: u64 = 128;
    /// An `INVALIDATE <server>` bulk message.
    pub const INVALIDATE_SERVER_SIZE: u64 = 128;
    /// An invalidation acknowledgement (TCP ack analogue).
    pub const INVAL_ACK_SIZE: u64 = 64;
    /// The header portion of a batched `INVALIDATE` round (entries extra).
    pub const INVAL_BATCH_BASE_SIZE: u64 = 128;
    /// Extra bytes per `(document, client)` entry in a batched round.
    pub const INVAL_BATCH_ENTRY_SIZE: u64 = 16;
    /// The header portion of a batch acknowledgement (entries extra).
    pub const INVAL_BATCH_ACK_BASE_SIZE: u64 = 64;
    /// Extra bytes per entry in a batch acknowledgement.
    pub const INVAL_BATCH_ACK_ENTRY_SIZE: u64 = 16;
    /// A modifier check-in notification.
    pub const NOTIFY_SIZE: u64 = 128;
    /// A proxy's invalidation-channel registration.
    pub const HELLO_SIZE: u64 = 64;
    /// Extra bytes per piggybacked invalidation entry on a reply.
    pub const PIGGYBACK_ENTRY_SIZE: u64 = 16;
    /// A coordinator control message.
    pub const COORD_SIZE: u64 = 64;
}

impl HttpMsg {
    /// The accounted wire size of this message (headers plus, for `200`
    /// replies, the *unscaled* document size — matching the paper's
    /// byte-count methodology).
    pub fn wire_size(&self) -> ByteSize {
        use sizes::*;
        let bytes = match self {
            HttpMsg::Get(g) if g.is_ims() => IMS_SIZE,
            HttpMsg::Get(_) => GET_SIZE,
            HttpMsg::Reply(r) => {
                let base = match &r.status {
                    ReplyStatus::Ok(body) => REPLY200_HEADER_SIZE + body.meta().size().as_u64(),
                    ReplyStatus::NotModified => REPLY304_SIZE,
                };
                base + PIGGYBACK_ENTRY_SIZE * r.piggyback.len() as u64
            }
            HttpMsg::Invalidate { .. } => INVALIDATE_SIZE,
            HttpMsg::InvalidateBatch { entries, .. } => {
                INVAL_BATCH_BASE_SIZE + INVAL_BATCH_ENTRY_SIZE * entries.len() as u64
            }
            HttpMsg::InvalidateBatchAck { entries, .. } => {
                INVAL_BATCH_ACK_BASE_SIZE + INVAL_BATCH_ACK_ENTRY_SIZE * entries.len() as u64
            }
            HttpMsg::InvalidateServer { .. } => INVALIDATE_SERVER_SIZE,
            HttpMsg::InvalidateServerAck { .. } => INVAL_ACK_SIZE,
            HttpMsg::InvalAck { .. } => INVAL_ACK_SIZE,
            HttpMsg::Notify { .. } => NOTIFY_SIZE,
            HttpMsg::Hello { .. } => HELLO_SIZE,
            // Scrapes are observability traffic, not protocol traffic; the
            // nominal size only matters if one ever crosses the simulator.
            HttpMsg::MetricsGet => GET_SIZE,
        };
        ByteSize::from_bytes(bytes)
    }
}

impl Message {
    /// The accounted wire size of this message.
    pub fn wire_size(&self) -> ByteSize {
        match self {
            Message::Http(m) => m.wire_size(),
            Message::Coord(_) => ByteSize::from_bytes(sizes::COORD_SIZE),
        }
    }
}

impl From<HttpMsg> for Message {
    fn from(m: HttpMsg) -> Message {
        Message::Http(m)
    }
}

impl From<CoordMsg> for Message {
    fn from(m: CoordMsg) -> Message {
        Message::Coord(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::DocMeta;

    fn url() -> Url {
        Url::new(ServerId::new(0), 3)
    }

    fn client() -> ClientId {
        ClientId::from_raw(42)
    }

    fn body(kib: u64) -> Body {
        Body::synthetic(
            DocMeta::new(ByteSize::from_kib(kib), SimTime::from_secs(1)),
            100,
        )
    }

    #[test]
    fn request_id_sequence() {
        let id = RequestId::default();
        assert_eq!(id.get(), 0);
        assert_eq!(id.next().next(), RequestId::new(2));
    }

    #[test]
    fn ims_detection() {
        let plain = GetRequest {
            req: RequestId::new(1),
            url: url(),
            client: client(),
            ims: None,
            issued_at: SimTime::from_secs(3),
            cache_hits: 0,
        };
        let cond = GetRequest {
            ims: Some(SimTime::from_secs(5)),
            ..plain.clone()
        };
        assert!(!plain.is_ims());
        assert!(cond.is_ims());
    }

    #[test]
    fn status_codes() {
        assert_eq!(ReplyStatus::Ok(body(1)).code(), 200);
        assert_eq!(ReplyStatus::NotModified.code(), 304);
    }

    #[test]
    fn wire_sizes_follow_methodology() {
        let get = HttpMsg::Get(GetRequest {
            req: RequestId::new(0),
            url: url(),
            client: client(),
            ims: None,
            issued_at: SimTime::ZERO,
            cache_hits: 0,
        });
        let ims = HttpMsg::Get(GetRequest {
            req: RequestId::new(0),
            url: url(),
            client: client(),
            ims: Some(SimTime::ZERO),
            issued_at: SimTime::ZERO,
            cache_hits: 0,
        });
        assert!(ims.wire_size() > get.wire_size());

        // A 200 reply accounts the full (unscaled) document size even though
        // the stored payload is scaled down by 100.
        let reply = HttpMsg::Reply(Reply {
            req: RequestId::new(0),
            url: url(),
            client: client(),
            status: ReplyStatus::Ok(body(21)),
            lease: None,
            piggyback: Vec::new(),
            volume_lease: None,
        });
        assert_eq!(
            reply.wire_size(),
            ByteSize::from_bytes(sizes::REPLY200_HEADER_SIZE + 21 * 1024)
        );

        let nm = HttpMsg::Reply(Reply {
            req: RequestId::new(0),
            url: url(),
            client: client(),
            status: ReplyStatus::NotModified,
            lease: None,
            piggyback: Vec::new(),
            volume_lease: None,
        });
        assert_eq!(nm.wire_size(), ByteSize::from_bytes(sizes::REPLY304_SIZE));
    }

    #[test]
    fn batch_wire_size_amortises_per_write_fanout() {
        let entries: Vec<BatchEntry> = (0..10)
            .map(|d| BatchEntry {
                url: Url::new(ServerId::new(0), d),
                client: ClientId::from_raw(d),
            })
            .collect();
        let batch = HttpMsg::InvalidateBatch {
            server: ServerId::new(0),
            entries: entries.clone(),
        };
        let per_write: u64 = entries.len() as u64 * sizes::INVALIDATE_SIZE;
        assert!(
            batch.wire_size().as_u64() < per_write,
            "a 10-entry batch must cost fewer bytes than 10 INVALIDATEs"
        );
        let ack = HttpMsg::InvalidateBatchAck {
            server: ServerId::new(0),
            entries: entries
                .iter()
                .map(|e| BatchAckEntry {
                    url: e.url,
                    client: e.client,
                    cache_hits: 1,
                })
                .collect(),
        };
        assert!(ack.wire_size().as_u64() < entries.len() as u64 * sizes::INVAL_ACK_SIZE + 128);
    }

    #[test]
    fn conversions_into_message() {
        let m: Message = HttpMsg::Notify {
            url: url(),
            at: SimTime::ZERO,
        }
        .into();
        assert!(matches!(m, Message::Http(HttpMsg::Notify { .. })));
        let c: Message = CoordMsg::StepDone { step: 3 }.into();
        assert_eq!(c.wire_size(), ByteSize::from_bytes(sizes::COORD_SIZE));
    }
}
