//! The batched invalidation proposer.
//!
//! Plain invalidation pays one `INVALIDATE <url>` wire message per
//! registered copy per write. Under a write storm the same hot documents
//! are modified repeatedly within milliseconds, and each modification fans
//! out again. The proposer sits between `ServerConsistency::on_modify` and
//! the wire: pending `(document, client)` invalidation intents accumulate
//! in a per-origin queue and fire as one multi-URL
//! [`InvalidateBatch`](wcc_proto::HttpMsg::InvalidateBatch) round per
//! proxy when any [`InvalBatchConfig`] threshold trips — a count of
//! coalesced entries, the age of the oldest entry, or the wire bytes the
//! per-write fan-out would have cost. Repeated writes to the same URL
//! *coalesce*: the second write finds the `(url, client)` entry already
//! queued and adds nothing, so a storm of `w` writes costs one batched
//! round instead of `w` fan-outs.
//!
//! The queue is a `BTreeMap` keyed by URL with `BTreeSet` recipients, so a
//! drain is deterministically ordered without sorting — sharded and
//! sequential replays stay byte-identical.

use std::collections::{BTreeMap, BTreeSet};

use wcc_proto::msg::sizes::INVALIDATE_SIZE;
use wcc_types::{ClientId, InvalBatchConfig, Url};

/// Counters the proposer keeps for the trajectory's `proposer` block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProposerStats {
    /// Invalidation intents handed to the proposer — the counterfactual
    /// per-write fan-out message count.
    pub enqueued: u64,
    /// Intents that found their `(url, client)` entry already pending and
    /// merged into it. `enqueued = coalesced + unique entries queued`.
    pub coalesced: u64,
    /// Drain rounds (threshold trips plus age-timer fires).
    pub flushes: u64,
    /// Unique entries drained across all flushes.
    pub flushed_entries: u64,
    /// Wire `InvalidateBatch` messages emitted (one per proxy with
    /// entries, per flush).
    pub batches: u64,
    /// Largest single wire batch, in entries.
    pub max_batch_entries: u64,
}

/// Per-origin accumulator for pending invalidation fan-out.
#[derive(Debug, Clone)]
pub struct Proposer {
    cfg: InvalBatchConfig,
    /// url → recipients still queued. BTree keeps drain order deterministic.
    pending: BTreeMap<Url, BTreeSet<ClientId>>,
    /// Total `(url, client)` entries across `pending`.
    entries: usize,
    stats: ProposerStats,
}

impl Proposer {
    /// An empty proposer with the given thresholds.
    pub fn new(cfg: InvalBatchConfig) -> Proposer {
        Proposer {
            cfg,
            pending: BTreeMap::new(),
            entries: 0,
            stats: ProposerStats::default(),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> InvalBatchConfig {
        self.cfg
    }

    /// Queues one invalidation intent. Returns `true` when the queue was
    /// empty before — the caller arms the age timer on that transition.
    pub fn enqueue(&mut self, url: Url, client: ClientId) -> bool {
        let was_empty = self.entries == 0;
        self.stats.enqueued += 1;
        if self.pending.entry(url).or_default().insert(client) {
            self.entries += 1;
        } else {
            self.stats.coalesced += 1;
        }
        was_empty
    }

    /// Whether `(url, client)` is still waiting in the queue. Retry timers
    /// skip recipients the proposer has not sent to yet.
    pub fn queued(&self, url: Url, client: ClientId) -> bool {
        self.pending
            .get(&url)
            .is_some_and(|set| set.contains(&client))
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Unique `(url, client)` entries currently pending.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether the count or byte threshold has tripped. (The age threshold
    /// is the caller's timer, not a queue property.)
    pub fn should_flush(&self) -> bool {
        self.entries >= self.cfg.max_entries
            || self.entries as u64 * INVALIDATE_SIZE >= self.cfg.max_bytes.as_u64()
    }

    /// Drains the queue in `(url, client)` order. Each returned recipient
    /// list is sorted and non-empty.
    pub fn drain(&mut self) -> Vec<(Url, Vec<ClientId>)> {
        let drained: Vec<(Url, Vec<ClientId>)> = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(url, set)| (url, set.into_iter().collect()))
            .collect();
        self.stats.flushes += 1;
        self.stats.flushed_entries += self.entries as u64;
        self.entries = 0;
        drained
    }

    /// Drops everything pending without counting a flush — crash recovery:
    /// the queue is main-memory state and dies with the process. Counters
    /// survive (they describe history, not state).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.entries = 0;
    }

    /// Records one wire batch of `entries` entries emitted downstream.
    pub fn note_batch(&mut self, entries: usize) {
        self.stats.batches += 1;
        self.stats.max_batch_entries = self.stats.max_batch_entries.max(entries as u64);
    }

    /// The counters so far.
    pub fn stats(&self) -> ProposerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::{ByteSize, ServerId, SimDuration};

    fn url(doc: u32) -> Url {
        Url::new(ServerId::new(0), doc)
    }

    fn client(raw: u32) -> ClientId {
        ClientId::from_raw(raw)
    }

    #[test]
    fn coalesces_repeat_writes_and_counts_them() {
        let mut p = Proposer::new(InvalBatchConfig::with_max_entries(8));
        assert!(
            p.enqueue(url(1), client(1)),
            "first enqueue opens the queue"
        );
        assert!(!p.enqueue(url(1), client(2)));
        assert!(!p.enqueue(url(1), client(1)), "repeat write coalesces");
        assert_eq!(p.entries(), 2);
        let s = p.stats();
        assert_eq!((s.enqueued, s.coalesced), (3, 1));
        assert!(p.queued(url(1), client(1)));
        assert!(!p.queued(url(2), client(1)));
    }

    #[test]
    fn count_threshold_trips_flush() {
        let mut p = Proposer::new(InvalBatchConfig::with_max_entries(2));
        p.enqueue(url(1), client(1));
        assert!(!p.should_flush());
        p.enqueue(url(2), client(1));
        assert!(p.should_flush());
    }

    #[test]
    fn byte_threshold_trips_flush() {
        let cfg = InvalBatchConfig {
            max_entries: 1000,
            max_age: SimDuration::from_secs(1),
            max_bytes: ByteSize::from_bytes(3 * INVALIDATE_SIZE),
        };
        let mut p = Proposer::new(cfg);
        p.enqueue(url(1), client(1));
        p.enqueue(url(2), client(1));
        assert!(!p.should_flush());
        p.enqueue(url(3), client(1));
        assert!(
            p.should_flush(),
            "3 per-write messages reach the byte bound"
        );
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut p = Proposer::new(InvalBatchConfig::with_max_entries(64));
        p.enqueue(url(9), client(3));
        p.enqueue(url(1), client(2));
        p.enqueue(url(1), client(1));
        let rounds = p.drain();
        assert_eq!(
            rounds,
            vec![
                (url(1), vec![client(1), client(2)]),
                (url(9), vec![client(3)]),
            ]
        );
        assert!(p.is_empty());
        assert!(!p.queued(url(1), client(1)));
        let s = p.stats();
        assert_eq!((s.flushes, s.flushed_entries), (1, 3));
        assert!(p.enqueue(url(5), client(1)), "queue reopens after drain");
    }

    #[test]
    fn note_batch_tracks_the_largest_round() {
        let mut p = Proposer::new(InvalBatchConfig::default());
        p.note_batch(3);
        p.note_batch(7);
        p.note_batch(2);
        let s = p.stats();
        assert_eq!((s.batches, s.max_batch_entries), (3, 7));
    }
}
