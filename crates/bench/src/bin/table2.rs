//! Table 2: summary of the (synthetic) traces used in the experiments,
//! side by side with the paper's reported values.

use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_traces::{synthetic, TraceSpec, TraceSummary};

/// The paper's Table 2, for reference: (name, duration, requests, avg size
/// KB, max popularity, avg popularity).
const PAPER: [(&str, &str, u64, u64, u64, f64); 5] = [
    ("EPA", "1 day", 40_658, 21, 1_642, 8.2),
    ("SDSC", "1 day", 25_430, 14, 1_020, 12.0),
    ("ClarkNet", "10 hours", 61_703, 13, 680, 8.0),
    ("NASA", "1 day", 61_823, 44, 3_138, 31.0),
    ("SASK", "8 days", 51_471, 12, 1_155, 14.0),
];

fn main() {
    let scale = parse_scale(std::env::args());
    println!("=== Table 2: summary of the traces (seed {TABLE_SEED}, scale 1/{scale}) ===\n");
    println!("{}", TraceSummary::header());
    let mut summaries = Vec::new();
    for spec in TraceSpec::all() {
        let spec = spec.scaled_down(scale);
        let trace = synthetic::generate(&spec, TABLE_SEED);
        let summary = TraceSummary::of(&trace);
        println!("{summary}");
        summaries.push(summary);
    }
    println!("\nPaper reference (Table 2):");
    println!(
        "{:<10} {:>8} {:>10} {:>8} {:>14}",
        "Trace", "Duration", "Requests", "AvgSize", "Popularity"
    );
    for (name, duration, requests, kb, maxpop, avgpop) in PAPER {
        println!("{name:<10} {duration:>8} {requests:>10} {kb:>6}KB {maxpop:>7} ({avgpop:>4.1})");
    }
    println!(
        "\nNote: file counts are derived from the paper's reported modification\n\
         counts (see DESIGN.md); popularity shape is calibrated, not fitted."
    );
}
