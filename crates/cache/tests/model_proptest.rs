//! Model-based property test: with unbounded capacity the store must agree
//! exactly with a reference `HashMap` on presence, metadata, freshness and
//! hit counters under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::HashMap;
use wcc_cache::{CacheStore, Freshness, ReplacementPolicy};
use wcc_types::{ByteSize, ClientId, DocMeta, ScopedUrl, ServerId, SimTime, Url};

#[derive(Debug, Clone)]
enum Op {
    Insert {
        doc: u32,
        size_kib: u64,
        mtime: u64,
        ttl: u64,
    },
    Remove {
        doc: u32,
    },
    Touch {
        doc: u32,
    },
    Hit {
        doc: u32,
    },
    TakeHits {
        doc: u32,
    },
    MarkAll,
    MarkServer,
    ReplaceMeta {
        doc: u32,
        size_kib: u64,
        mtime: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..12, 1u64..64, 0u64..1_000, 0u64..1_000).prop_map(|(doc, size_kib, mtime, ttl)| {
            Op::Insert {
                doc,
                size_kib,
                mtime,
                ttl,
            }
        }),
        (0u32..12).prop_map(|doc| Op::Remove { doc }),
        (0u32..12).prop_map(|doc| Op::Touch { doc }),
        (0u32..12).prop_map(|doc| Op::Hit { doc }),
        (0u32..12).prop_map(|doc| Op::TakeHits { doc }),
        Just(Op::MarkAll),
        Just(Op::MarkServer),
        (0u32..12, 1u64..64, 0u64..1_000).prop_map(|(doc, size_kib, mtime)| Op::ReplaceMeta {
            doc,
            size_kib,
            mtime
        }),
    ]
}

#[derive(Debug, Clone, PartialEq)]
struct ModelEntry {
    meta: DocMeta,
    freshness: Freshness,
    unreported: u64,
}

fn key(doc: u32) -> ScopedUrl {
    Url::new(ServerId::new(0), doc).scoped(ClientId::from_raw(7))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unbounded_store_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        policy in prop_oneof![Just(ReplacementPolicy::Lru), Just(ReplacementPolicy::ExpiredFirstLru)],
    ) {
        let mut store = CacheStore::unbounded(policy);
        let mut model: HashMap<ScopedUrl, ModelEntry> = HashMap::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += wcc_types::SimDuration::from_secs(1);
            match op {
                Op::Insert { doc, size_kib, mtime, ttl } => {
                    let meta = DocMeta::new(ByteSize::from_kib(size_kib), SimTime::from_secs(mtime));
                    let fresh = Freshness {
                        ttl_expires: SimTime::from_secs(ttl),
                        ..Freshness::default()
                    };
                    store.insert(key(doc), meta, now, fresh);
                    model.insert(key(doc), ModelEntry { meta, freshness: fresh, unreported: 0 });
                }
                Op::Remove { doc } => {
                    let got = store.remove(key(doc));
                    let want = model.remove(&key(doc));
                    prop_assert_eq!(got.is_some(), want.is_some());
                    if let (Some(g), Some(w)) = (got, want) {
                        prop_assert_eq!(g.meta, w.meta);
                        prop_assert_eq!(g.unreported_hits, w.unreported);
                    }
                }
                Op::Touch { doc } => {
                    prop_assert_eq!(store.touch(key(doc), now).is_some(),
                                    model.contains_key(&key(doc)));
                }
                Op::Hit { doc } => {
                    store.add_unreported_hit(key(doc));
                    if let Some(e) = model.get_mut(&key(doc)) {
                        e.unreported += 1;
                    }
                }
                Op::TakeHits { doc } => {
                    let got = store.take_unreported_hits(key(doc));
                    let want = model.get_mut(&key(doc)).map(|e| std::mem::take(&mut e.unreported)).unwrap_or(0);
                    prop_assert_eq!(got, want);
                }
                Op::MarkAll => {
                    prop_assert_eq!(store.mark_all_questionable(), model.len());
                    for e in model.values_mut() {
                        e.freshness.questionable = true;
                    }
                }
                Op::MarkServer => {
                    // All keys are on server 0, so this equals MarkAll.
                    prop_assert_eq!(store.mark_server_questionable(ServerId::new(0)), model.len());
                    for e in model.values_mut() {
                        e.freshness.questionable = true;
                    }
                }
                Op::ReplaceMeta { doc, size_kib, mtime } => {
                    let meta = DocMeta::new(ByteSize::from_kib(size_kib), SimTime::from_secs(mtime));
                    let ok = store.replace_meta(key(doc), meta, now);
                    prop_assert_eq!(ok, model.contains_key(&key(doc)));
                    if let Some(e) = model.get_mut(&key(doc)) {
                        e.meta = meta; // freshness and hit counter preserved
                    }
                }
            }
            // Full-state agreement after every operation.
            prop_assert_eq!(store.len(), model.len());
            for (k, want) in &model {
                let got = store.peek(*k).expect("model entry must exist in store");
                prop_assert_eq!(got.meta, want.meta);
                prop_assert_eq!(got.freshness, want.freshness);
                prop_assert_eq!(got.unreported_hits, want.unreported);
            }
            let total: ByteSize = model.values().map(|e| e.meta.size()).sum();
            prop_assert_eq!(store.used(), total);
            // Unbounded store must never evict.
            prop_assert_eq!(store.stats().evictions, 0);
        }
    }
}
