//! F1: the §4 failure scenarios — proxy crash, server crash and network
//! partition — with the consistency invariants that must survive each.

use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_core::ProtocolKind;
use wcc_replay::{
    partition_scenario, proxy_crash_scenario, server_crash_scenario, ExperimentConfig,
    FailureOutcome,
};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn report(name: &str, out: &FailureOutcome) {
    let r = &out.report.raw;
    println!("--- {name} ---");
    println!("  outage (wall): {} → {}", out.outage.0, out.outage.1);
    println!("  replay drained:                 {}", r.finished);
    println!("  writes complete (all acked):    {}", r.writes_complete);
    println!("  promised-fresh stale entries:   {}", r.final_violations);
    println!("  proxy recoveries:               {}", r.proxy_recoveries);
    println!(
        "  entries marked questionable:    {}",
        r.questionable_marked
    );
    println!("  bulk INVALIDATE <server> sent:  {}", r.bulk_invalidations);
    println!("  request timeouts/retransmits:   {}", r.request_timeouts);
    println!(
        "  invalidation retransmissions:   {}",
        r.invalidation_retries
    );
    println!("  invalidations given up:         {}", r.gave_up);
    println!();
}

fn main() {
    let scale = parse_scale(std::env::args()).max(25);
    println!("=== Failure handling (invalidation protocol, EPA, scale 1/{scale}) ===\n");
    let cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(scale))
        .protocol(ProtocolKind::Invalidation)
        .mean_lifetime(SimDuration::from_hours(4))
        .seed(TABLE_SEED)
        .build();

    report(
        "Scenario 1: proxy crash (down 30%→60% of the run)",
        &proxy_crash_scenario(&cfg, 0.3, 0.6),
    );
    report(
        "Scenario 2: server-site crash (down 30%→50% of the run)",
        &server_crash_scenario(&cfg, 0.3, 0.5),
    );
    report(
        "Scenario 3: server↔proxy partition (30%→70% of the run)",
        &partition_scenario(&cfg, 0.3, 0.7),
    );

    println!(
        "Invariant in every scenario: zero promised-fresh stale entries at the\n\
         end of the replay — strong consistency survives the §4 failure modes\n\
         via questionable-marking, bulk invalidation and TCP-style retry.\n\
         (Scenarios run at reduced scale because the fault-placement dry run\n\
         doubles the work; pass --scale to change.)"
    );
}
