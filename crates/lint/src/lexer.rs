//! A minimal, lossless Rust lexer.
//!
//! The token stream is *complete*: whitespace and comments are tokens too,
//! and concatenating the text of every token reproduces the input byte for
//! byte (the round-trip property the `roundtrip` test enforces). That is
//! what lets the rule engine reason about real code structure — raw
//! strings, nested block comments, lifetimes vs char literals — instead of
//! the line-blanking heuristics it replaces.
//!
//! The lexer never fails: unterminated literals and stray bytes degrade to
//! best-effort tokens so the engine can scan work-in-progress sources.

/// The three bracket shapes that delimit token groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` `)`
    Paren,
    /// `[` `]`
    Bracket,
    /// `{` `}`
    Brace,
}

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (any mix, may span lines).
    Whitespace,
    /// `// …` to end of line (exclusive of the newline).
    LineComment,
    /// `/* … */`, nesting respected; may span lines.
    BlockComment,
    /// `"…"`, `b"…"`, or `c"…"` with escapes.
    Str,
    /// `r"…"` / `r#"…"#` (also `br` / `cr` prefixed), any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`, `'\u{1F600}'`.
    Char,
    /// `'a` in `&'a str` — an apostrophe that never closes.
    Lifetime,
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// An integer or float literal, suffix included.
    Number,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
}

/// One token: a kind plus its byte span and starting line in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// `(byte offset, char)` for every char, so multi-byte text indexes
    /// safely.
    chars: Vec<(usize, char)>,
    /// Index into `chars` of the next unconsumed char.
    i: usize,
    line: usize,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            i: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.i)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    /// Consumes one char, keeping the line counter current.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.offset();
            let line = self.line;
            let kind = self.next_token(c);
            let end = self.offset();
            debug_assert!(end > start, "lexer must make progress");
            self.out.push(Token {
                kind,
                start,
                end,
                line,
            });
        }
        self.out
    }

    fn next_token(&mut self, c: char) -> TokenKind {
        match c {
            _ if c.is_whitespace() => {
                while self.peek(0).is_some_and(char::is_whitespace) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            '/' if self.peek(1) == Some('/') => {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            '/' if self.peek(1) == Some('*') => self.block_comment(),
            '"' => self.string(),
            '\'' => self.char_or_lifetime(),
            '(' => self.delim(TokenKind::Open(Delim::Paren)),
            ')' => self.delim(TokenKind::Close(Delim::Paren)),
            '[' => self.delim(TokenKind::Open(Delim::Bracket)),
            ']' => self.delim(TokenKind::Close(Delim::Bracket)),
            '{' => self.delim(TokenKind::Open(Delim::Brace)),
            '}' => self.delim(TokenKind::Close(Delim::Brace)),
            _ if c.is_ascii_digit() => self.number(),
            _ if is_ident_start(c) => self.ident_or_literal_prefix(c),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn delim(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// `"…"` with escapes; the opening quote is at the cursor.
    fn string(&mut self) -> TokenKind {
        self.bump(); // `"`
        loop {
            match self.peek(0) {
                Some('\\') => self.bump_n(2),
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        TokenKind::Str
    }

    /// `r"…"` / `r#"…"#`: the cursor sits on the first `#` or `"` after the
    /// prefix letters (already consumed by the caller).
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        self.bump_n(hashes + 1); // hashes + opening quote
        loop {
            match self.peek(0) {
                Some('"') => {
                    let closing = (0..hashes).all(|k| self.peek(1 + k) == Some('#'));
                    self.bump();
                    if closing {
                        self.bump_n(hashes);
                        break;
                    }
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        TokenKind::RawStr
    }

    /// A char literal, a lifetime, or a stray apostrophe.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            // Escaped char: `'\n'`, `'\u{1F600}'` — scan to the closing
            // quote.
            Some('\\') => {
                self.bump_n(3); // `'`, `\`, escaped char
                while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            // `'x'` (single non-quote char then a quote) is a char literal;
            // note `''` alone is not.
            Some(c) if c != '\'' && self.peek(2) == Some('\'') && !is_ident_continue(c) => {
                self.bump_n(3);
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // `'a` … : could still be the char `'a'` — decide by
                // whether a quote immediately follows the ident run.
                let mut n = 1;
                while self.peek(n).is_some_and(is_ident_continue) {
                    n += 1;
                }
                if n == 2 && self.peek(n) == Some('\'') {
                    self.bump_n(3); // `'a'`
                    TokenKind::Char
                } else {
                    self.bump_n(n); // `'lifetime`
                    TokenKind::Lifetime
                }
            }
            Some(c) if c != '\'' && self.peek(2) == Some('\'') => {
                self.bump_n(3); // `'+'` and friends
                TokenKind::Char
            }
            _ => {
                self.bump();
                TokenKind::Punct // stray `'`
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'b')) {
            // Radix literal: digits, letters and underscores to the end
            // (suffixes included).
            self.bump_n(2);
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Number;
        }
        self.digits();
        // A fractional part only if `.` is not a method call (`1.max(2)`)
        // and not a range (`1..5`).
        if self.peek(0) == Some('.') && !self.peek(1).is_some_and(|c| c == '.' || is_ident_start(c))
        {
            self.bump();
            self.digits();
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                self.bump_n(digit_at);
                self.digits();
            }
        }
        // Suffix (`u32`, `f64`, …) — also mops up a malformed tail.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Number
    }

    fn digits(&mut self) {
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
    }

    /// An identifier, or one of the literal prefixes `r"` `r#"` `b"` `b'`
    /// `br"` `c"` `cr"` `r#ident`.
    fn ident_or_literal_prefix(&mut self, c: char) -> TokenKind {
        match c {
            'r' => match self.peek(1) {
                Some('"') => {
                    self.bump();
                    return self.raw_string();
                }
                Some('#') => {
                    // `r#"…"#` or the raw identifier `r#match`.
                    let mut hashes = 1;
                    while self.peek(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(1 + hashes) == Some('"') {
                        self.bump();
                        return self.raw_string();
                    }
                    if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                        self.bump_n(2); // `r#`
                        return self.ident();
                    }
                }
                _ => {}
            },
            'b' | 'c' => {
                match self.peek(1) {
                    Some('"') => {
                        self.bump();
                        return self.string();
                    }
                    Some('\'') if c == 'b' => {
                        self.bump();
                        return self.char_or_lifetime();
                    }
                    Some('r') => {
                        // `br"…"` / `br#"…"#` / `cr"…"`.
                        let mut hashes = 0;
                        while self.peek(2 + hashes) == Some('#') {
                            hashes += 1;
                        }
                        if self.peek(2 + hashes) == Some('"') {
                            self.bump_n(2);
                            return self.raw_string();
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        self.ident()
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn code_kinds(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src, "lexer must be lossless");
    }

    #[test]
    fn raw_strings_at_every_hash_depth() {
        for src in [
            r####"let s = r"plain";"####,
            r####"let s = r#"one "quote" deep"#;"####,
            r####"let s = r##"nested "# close"##;"####,
            "let s = br#\"bytes\"#;",
            "let s = cr\"c string\";",
        ] {
            roundtrip(src);
            let raws: Vec<_> = kinds(src)
                .into_iter()
                .filter(|(k, _)| *k == TokenKind::RawStr)
                .collect();
            assert_eq!(raws.len(), 1, "exactly one raw string in {src:?}");
        }
        // Rule-relevant: needles inside raw strings stay inside one
        // literal token and can never match a token sequence.
        let sneaky = r####"let s = r#".unwrap() Instant::now()"#;"####;
        assert!(code_kinds(sneaky)
            .iter()
            .all(|(k, t)| *k == TokenKind::RawStr || !t.contains("unwrap")));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let src = "let r#match = 1;";
        roundtrip(src);
        assert!(kinds(src).contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        roundtrip(src);
        assert_eq!(
            code_kinds(src),
            vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]
        );
        // Unterminated: swallowed to EOF, no panic.
        roundtrip("x /* never closed /* deeper */ ");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = 'q'; let esc = '\\''; q }";
        roundtrip(src);
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2,
            "two `'a` lifetimes"
        );
        assert!(toks.contains(&(TokenKind::Char, "'q'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\''")));
        // A char literal must not swallow the rest of the line.
        let sneaky = "let c = 'x'; after();";
        assert!(kinds(sneaky).contains(&(TokenKind::Ident, "after")));
        // Unicode escape chars close at the quote, not after 2 chars.
        roundtrip("let c = '\\u{1F600}'; next();");
        assert!(kinds("let c = '\\u{1F600}'; next();").contains(&(TokenKind::Ident, "next")));
        // Static lifetime is an ident-run lifetime.
        assert!(kinds("&'static str").contains(&(TokenKind::Lifetime, "'static")));
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let src = "let a = 1.max(2); let b = 1..5; let c = 1.5e-3f64; let d = 0xFF_u8;";
        roundtrip(src);
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Number, "1")));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3f64")));
        assert!(toks.contains(&(TokenKind::Number, "0xFF_u8")));
        assert!(toks.contains(&(TokenKind::Number, "5")));
        // Trailing-dot float.
        assert!(kinds("let x = 1. ;").contains(&(TokenKind::Number, "1.")));
    }

    #[test]
    fn strings_with_escapes_and_comment_markers() {
        let src = r#"let s = "not // a comment \" still \\"; done();"#;
        roundtrip(src);
        assert!(kinds(src).contains(&(TokenKind::Ident, "done")));
        roundtrip("let s = \"unterminated");
    }

    #[test]
    fn delimiters_carry_shape() {
        let src = "f(a[0], {b})";
        roundtrip(src);
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Open(Delim::Paren), "(")));
        assert!(toks.contains(&(TokenKind::Open(Delim::Bracket), "[")));
        assert!(toks.contains(&(TokenKind::Close(Delim::Brace), "}")));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\" c";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }
}
