//! The synthetic trace generator.
//!
//! Deterministic given `(spec, seed)`. Request timestamps follow a
//! diurnally modulated arrival process (hourly buckets weighted by a sine
//! profile); documents are drawn Zipf by popularity rank; clients are drawn
//! Zipf by activity rank; document sizes are exponential around the spec's
//! mean with a heavy-tail cap.

use crate::spec::TraceSpec;
use crate::zipf::Zipf;
use crate::{Trace, TraceRecord};
use rand::rngs::StdRng;
use rand::Rng;
use wcc_types::{ByteSize, ClientId, ServerId, SimTime, Url};

/// Generates a deterministic synthetic [`Trace`] from calibration targets.
///
/// # Examples
///
/// ```
/// use wcc_traces::{synthetic, TraceSpec};
///
/// let spec = TraceSpec::nasa().scaled_down(200);
/// let a = synthetic::generate(&spec, 7);
/// let b = synthetic::generate(&spec, 7);
/// assert_eq!(a.records, b.records, "same seed, same trace");
/// assert!(a.validate().is_ok());
/// ```
pub fn generate(spec: &TraceSpec, seed: u64) -> Trace {
    // A multi-origin spec silently homed on server 0 used to be the bug
    // this assertion now catches: federation specs go through
    // [`generate_federation`], which respects the declared origin count.
    assert!(
        spec.num_origins <= 1,
        "spec declares {} origins; use synthetic::generate_federation",
        spec.num_origins
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let server = ServerId::new(0);

    let client_ids = synth_client_ids(spec.num_clients, &mut rng);

    let doc_dist = Zipf::new(spec.num_docs as usize, spec.doc_zipf);
    let client_dist = Zipf::new(spec.num_clients as usize, spec.client_zipf);

    // Document popularity ranks are shuffled so that rank 0 is not always
    // doc 0 (the modifier picks docs uniformly, so this keeps popularity
    // and modification choice independent, as in the paper).
    let doc_perm = permutation(spec.num_docs as usize, &mut rng);
    let doc_sizes = sample_doc_sizes(spec, &doc_perm, &mut rng);

    let times = sample_arrivals(spec, &mut rng);
    let mut records = Vec::with_capacity(times.len());
    for at in times {
        let doc = doc_perm[doc_dist.sample(&mut rng)] as u32;
        let client = client_ids[client_dist.sample(&mut rng)];
        records.push(TraceRecord {
            at,
            client,
            url: Url::new(server, doc),
        });
    }

    let trace = Trace {
        name: spec.name.to_string(),
        server,
        duration: spec.duration,
        doc_sizes,
        records,
    };
    debug_assert!(trace.validate().is_ok());
    trace
}

/// Splits `total` requests into per-origin shares following
/// `Zipf(origins, origin_zipf)`: origin 0 is the federation's most popular
/// server. Shares are exact (they sum to `total`); the remainder after
/// flooring each share is handed out one request at a time from the most
/// popular origin down.
pub fn origin_shares(total: u64, origins: u32, origin_zipf: f64) -> Vec<u64> {
    let origins = origins.max(1);
    let dist = Zipf::new(origins as usize, origin_zipf);
    let mut shares: Vec<u64> = (0..origins as usize)
        .map(|i| (total as f64 * dist.pmf(i)).floor() as u64)
        .collect();
    let assigned: u64 = shares.iter().sum();
    for i in 0..(total - assigned) as usize {
        shares[i % origins as usize] += 1;
    }
    shares
}

/// Generates a deterministic federation: one [`Trace`] per origin declared
/// by the spec, with trace *i* homed on `ServerId::new(i)` (the layout
/// `Deployment::build_multi` expects). Request shares across origins follow
/// `Zipf(num_origins, origin_zipf)`; each origin serves its own catalog of
/// `num_docs / num_origins` documents with the spec's document/client skew,
/// and all origins draw from one shared city-scale client population.
///
/// A single-origin spec degenerates to `vec![generate(spec, seed)]`.
///
/// # Examples
///
/// ```
/// use wcc_traces::{synthetic, TraceSpec};
///
/// let spec = TraceSpec::epa().scaled_down(100).with_origins(4, 0.7);
/// let traces = synthetic::generate_federation(&spec, 7);
/// assert_eq!(traces.len(), 4);
/// let total: usize = traces.iter().map(|t| t.records.len()).sum();
/// assert_eq!(total as u64, spec.total_requests);
/// ```
pub fn generate_federation(spec: &TraceSpec, seed: u64) -> Vec<Trace> {
    let origins = spec.num_origins.max(1);
    if origins == 1 {
        let mut single = spec.clone();
        single.num_origins = 1;
        return vec![generate(&single, seed)];
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfede_4a7e);
    // One shared client population across the whole federation: city-scale
    // clients hit many origins, so the ids are synthesized once (this is
    // also what keeps generation O(clients + requests), not
    // O(origins × clients)).
    let client_ids = synth_client_ids(spec.num_clients, &mut rng);
    let docs_per_origin = (spec.num_docs / origins).max(1);
    let shares = origin_shares(spec.total_requests, origins, spec.origin_zipf);

    let doc_dist = Zipf::new(docs_per_origin as usize, spec.doc_zipf);
    let client_dist = Zipf::new(client_ids.len(), spec.client_zipf);
    (0..origins)
        .map(|i| {
            // Independent per-origin stream so any one origin's trace is
            // stable under changes to the others.
            let mut orng = StdRng::seed_from_u64(
                seed ^ 0xfede_4a7e ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let server = ServerId::new(i);
            let mut sub = spec.clone();
            sub.total_requests = shares[i as usize];
            sub.num_docs = docs_per_origin;
            let doc_perm = permutation(docs_per_origin as usize, &mut orng);
            let doc_sizes = sample_doc_sizes(&sub, &doc_perm, &mut orng);
            let times = sample_arrivals(&sub, &mut orng);
            // Rotate activity ranks per origin so the federation's hottest
            // client differs from origin to origin.
            let rot = (i as usize).wrapping_mul(0x9e37) % client_ids.len();
            let mut records = Vec::with_capacity(times.len());
            for at in times {
                let doc = doc_perm[doc_dist.sample(&mut orng)] as u32;
                let idx = (client_dist.sample(&mut orng) + rot) % client_ids.len();
                records.push(TraceRecord {
                    at,
                    client: client_ids[idx],
                    url: Url::new(server, doc),
                });
            }
            let trace = Trace {
                name: format!("{}-o{i}", spec.name),
                server,
                duration: spec.duration,
                doc_sizes,
                records,
            };
            debug_assert!(trace.validate().is_ok());
            trace
        })
        .collect()
}

/// Exponential sizes with mean `avg_doc_size`, clamped to
/// `[512 B, 50 × avg]`, assigned so that *popular documents tend to be
/// small* (index pages and thumbnails draw the traffic; the rare huge files
/// sit in the tail). This anti-correlation is what keeps a trace's total
/// transfer bytes far below `requests × avg_file_size`, as in the paper's
/// byte rows.
fn sample_doc_sizes(spec: &TraceSpec, doc_perm: &[usize], rng: &mut StdRng) -> Vec<ByteSize> {
    let avg = spec.avg_doc_size.as_u64() as f64;
    let n = spec.num_docs as usize;
    let mut sizes: Vec<u64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9..1.0);
            ((-avg * u.ln()).round() as u64).clamp(512, (avg * 50.0) as u64)
        })
        .collect();
    // Noisy rank correlation: ascending sizes paired with ascending
    // popularity rank, each rank jittered by ±25% of the population.
    sizes.sort_unstable();
    let mut rank_order: Vec<(f64, usize)> = (0..n)
        .map(|k| {
            let jitter: f64 = rng.gen_range(-0.25..0.25) * n as f64;
            (k as f64 + jitter, k)
        })
        .collect();
    rank_order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
    // rank_order[i].1 is the popularity rank assigned the i-th smallest size.
    let mut out = vec![ByteSize::ZERO; n];
    for (i, &(_, rank)) in rank_order.iter().enumerate() {
        out[doc_perm[rank]] = ByteSize::from_bytes(sizes[i]);
    }
    out
}

/// Synthesizes stable dotted-quad client ids (distinct, deterministic).
fn synth_client_ids(n: u32, rng: &mut StdRng) -> Vec<ClientId> {
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < n as usize {
        // Public-looking /8s, avoiding 0 and 255 in the first octet.
        let raw: u32 = rng.gen();
        let first = 1 + (raw >> 24) % 223;
        ids.insert(ClientId::from_raw((first << 24) | (raw & 0x00FF_FFFF)));
    }
    ids.into_iter().collect()
}

fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Draws `total_requests` arrival instants across the trace duration with a
/// sinusoidal day/night profile, then sorts them.
fn sample_arrivals(spec: &TraceSpec, rng: &mut StdRng) -> Vec<SimTime> {
    let duration_us = spec.duration.as_micros().max(1);
    let hour_us = 3_600_000_000u64;
    let buckets = duration_us.div_ceil(hour_us) as usize;
    let amp = spec.diurnal_amplitude.clamp(0.0, 0.99);

    // Weight of each hourly bucket: peak mid-afternoon, trough pre-dawn.
    let weights: Vec<f64> = (0..buckets)
        .map(|h| {
            let day_frac = (h % 24) as f64 / 24.0;
            1.0 + amp * (std::f64::consts::TAU * (day_frac - 0.40)).sin()
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut times = Vec::with_capacity(spec.total_requests as usize);
    for _ in 0..spec.total_requests {
        // Pick a bucket by weight, then a uniform offset within it.
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut bucket = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                bucket = i;
                break;
            }
            pick -= w;
        }
        let start = bucket as u64 * hour_us;
        let end = ((bucket as u64 + 1) * hour_us).min(duration_us);
        let at = rng.gen_range(start..end.max(start + 1));
        times.push(SimTime::from_micros(at));
    }
    times.sort_unstable();
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSummary;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = TraceSpec::epa().scaled_down(50);
        let a = generate(&spec, 1);
        let b = generate(&spec, 1);
        let c = generate(&spec, 2);
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn spec_targets_are_met() {
        let spec = TraceSpec::sdsc().scaled_down(10);
        let t = generate(&spec, 3);
        assert_eq!(t.records.len() as u64, spec.total_requests);
        assert_eq!(t.doc_count() as u32, spec.num_docs);
        assert!(t.distinct_clients().len() as u32 <= spec.num_clients);
        assert!(t.validate().is_ok());
        assert!(t.records.last().unwrap().at <= SimTime::ZERO + spec.duration);
    }

    #[test]
    fn mean_size_close_to_target() {
        let spec = TraceSpec::nasa(); // 44 KiB average
        let t = generate(&spec, 4);
        let total: u64 = t.doc_sizes.iter().map(|s| s.as_u64()).sum();
        let mean = total as f64 / t.doc_sizes.len() as f64;
        let target = spec.avg_doc_size.as_u64() as f64;
        assert!(
            (mean - target).abs() / target < 0.15,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = TraceSpec::epa().scaled_down(4);
        let t = generate(&spec, 5);
        let mut per_doc = vec![0u64; t.doc_count()];
        for r in &t.records {
            per_doc[r.url.doc() as usize] += 1;
        }
        per_doc.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = per_doc[..per_doc.len() / 10].iter().sum();
        let total: u64 = per_doc.iter().sum();
        assert!(
            top_decile as f64 > total as f64 * 0.3,
            "top 10% of docs should draw >30% of requests (got {top_decile}/{total})"
        );
    }

    #[test]
    fn summary_shape_matches_paper_scale() {
        // Full-size EPA: popularity max should be in the hundreds-to-
        // thousands range with a small average, like Table 2's 1642 (8.2).
        let t = generate(&TraceSpec::epa(), 42);
        let s = TraceSummary::of(&t);
        assert_eq!(s.total_requests, 40_658);
        assert!(
            s.max_popularity > 300,
            "max popularity {}",
            s.max_popularity
        );
        assert!(s.avg_popularity > 2.0 && s.avg_popularity < 40.0);
    }

    #[test]
    fn federation_homes_trace_i_on_server_i() {
        let spec = TraceSpec::epa().scaled_down(50).with_origins(6, 0.8);
        let traces = generate_federation(&spec, 11);
        assert_eq!(traces.len(), 6);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.server, ServerId::new(i as u32), "trace {i}");
            assert!(t.validate().is_ok(), "trace {i}");
            assert_eq!(t.doc_count() as u32, spec.num_docs / 6);
        }
        let total: u64 = traces.iter().map(|t| t.records.len() as u64).sum();
        assert_eq!(total, spec.total_requests);
        // Deterministic and seed-sensitive.
        let again = generate_federation(&spec, 11);
        let other = generate_federation(&spec, 12);
        for (a, b) in traces.iter().zip(&again) {
            assert_eq!(a.records, b.records);
        }
        assert!(traces
            .iter()
            .zip(&other)
            .any(|(a, c)| a.records != c.records));
    }

    /// Regression for the `ServerId::new(0)` hardcode: per-origin request
    /// shares must follow the spec's origin-popularity distribution, not
    /// collapse onto server 0.
    #[test]
    fn federation_request_shares_follow_origin_zipf() {
        let spec = TraceSpec::epa().with_origins(8, 0.9);
        let traces = generate_federation(&spec, 3);
        let dist = Zipf::new(8, 0.9);
        let total = spec.total_requests as f64;
        for (i, t) in traces.iter().enumerate() {
            let share = t.records.len() as f64 / total;
            let expected = dist.pmf(i);
            assert!(
                (share - expected).abs() < 0.01,
                "origin {i}: share {share:.4} vs Zipf pmf {expected:.4}"
            );
        }
        // And the skew is real: origin 0 strictly dominates the tail.
        assert!(traces[0].records.len() > 2 * traces[7].records.len());
    }

    #[test]
    fn single_origin_federation_matches_generate() {
        let spec = TraceSpec::sdsc().scaled_down(20);
        let traces = generate_federation(&spec, 9);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].records, generate(&spec, 9).records);
    }

    #[test]
    #[should_panic(expected = "generate_federation")]
    fn single_origin_generate_rejects_federation_specs() {
        let spec = TraceSpec::epa().scaled_down(100).with_origins(3, 0.5);
        let _ = generate(&spec, 1);
    }

    #[test]
    fn origin_shares_are_exact_and_monotone() {
        let shares = origin_shares(10_000, 16, 0.7);
        assert_eq!(shares.iter().sum::<u64>(), 10_000);
        assert!(shares.windows(2).all(|w| w[0] >= w[1]), "{shares:?}");
        // Uniform when the exponent is zero.
        let flat = origin_shares(100, 4, 0.0);
        assert_eq!(flat, vec![25, 25, 25, 25]);
    }

    #[test]
    fn client_ids_are_distinct() {
        let mut rng = StdRng::seed_from_u64(8);
        let ids = synth_client_ids(500, &mut rng);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn arrivals_sorted_within_duration() {
        let spec = TraceSpec::clarknet().scaled_down(20);
        let mut rng = StdRng::seed_from_u64(9);
        let times = sample_arrivals(&spec, &mut rng);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times
            .iter()
            .all(|t| t.as_micros() < spec.duration.as_micros()));
    }
}

/// Rewrites a trace so that modifications attract follow-up requests:
/// every request falling within `window` after some modification is, with
/// probability `boost`, redirected to the most recently modified document.
///
/// This models "news-page" behaviour — users revisit pages that just
/// changed — which the raw generator (documents drawn i.i.d. Zipf,
/// independent of the modifier) lacks. The paper's SASK replacement anomaly
/// (§5.2) and, more broadly, any effect that hinges on *re-reading
/// fresh-modified documents* needs this coupling.
///
/// Deterministic given `seed`; request timestamps, clients and the trace
/// shape are unchanged — only the targeted documents move.
///
/// # Examples
///
/// ```
/// use wcc_traces::{synthetic, ModSchedule, TraceSpec};
/// use wcc_types::SimDuration;
///
/// let spec = TraceSpec::sask().scaled_down(200);
/// let trace = synthetic::generate(&spec, 3);
/// let mods = ModSchedule::generate(spec.num_docs, SimDuration::from_days(1),
///                                  spec.duration, 3);
/// let hot = synthetic::with_modification_interest(
///     &trace, &mods, 0.3, SimDuration::from_hours(2), 3);
/// assert_eq!(hot.records.len(), trace.records.len());
/// ```
pub fn with_modification_interest(
    trace: &Trace,
    mods: &crate::ModSchedule,
    boost: f64,
    window: wcc_types::SimDuration,
    seed: u64,
) -> Trace {
    let boost = boost.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ff_ee11);
    let mut out = trace.clone();
    let schedule = mods.modifications();
    let mut cursor = 0usize; // index of the first modification after `at`
    for rec in &mut out.records {
        while cursor < schedule.len() && schedule[cursor].at <= rec.at {
            cursor += 1;
        }
        let Some(last_mod) = cursor.checked_sub(1).map(|i| schedule[i]) else {
            continue;
        };
        let age = rec.at.saturating_since(last_mod.at);
        if age <= window
            && (last_mod.doc as usize) < out.doc_sizes.len()
            && rng.gen::<f64>() < boost
        {
            rec.url = Url::new(out.server, last_mod.doc);
        }
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod interest_tests {
    use super::*;
    use crate::{ModSchedule, TraceSpec};
    use wcc_types::SimDuration;

    fn setup() -> (Trace, ModSchedule) {
        let spec = TraceSpec::sask().scaled_down(150);
        let trace = generate(&spec, 5);
        let mods =
            ModSchedule::generate(spec.num_docs, SimDuration::from_hours(12), spec.duration, 5);
        (trace, mods)
    }

    #[test]
    fn boost_redirects_requests_toward_modified_docs() {
        let (trace, mods) = setup();
        let hot = with_modification_interest(&trace, &mods, 0.5, SimDuration::from_hours(3), 5);
        assert_eq!(hot.records.len(), trace.records.len());
        // Timestamps and clients untouched.
        for (a, b) in trace.records.iter().zip(&hot.records) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.client, b.client);
        }
        // Some requests moved, and the moved ones target modified docs.
        let modified: std::collections::HashSet<u32> =
            mods.modifications().iter().map(|m| m.doc).collect();
        let moved: Vec<_> = trace
            .records
            .iter()
            .zip(&hot.records)
            .filter(|(a, b)| a.url != b.url)
            .collect();
        assert!(!moved.is_empty(), "expected some redirected requests");
        for (_, b) in &moved {
            assert!(modified.contains(&b.url.doc()));
        }
    }

    #[test]
    fn zero_boost_is_identity() {
        let (trace, mods) = setup();
        let same = with_modification_interest(&trace, &mods, 0.0, SimDuration::from_hours(3), 5);
        assert_eq!(same.records, trace.records);
        // Out-of-range boost clamps rather than panicking.
        let _ = with_modification_interest(&trace, &mods, 7.0, SimDuration::from_hours(3), 5);
    }

    #[test]
    fn empty_schedule_is_identity() {
        let (trace, _) = setup();
        let mods = ModSchedule::none(trace.doc_count() as u32);
        let same = with_modification_interest(&trace, &mods, 1.0, SimDuration::from_days(9), 5);
        assert_eq!(same.records, trace.records);
    }

    #[test]
    fn deterministic_per_seed() {
        let (trace, mods) = setup();
        let a = with_modification_interest(&trace, &mods, 0.4, SimDuration::from_hours(2), 9);
        let b = with_modification_interest(&trace, &mods, 0.4, SimDuration::from_hours(2), 9);
        assert_eq!(a.records, b.records);
    }
}
