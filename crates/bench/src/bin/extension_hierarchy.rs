//! Extension E1: invalidation in a caching hierarchy.
//!
//! §2 of the paper credits Worrell's thesis with showing invalidation works
//! well in *hierarchical* object caches — "which significantly reduces the
//! overhead for invalidation" — but evaluates only the flat topology
//! because hierarchies were "not yet widely present". This experiment adds
//! the missing tier and measures exactly how much the hierarchy saves:
//!
//! * per-client flat (the paper's emulation: the server tracks every real
//!   client site);
//! * shared flat (deployed proxies: the server tracks four proxy sites);
//! * hierarchy (the server tracks one parent; the parent tracks children).

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{CacheSharing, Deployment, DeploymentOptions, RawReport, Topology};
use wcc_traces::{synthetic, ModSchedule, TraceSpec};
use wcc_types::SimDuration;

fn main() {
    let scale = parse_scale(std::env::args());
    println!(
        "=== Extension E1: invalidation across cache topologies (NASA, scale 1/{scale}) ===\n"
    );
    let spec = TraceSpec::nasa().scaled_down(scale);
    let lifetime = SimDuration::from_days(7);
    let trace = synthetic::generate(&spec, TABLE_SEED);
    let mods = ModSchedule::generate(spec.num_docs, lifetime, spec.duration, TABLE_SEED);
    let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);

    let run = |sharing: CacheSharing, topology: Topology| -> RawReport {
        let mut opts = DeploymentOptions::default();
        opts.sharing = sharing;
        opts.topology = topology;
        let mut d = Deployment::build(&trace, &mods, &cfg, opts);
        d.run();
        d.collect()
    };

    let per_client = run(CacheSharing::PerClient, Topology::Flat);
    let shared = run(CacheSharing::SharedPerProxy, Topology::Flat);
    let tree = run(CacheSharing::SharedPerProxy, Topology::Hierarchy);
    let parent = tree.parent.expect("hierarchy run has a parent");

    let origin_load = |r: &RawReport| match &r.parent {
        Some(p) => p.counters.upstream_gets + p.counters.upstream_ims,
        None => r.gets + r.ims,
    };
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "", "per-client flat", "shared flat", "hierarchy"
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Requests reaching the origin",
        origin_load(&per_client),
        origin_load(&shared),
        origin_load(&tree)
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Origin INVALIDATEs per run",
        per_client.invalidations,
        shared.invalidations,
        tree.invalidations
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Origin site-list entries (end)",
        per_client.sitelist.total_entries,
        shared.sitelist.total_entries,
        tree.sitelist.total_entries
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Origin max site list",
        per_client.sitelist.max_list_len,
        shared.sitelist.max_list_len,
        tree.sitelist.max_list_len
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Origin site-list storage",
        per_client.sitelist.storage.to_string(),
        shared.sitelist.storage.to_string(),
        tree.sitelist.storage.to_string()
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Origin server CPU",
        format!("{:.1}%", per_client.server_cpu * 100.0),
        format!("{:.1}%", shared.server_cpu * 100.0),
        format!("{:.1}%", tree.server_cpu * 100.0)
    );
    println!(
        "{:<34}{:>16}{:>16}{:>16}",
        "Consistency violations",
        per_client.final_violations,
        shared.final_violations,
        tree.final_violations
    );
    println!(
        "\nHierarchy internals: parent hits {}, relayed {} invalidations to \
         children ({} child-list entries, {} inval races absorbed).",
        parent.counters.parent_hits,
        parent.counters.invalidations_relayed,
        parent.child_sitelist.total_entries,
        parent.counters.inval_races,
    );
    println!(
        "\nExpected shape: each step left→right shrinks the origin's site\n\
         lists and invalidation fan-out (hierarchy: ≤1 per modification) and\n\
         offloads requests to the shared tiers — Worrell's observation,\n\
         quantified, with strong consistency intact at every step."
    );
}
