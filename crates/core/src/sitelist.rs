//! The accelerator's invalidation table: per-document site lists.
//!
//! "To keep track of client sites, the accelerator maintains an invalidation
//! table which records, for each URL document, a list of remote sites that
//! accessed the document since the previous invalidation of the document."
//!
//! Under the lease protocols each entry carries an expiry; the server only
//! needs to remember clients whose leases have not expired, which is what
//! bounds table growth (§6).

use wcc_types::{ByteSize, ClientId, FxHashMap, SimTime, Url};

/// Estimated memory cost of one site-list entry, in bytes. The paper reports
/// site-list storage "on the order of 20 to 30 bytes per request"; 24 bytes
/// models a client id, a lease expiry and map overhead. This constant is the
/// *paper's* accounting model and feeds the Table 5 "Storage" row; the
/// struct-of-arrays layout the table actually uses is cheaper (see
/// [`SOA_ENTRY_BYTES`]).
pub const ENTRY_BYTES: u64 = 24;

/// Estimated per-document overhead of a non-empty site list, in bytes.
pub const LIST_OVERHEAD_BYTES: u64 = 48;

/// Bytes per entry in the struct-of-arrays layout the table actually stores:
/// a 4-byte client id in one array and an 8-byte lease expiry in a parallel
/// array — no per-entry map node, no padding between the two.
pub const SOA_ENTRY_BYTES: u64 = 12;

/// Peak-memory accounting for one invalidation table, in both layouts: the
/// struct-of-arrays layout the table uses and the per-entry-map layout it
/// replaced. City-scale scenarios (10⁵+ clients over 50+ origins) are where
/// the difference binds; the trajectory bench gates on the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteListMemory {
    /// High-water mark of the struct-of-arrays layout, in bytes.
    pub peak_bytes: u64,
    /// High-water mark the legacy `map<client, expiry>`-per-document layout
    /// would have reached over the same operation sequence, in bytes.
    pub peak_legacy_bytes: u64,
}

impl SiteListMemory {
    /// Component-wise sum (deployments aggregate one table per origin; each
    /// origin's peak is taken independently, so the sum is the model's upper
    /// bound on simultaneous residency).
    #[must_use]
    pub fn merged(self, other: SiteListMemory) -> SiteListMemory {
        SiteListMemory {
            peak_bytes: self.peak_bytes + other.peak_bytes,
            peak_legacy_bytes: self.peak_legacy_bytes + other.peak_legacy_bytes,
        }
    }

    /// How much smaller the struct-of-arrays peak is than the legacy peak,
    /// in percent (0 when the legacy peak is zero).
    pub fn reduction_pct(self) -> f64 {
        if self.peak_legacy_bytes == 0 {
            0.0
        } else {
            (1.0 - self.peak_bytes as f64 / self.peak_legacy_bytes as f64) * 100.0
        }
    }
}

/// Aggregate statistics about the table, in the shape of the paper's
/// Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteListStats {
    /// Estimated memory consumed by all site lists.
    pub storage: ByteSize,
    /// Total entries across all lists.
    pub total_entries: u64,
    /// Number of documents with a non-empty list.
    pub tracked_documents: u64,
    /// Longest list.
    pub max_list_len: u64,
}

/// The per-document site lists, with lease expiries.
///
/// # Examples
///
/// ```
/// use wcc_core::InvalidationTable;
/// use wcc_types::{ClientId, ServerId, SimTime, Url};
///
/// let mut table = InvalidationTable::new();
/// let url = Url::new(ServerId::new(0), 1);
/// let c1 = ClientId::from_raw(1);
/// let c2 = ClientId::from_raw(2);
/// table.register(url, c1, SimTime::NEVER);
/// table.register(url, c2, SimTime::from_secs(100));
///
/// // At t=200 c2's lease has expired: only c1 must be invalidated.
/// let sites = table.take_sites(url, SimTime::from_secs(200));
/// assert_eq!(sites, vec![c1]);
/// assert_eq!(table.site_count(url), 0); // list reset by the invalidation
/// ```
#[derive(Debug, Default, Clone)]
pub struct InvalidationTable {
    lists: FxHashMap<Url, SiteList>,
    entries: u64,
    peak: SiteListMemory,
}

/// One document's site list in struct-of-arrays form: a sorted array of
/// client ids and a parallel array of lease expiries. Membership is a
/// binary search; draining preserves sorted order for free.
#[derive(Debug, Default, Clone)]
struct SiteList {
    clients: Vec<ClientId>,
    expires: Vec<SimTime>,
}

impl SiteList {
    /// Inserts or extends `client`'s lease; returns whether the entry is new.
    fn register(&mut self, client: ClientId, lease_expires: SimTime) -> bool {
        match self.clients.binary_search(&client) {
            Ok(i) => {
                if let Some(expiry) = self.expires.get_mut(i) {
                    *expiry = (*expiry).max(lease_expires);
                }
                false
            }
            Err(i) => {
                self.clients.insert(i, client);
                self.expires.insert(i, lease_expires);
                true
            }
        }
    }

    fn len(&self) -> usize {
        self.clients.len()
    }

    /// Drops entries with `expires <= now` in place; returns how many fell.
    fn purge(&mut self, now: SimTime) -> u64 {
        let before = self.clients.len();
        // Lockstep compaction: walk the expiry array alongside each
        // retain pass so both arrays keep the same surviving rows, in
        // order, without indexing.
        let mut expiry_it = self.expires.iter().copied();
        self.clients
            .retain(|_| expiry_it.next().is_some_and(|e| e > now));
        self.expires.retain(|&e| e > now);
        (before - self.clients.len()) as u64
    }
}

impl InvalidationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        InvalidationTable::default()
    }

    /// Records that `client` fetched `url` and is promised invalidations
    /// until `lease_expires`. Re-registering extends the existing promise
    /// (the later expiry wins).
    pub fn register(&mut self, url: Url, client: ClientId, lease_expires: SimTime) {
        if self
            .lists
            .entry(url)
            .or_default()
            .register(client, lease_expires)
        {
            self.entries += 1;
            // `register` is the only growth operation, so the high-water
            // marks only need refreshing here.
            let lists = self.lists.len() as u64;
            self.peak.peak_bytes = self
                .peak
                .peak_bytes
                .max(lists * LIST_OVERHEAD_BYTES + self.entries * SOA_ENTRY_BYTES);
            self.peak.peak_legacy_bytes = self
                .peak
                .peak_legacy_bytes
                .max(lists * LIST_OVERHEAD_BYTES + self.entries * ENTRY_BYTES);
        }
    }

    /// Removes `client` from `url`'s list, returning whether it was present.
    pub fn unregister(&mut self, url: Url, client: ClientId) -> bool {
        match self.lists.get_mut(&url) {
            Some(list) => match list.clients.binary_search(&client) {
                Ok(i) => {
                    list.clients.remove(i);
                    list.expires.remove(i);
                    self.entries -= 1;
                    if list.clients.is_empty() {
                        self.lists.remove(&url);
                    }
                    true
                }
                Err(_) => false,
            },
            None => false,
        }
    }

    /// Drains `url`'s site list (the modification just invalidated it) and
    /// returns the clients whose leases are still live at `now`, sorted for
    /// determinism. Clients with expired leases are simply dropped — they
    /// promised to revalidate on their own.
    pub fn take_sites(&mut self, url: Url, now: SimTime) -> Vec<ClientId> {
        let Some(list) = self.lists.remove(&url) else {
            return Vec::new();
        };
        self.entries -= list.len() as u64;
        // `clients` is kept sorted, so filtering preserves the sorted order
        // the callers rely on.
        list.clients
            .into_iter()
            .zip(list.expires)
            .filter(|&(_, expires)| expires > now)
            .map(|(client, _)| client)
            .collect()
    }

    /// The number of (live or expired) entries in `url`'s list.
    pub fn site_count(&self, url: Url) -> usize {
        self.lists.get(&url).map_or(0, |l| l.len())
    }

    /// Total entries across all lists.
    pub fn total_entries(&self) -> u64 {
        self.entries
    }

    /// Drops every entry whose lease expired before `now`. Returns how many
    /// entries were collected. (The lease-augmented server runs this
    /// periodically; with infinite leases it is a no-op.)
    pub fn purge_expired(&mut self, now: SimTime) -> u64 {
        let mut removed = 0;
        self.lists.retain(|_, list| {
            removed += list.purge(now);
            list.len() > 0
        });
        self.entries -= removed;
        removed
    }

    /// Table-wide statistics (the paper's Table 5 "Storage" row and friends).
    /// Storage is costed with the paper's per-entry model ([`ENTRY_BYTES`]),
    /// independent of the in-memory layout, so Table 5 stays comparable
    /// across layout changes; [`InvalidationTable::memory`] reports what the
    /// layout actually costs.
    pub fn stats(&self) -> SiteListStats {
        let mut stats = SiteListStats::default();
        for list in self.lists.values() {
            let len = list.len() as u64;
            stats.total_entries += len;
            stats.tracked_documents += 1;
            stats.max_list_len = stats.max_list_len.max(len);
            stats.storage += ByteSize::from_bytes(LIST_OVERHEAD_BYTES + ENTRY_BYTES * len);
        }
        stats
    }

    /// Peak-memory accounting over this table's lifetime: the
    /// struct-of-arrays high-water mark next to what the legacy
    /// map-per-document layout would have held at its worst.
    pub fn memory(&self) -> SiteListMemory {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::ServerId;

    fn url(doc: u32) -> Url {
        Url::new(ServerId::new(0), doc)
    }

    fn client(raw: u32) -> ClientId {
        ClientId::from_raw(raw)
    }

    #[test]
    fn register_take_cycle() {
        let mut t = InvalidationTable::new();
        t.register(url(1), client(5), SimTime::NEVER);
        t.register(url(1), client(3), SimTime::NEVER);
        t.register(url(2), client(5), SimTime::NEVER);
        assert_eq!(t.site_count(url(1)), 2);
        assert_eq!(t.total_entries(), 3);

        let sites = t.take_sites(url(1), SimTime::from_secs(10));
        assert_eq!(sites, vec![client(3), client(5)], "sorted for determinism");
        assert_eq!(t.site_count(url(1)), 0);
        assert_eq!(t.site_count(url(2)), 1, "other documents untouched");
        assert!(t.take_sites(url(9), SimTime::ZERO).is_empty());
    }

    #[test]
    fn duplicate_registration_keeps_one_entry_latest_lease() {
        let mut t = InvalidationTable::new();
        t.register(url(1), client(1), SimTime::from_secs(100));
        t.register(url(1), client(1), SimTime::from_secs(500));
        assert_eq!(t.site_count(url(1)), 1);
        // Live at t=200 because the later lease won.
        assert_eq!(
            t.take_sites(url(1), SimTime::from_secs(200)),
            vec![client(1)]
        );

        // Re-registering with an *earlier* expiry must not shorten it.
        t.register(url(1), client(1), SimTime::from_secs(500));
        t.register(url(1), client(1), SimTime::from_secs(100));
        assert_eq!(
            t.take_sites(url(1), SimTime::from_secs(200)),
            vec![client(1)]
        );
    }

    #[test]
    fn expired_leases_are_not_invalidated() {
        let mut t = InvalidationTable::new();
        t.register(url(1), client(1), SimTime::from_secs(50));
        t.register(url(1), client(2), SimTime::from_secs(150));
        let sites = t.take_sites(url(1), SimTime::from_secs(100));
        assert_eq!(sites, vec![client(2)]);
    }

    #[test]
    fn unregister() {
        let mut t = InvalidationTable::new();
        t.register(url(1), client(1), SimTime::NEVER);
        assert!(t.unregister(url(1), client(1)));
        assert!(!t.unregister(url(1), client(1)));
        assert_eq!(t.total_entries(), 0);
        // Empty list is fully dropped (no storage cost).
        assert_eq!(t.stats().tracked_documents, 0);
    }

    #[test]
    fn purge_collects_only_expired() {
        let mut t = InvalidationTable::new();
        for c in 0..10 {
            let expiry = SimTime::from_secs(if c % 2 == 0 { 10 } else { 1_000 });
            t.register(url(c), client(c), expiry);
        }
        let removed = t.purge_expired(SimTime::from_secs(100));
        assert_eq!(removed, 5);
        assert_eq!(t.total_entries(), 5);
        assert_eq!(t.purge_expired(SimTime::from_secs(100)), 0);
    }

    #[test]
    fn storage_accounting_matches_model() {
        let mut t = InvalidationTable::new();
        assert_eq!(t.stats().storage, ByteSize::ZERO);
        t.register(url(1), client(1), SimTime::NEVER);
        t.register(url(1), client(2), SimTime::NEVER);
        t.register(url(2), client(1), SimTime::NEVER);
        let s = t.stats();
        assert_eq!(s.tracked_documents, 2);
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.max_list_len, 2);
        assert_eq!(
            s.storage,
            ByteSize::from_bytes(2 * LIST_OVERHEAD_BYTES + 3 * ENTRY_BYTES)
        );
    }

    #[test]
    fn peak_memory_tracks_high_water_in_both_models() {
        let mut t = InvalidationTable::new();
        assert_eq!(t.memory(), SiteListMemory::default());
        for c in 0..10 {
            t.register(url(1), client(c), SimTime::NEVER);
        }
        let at_peak = t.memory();
        assert_eq!(
            at_peak.peak_bytes,
            LIST_OVERHEAD_BYTES + 10 * SOA_ENTRY_BYTES
        );
        assert_eq!(
            at_peak.peak_legacy_bytes,
            LIST_OVERHEAD_BYTES + 10 * ENTRY_BYTES
        );
        // Draining the list does not lower the high-water mark...
        t.take_sites(url(1), SimTime::ZERO);
        assert_eq!(t.total_entries(), 0);
        assert_eq!(t.memory(), at_peak);
        // ...and duplicate re-registration does not inflate it.
        t.register(url(1), client(0), SimTime::NEVER);
        t.register(url(1), client(0), SimTime::NEVER);
        assert_eq!(t.memory(), at_peak);
        // Long lists approach the per-entry saving (12 vs 24 bytes); at ten
        // entries the shared list overhead still dilutes it to ~42%.
        assert!(
            at_peak.reduction_pct() > 40.0,
            "{}",
            at_peak.reduction_pct()
        );
        // Merging sums component-wise.
        let m = at_peak.merged(at_peak);
        assert_eq!(m.peak_bytes, 2 * at_peak.peak_bytes);
        assert_eq!(m.peak_legacy_bytes, 2 * at_peak.peak_legacy_bytes);
    }

    #[test]
    fn take_sites_returns_sorted_unique_clients_from_soa_layout() {
        let mut t = InvalidationTable::new();
        // Register in descending order; the sorted-array invariant must
        // still yield ascending output.
        for c in (0..20).rev() {
            t.register(url(3), client(c * 7 % 20), SimTime::NEVER);
        }
        let sites = t.take_sites(url(3), SimTime::ZERO);
        let expect: Vec<ClientId> = (0..20).map(client).collect();
        assert_eq!(sites, expect);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wcc_types::ServerId;

    proptest! {
        /// take_sites never returns expired leases and always empties the
        /// list; total_entries always equals the sum over documents.
        #[test]
        fn lease_and_accounting_invariants(
            regs in proptest::collection::vec((0u32..5, 0u32..8, 0u64..200), 1..100),
            take_at in 0u64..200,
        ) {
            let mut t = InvalidationTable::new();
            for (doc, client, expiry) in &regs {
                t.register(
                    Url::new(ServerId::new(0), *doc),
                    ClientId::from_raw(*client),
                    SimTime::from_secs(*expiry),
                );
            }
            let sum: u64 = (0u32..5)
                .map(|d| t.site_count(Url::new(ServerId::new(0), d)) as u64)
                .sum();
            prop_assert_eq!(t.total_entries(), sum);

            let now = SimTime::from_secs(take_at);
            let url0 = Url::new(ServerId::new(0), 0);
            let live = t.take_sites(url0, now);
            // Sorted and unique.
            let mut sorted = live.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &live);
            prop_assert_eq!(t.site_count(url0), 0);
            // Each returned client had at least one registration for doc 0
            // with expiry after `now`.
            for c in live {
                prop_assert!(regs.iter().any(|(d, cl, e)|
                    *d == 0 && ClientId::from_raw(*cl) == c && SimTime::from_secs(*e) > now));
            }
        }

        /// Conservation: across any op sequence the table tracks exactly the
        /// registered-and-not-yet-removed entries — every entry that leaves
        /// does so through `take_sites`, `purge_expired`, or `unregister`,
        /// and the live subset returned by `take_sites` matches a shadow map.
        #[test]
        fn entries_are_conserved_across_op_sequences(
            ops in proptest::collection::vec((0u8..4, 0u32..4, 0u32..6, 0u64..100), 1..120),
        ) {
            use std::collections::HashMap;
            let mut t = InvalidationTable::new();
            // Shadow model: (doc, client) -> lease expiry (max wins).
            let mut shadow: HashMap<(u32, u32), SimTime> = HashMap::new();
            for (op, doc, cl, tick) in ops {
                let u = Url::new(ServerId::new(0), doc);
                let c = ClientId::from_raw(cl);
                let at = SimTime::from_secs(tick);
                match op {
                    0 => {
                        t.register(u, c, at);
                        let e = shadow.entry((doc, cl)).or_insert(at);
                        *e = (*e).max(at);
                    }
                    1 => {
                        let taken = t.take_sites(u, at);
                        let mut expect: Vec<ClientId> = shadow
                            .iter()
                            .filter(|(&(d, _), &exp)| d == doc && exp > at)
                            .map(|(&(_, raw), _)| ClientId::from_raw(raw))
                            .collect();
                        expect.sort_unstable();
                        prop_assert_eq!(taken, expect);
                        shadow.retain(|&(d, _), _| d != doc);
                    }
                    2 => {
                        let purged = t.purge_expired(at);
                        let before = shadow.len();
                        shadow.retain(|_, &mut exp| exp > at);
                        prop_assert_eq!(purged, (before - shadow.len()) as u64);
                    }
                    _ => {
                        let was = t.unregister(u, c);
                        prop_assert_eq!(was, shadow.remove(&(doc, cl)).is_some());
                    }
                }
                prop_assert_eq!(t.total_entries(), shadow.len() as u64);
                prop_assert_eq!(t.stats().total_entries, shadow.len() as u64);
            }
        }
    }
}
