//! Bounded keep-alive connection pooling for the upward hop
//! (proxy→origin, proxy→parent, parent→origin).
//!
//! Each node keeps a small [`BoundedPool`] of persistent request/reply
//! connections instead of dialing per request. A pooled connection that
//! died while idle (the peer restarted) is detected by the round-trip
//! failing, discarded, and the exchange retried once on a fresh dial —
//! transparent to the policy layer above.

use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use wcc_proto::{FrameReader, HttpMsgRef, ReplyStatusRef};
use wcc_reactor::{Acquire, BoundedPool};
use wcc_types::{DocMeta, SimTime, Url};

/// One pooled keep-alive connection to the upstream node.
pub(crate) struct UpstreamConn {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl UpstreamConn {
    fn connect(origin: SocketAddr) -> io::Result<UpstreamConn> {
        let stream = TcpStream::connect(origin)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let writer = stream.try_clone()?;
        Ok(UpstreamConn {
            writer,
            reader: FrameReader::new(stream),
        })
    }

    /// Sends one encoded `GET` and summarises the reply into owned data.
    /// The borrowed `200` body is dropped here: caches above this layer
    /// store metadata only, so the zero-copy decode never materialises
    /// the payload.
    fn roundtrip(&mut self, frame: &[u8]) -> io::Result<OwnedReply> {
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        let msg = self
            .reader
            .next_msg()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let HttpMsgRef::Reply(reply) = msg else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a reply",
            ));
        };
        Ok(OwnedReply {
            meta: match reply.status {
                ReplyStatusRef::Ok { meta, .. } => Some(meta),
                ReplyStatusRef::NotModified => None,
            },
            lease: reply.lease,
            volume_lease: reply.volume_lease,
            piggyback: reply.piggyback_urls(),
        })
    }
}

/// A reply with the body discarded: everything the policy layer needs.
pub(crate) struct OwnedReply {
    /// `Some` for a `200`, `None` for `304`.
    pub meta: Option<DocMeta>,
    pub lease: Option<SimTime>,
    pub volume_lease: Option<SimTime>,
    pub piggyback: Vec<Url>,
}

/// One request/reply exchange over the bounded pool. A reused keep-alive
/// connection that turns out to be dead (upstream restarted) is discarded
/// and the exchange retried once on a fresh connection.
pub(crate) fn pooled_roundtrip(
    pool: &Mutex<BoundedPool<UpstreamConn>>,
    origin: SocketAddr,
    frame: &[u8],
) -> io::Result<OwnedReply> {
    for attempt in 0..2 {
        let (mut conn, reused, pooled) = {
            let acquired = pool.lock().try_acquire();
            match acquired {
                Acquire::Reuse(conn) => (conn, true, true),
                Acquire::Open => match UpstreamConn::connect(origin) {
                    Ok(conn) => (conn, false, true),
                    Err(e) => {
                        pool.lock().discard();
                        return Err(e);
                    }
                },
                // The pool is sized above the worker count, so this only
                // happens under exotic external use; fall back to an
                // unpooled one-shot connection.
                Acquire::Exhausted => (UpstreamConn::connect(origin)?, false, false),
            }
        };
        match conn.roundtrip(frame) {
            Ok(reply) => {
                if pooled {
                    pool.lock().release(conn);
                }
                return Ok(reply);
            }
            Err(e) => {
                if pooled {
                    pool.lock().discard();
                }
                if reused && attempt == 0 {
                    continue; // stale pooled connection; retry fresh
                }
                return Err(e);
            }
        }
    }
    Err(io::Error::other("upstream retry did not resolve"))
}
