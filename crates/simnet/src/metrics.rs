//! Metric primitives: counters and min/avg/max summaries with
//! histogram-backed latency tails.

use core::fmt;
use wcc_obs::Histogram;
use wcc_types::{ByteSize, SimDuration};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use wcc_simnet::Counter;
///
/// let mut hits = Counter::default();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Aggregate traffic statistics maintained by the simulation engine: every
/// [`Ctx::send`](crate::Ctx::send) records one message and its bytes;
/// undeliverable messages also count as `dropped`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (delivered or not).
    pub messages: u64,
    /// Total bytes of those messages (accounted, i.e. unscaled, sizes).
    pub bytes: ByteSize,
    /// Messages lost to partitions or crashed destinations.
    pub dropped: u64,
}

impl NetStats {
    pub(crate) fn record(&mut self, size: ByteSize) {
        self.messages += 1;
        self.bytes += size;
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Adds another tally into this one (order-insensitive sums, used when
    /// merging per-shard statistics after a sharded run).
    pub(crate) fn absorb(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.dropped += other.dropped;
    }
}

/// An online min/avg/max summary of simulated durations — the shape of the
/// paper's latency rows (Avg/Min/Max Latency) — with the full distribution
/// kept in a mergeable log-linear [`Histogram`] for tail quantiles.
///
/// Count, total, min, max and mean are exact; quantiles are histogram
/// estimates within 6.25% above the true nearest-rank value (and exact at
/// `q = 0` / `q = 1`).
///
/// # Examples
///
/// ```
/// use wcc_simnet::Summary;
/// use wcc_types::SimDuration;
///
/// let mut s = Summary::default();
/// s.observe(SimDuration::from_millis(10));
/// s.observe(SimDuration::from_millis(30));
/// assert_eq!(s.min(), Some(SimDuration::from_millis(10)));
/// assert_eq!(s.max(), Some(SimDuration::from_millis(30)));
/// assert_eq!(s.mean(), Some(SimDuration::from_millis(20)));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    hist: Histogram,
}

impl Summary {
    /// Records one observation.
    pub fn observe(&mut self, value: SimDuration) {
        self.hist.record(value.as_micros());
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.hist.merge(&other.hist);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Smallest observation, if any (exact).
    pub fn min(&self) -> Option<SimDuration> {
        self.hist.min().map(SimDuration::from_micros)
    }

    /// Largest observation, if any (exact).
    pub fn max(&self) -> Option<SimDuration> {
        self.hist.max().map(SimDuration::from_micros)
    }

    /// Mean observation, if any (exact).
    pub fn mean(&self) -> Option<SimDuration> {
        if self.hist.count() == 0 {
            None
        } else {
            Some(self.total().div(self.hist.count()))
        }
    }

    /// Sum of all observations (exact).
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(self.hist.sum())
    }

    /// The nearest-rank `q`-quantile estimate, e.g. `quantile(0.99)` for
    /// the p99: the histogram bucket bound holding the ranked observation,
    /// within 6.25% above the true value (exact at `q = 0` / `q = 1`).
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        self.hist.quantile(q).map(SimDuration::from_micros)
    }

    /// The median observation estimate.
    pub fn median(&self) -> Option<SimDuration> {
        self.quantile(0.5)
    }

    /// The p90 estimate.
    pub fn p90(&self) -> Option<SimDuration> {
        self.quantile(0.9)
    }

    /// The p99 estimate.
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// The p99.9 estimate.
    pub fn p999(&self) -> Option<SimDuration> {
        self.quantile(0.999)
    }

    /// The underlying histogram (for registry exposition and merging into
    /// other observability sinks).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mean(), self.min(), self.max()) {
            (Some(mean), Some(min), Some(max)) => {
                write!(f, "avg {mean} / min {min} / max {max} (n={})", self.count())
            }
            _ => write!(f, "no observations"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut s = Summary::default();
        for ms in [5u64, 1, 9, 5] {
            s.observe(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(SimDuration::from_millis(1)));
        assert_eq!(s.max(), Some(SimDuration::from_millis(9)));
        assert_eq!(s.mean(), Some(SimDuration::from_millis(5)));
        assert_eq!(s.total(), SimDuration::from_millis(20));
    }

    #[test]
    fn empty_summary_reports_none() {
        let s = Summary::default();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "no observations");
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::default();
        a.observe(SimDuration::from_millis(2));
        let mut b = Summary::default();
        b.observe(SimDuration::from_millis(8));
        b.observe(SimDuration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(SimDuration::from_millis(2)));
        assert_eq!(a.max(), Some(SimDuration::from_millis(8)));
        // (2+8+4)/3 ≈ 4.666 ms
        assert_eq!(a.mean(), Some(SimDuration::from_micros(4_666)));
    }

    /// The histogram-backed quantile over-estimates the exact nearest-rank
    /// value by at most one sub-bucket (6.25%).
    fn assert_within_band(s: &Summary, q: f64, exact_ms: u64) {
        let exact = SimDuration::from_millis(exact_ms).as_micros();
        let est = s.quantile(q).unwrap().as_micros();
        assert!(est >= exact, "q={q}: {est} < {exact}");
        assert!(
            (est - exact) as f64 <= exact as f64 / 16.0,
            "q={q}: {est} vs {exact}"
        );
    }

    #[test]
    fn quantiles_are_bounded_histogram_estimates() {
        let mut s = Summary::default();
        for ms in 1..=100u64 {
            s.observe(SimDuration::from_millis(ms));
        }
        assert_within_band(&s, 0.5, 50);
        assert_within_band(&s, 0.99, 99);
        // The extremes are exact: they return the recorded min/max.
        assert_eq!(s.quantile(1.0), Some(SimDuration::from_millis(100)));
        assert_eq!(s.quantile(0.0), Some(SimDuration::from_millis(1)));
        assert_eq!(s.median(), s.quantile(0.5));
        assert_eq!(s.p99(), s.quantile(0.99));
        assert_eq!(Summary::default().quantile(0.9), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let mut s = Summary::default();
        s.observe(SimDuration::from_millis(1));
        let _ = s.quantile(1.5);
    }

    #[test]
    fn merged_quantiles_see_all_samples() {
        let mut a = Summary::default();
        let mut b = Summary::default();
        for ms in 1..=50u64 {
            a.observe(SimDuration::from_millis(ms));
        }
        for ms in 51..=100u64 {
            b.observe(SimDuration::from_millis(ms));
        }
        a.merge(&b);
        assert_within_band(&a, 0.75, 75);
        assert_eq!(a.count(), 100);
        assert_eq!(a.histogram().count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::default();
        a.observe(SimDuration::from_secs(1));
        let before = a.clone();
        a.merge(&Summary::default());
        assert_eq!(a, before);
    }
}
