//! The paper's contribution: Web cache-consistency protocols.
//!
//! This crate implements the three consistency approaches compared by
//! Liu & Cao (ICDCS '97), plus the two scalability extensions from their §6,
//! as **pure state machines** with no I/O:
//!
//! | Protocol | Consistency | Mechanism |
//! |---|---|---|
//! | [`ProtocolKind::AdaptiveTtl`] | weak | Alex-style TTL = threshold × document age; `If-Modified-Since` on expiry |
//! | [`ProtocolKind::PollEveryTime`] | strong | `If-Modified-Since` on **every** cache hit |
//! | [`ProtocolKind::Invalidation`] | strong | server tracks client sites per document and sends `INVALIDATE` on change |
//! | [`ProtocolKind::LeaseInvalidation`] | strong | invalidation promises bounded by a lease; expired copies revalidate |
//! | [`ProtocolKind::TwoTierLease`] | strong | zero-length lease on `GET`, full lease on `If-Modified-Since` — only repeat readers are tracked |
//!
//! The split mirrors the deployment: [`ProxyPolicy`] is the client-side half
//! (runs in each Harvest proxy), [`ServerConsistency`] is the server-side
//! half (runs in the accelerator in front of the origin server). Both are
//! driven by the discrete-event simulator in `wcc-httpsim` *and* by the real
//! TCP prototype in `wcc-net`, so the exact same protocol code is measured
//! in both settings.
//!
//! [`analytical`] implements the paper's Table 1 closed-form message-count
//! model, which the property tests cross-check against the simulator.
//!
//! # Example: one invalidation round trip
//!
//! ```
//! use wcc_cache::{CacheStore, ReplacementPolicy};
//! use wcc_core::{ProtocolConfig, ProtocolKind, ProxyAction, ProxyPolicy, ServerConsistency};
//! use wcc_types::{ByteSize, ClientId, DocMeta, ServerId, SimTime, Url};
//!
//! let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
//! let mut proxy = ProxyPolicy::new(&cfg);
//! let mut server = ServerConsistency::new(&cfg, ServerId::new(0));
//! let mut cache = CacheStore::unbounded(ReplacementPolicy::Lru);
//!
//! let url = Url::new(ServerId::new(0), 1);
//! let client = ClientId::from_raw(9);
//! let key = url.scoped(client);
//! let t0 = SimTime::from_secs(10);
//!
//! // Miss → plain GET.
//! let d = proxy.on_request(key, t0, &mut cache);
//! assert!(matches!(d.action, ProxyAction::SendGet { ims: None }));
//!
//! // Server side: serves the doc, registers the site, grants an
//! // infinite lease (plain invalidation).
//! let doc = DocMeta::new(ByteSize::from_kib(4), SimTime::from_secs(1));
//! let grant = server.on_get(url, client, None, doc, t0);
//! assert!(grant.send_body);
//! assert!(grant.register);
//!
//! // Proxy caches the reply.
//! proxy.on_reply_200(key, doc, grant.lease, t0, &mut cache);
//! assert!(cache.peek(key).is_some());
//!
//! // The document changes → the server fans out one INVALIDATE.
//! let recipients = server.on_modify(url, SimTime::from_secs(20));
//! assert_eq!(recipients, vec![client]);
//!
//! // The proxy drops its copy and acks.
//! assert!(proxy.on_invalidate(url, client, &mut cache).is_some());
//! server.on_inval_ack(url, client);
//! assert_eq!(server.table().site_count(url), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytical;
pub mod config;
pub mod economics;
pub mod meter;
pub mod proxy;
pub mod server;
pub mod sitelist;

pub use config::{AdaptiveTtlConfig, LeasePolicy, ProtocolConfig, ProtocolKind};
pub use economics::{AdaptiveLeaseConfig, LeaseEconomics};
pub use meter::{DocViews, HitMeter};
pub use proxy::{ProxyAction, ProxyPolicy, RequestDisposition};
pub use server::{GetGrant, ServerConsistency};
pub use sitelist::{InvalidationTable, SiteListMemory, SiteListStats};
