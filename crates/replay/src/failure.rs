//! The paper's §4 failure scenarios, as machine-checkable experiments.
//!
//! "There are three failure scenarios. The first is when a proxy is down and
//! misses an invalidation message. … The second scenario is when the server
//! site fails. … The third scenario is when network partitions occur."
//!
//! Each scenario runs the invalidation protocol over a scaled workload with
//! a [`FaultPlan`] injected, and returns a [`FailureOutcome`] whose
//! invariants the integration tests assert.

use crate::experiment::{materialise, ExperimentConfig, ReplayReport};
use wcc_httpsim::Deployment;
use wcc_simnet::FaultPlan;
use wcc_types::{SimDuration, SimTime};

/// What a failure-injection replay observed.
#[derive(Debug, Clone)]
pub struct FailureOutcome {
    /// The faulted replay's full report.
    pub report: ReplayReport,
    /// Wall length of the fault-free reference run (used to place faults).
    pub reference_wall: SimDuration,
    /// The injected outage window (wall clock).
    pub outage: (SimTime, SimTime),
}

/// Measures the fault-free wall duration so faults can be placed at
/// fractions of the run.
fn reference_wall(cfg: &ExperimentConfig) -> SimDuration {
    let (trace, mods) = materialise(cfg);
    let mut d = Deployment::build(&trace, &mods, &cfg.protocol, cfg.options.clone());
    d.run();
    d.collect().wall_duration
}

fn faulted_run(
    cfg: &ExperimentConfig,
    plan_for: impl FnOnce(&Deployment, SimTime, SimTime) -> FaultPlan,
    from_frac: f64,
    to_frac: f64,
) -> FailureOutcome {
    let wall = reference_wall(cfg);
    let at = |frac: f64| SimTime::ZERO + wall.mul_f64(frac);
    let (from, to) = (at(from_frac), at(to_frac));

    let (trace, mods) = materialise(cfg);
    let mut d = Deployment::build(&trace, &mods, &cfg.protocol, cfg.options.clone());
    let plan = plan_for(&d, from, to);
    d.apply_faults(&plan);
    d.run();
    let audit = cfg.options.audit.then(|| d.audit());
    let raw = d.collect();
    FailureOutcome {
        report: ReplayReport {
            trace: trace.name.clone(),
            protocol: cfg.protocol.kind,
            mean_lifetime: cfg.lifetime(),
            files_modified: mods.modifications().len() as u64,
            seed: cfg.seed,
            raw,
            audit,
        },
        reference_wall: wall,
        outage: (from, to),
    }
}

/// Scenario 1: proxy 0 crashes mid-run and recovers later. On recovery it
/// marks its whole cache questionable; invalidations it missed are
/// compensated by revalidation, and the server retries unacknowledged
/// invalidations.
pub fn proxy_crash_scenario(cfg: &ExperimentConfig, from: f64, to: f64) -> FailureOutcome {
    faulted_run(
        cfg,
        |d, from, to| FaultPlan::new().outage(d.proxy_ids()[0], from, to),
        from,
        to,
    )
}

/// Scenario 2: the server site fails and recovers. On recovery it sends the
/// bulk `INVALIDATE <server-addr>` to every site on its persistent list.
pub fn server_crash_scenario(cfg: &ExperimentConfig, from: f64, to: f64) -> FailureOutcome {
    faulted_run(
        cfg,
        |d, from, to| FaultPlan::new().outage(d.origin_id(), from, to),
        from,
        to,
    )
}

/// Scenario 3: a network partition between the server and proxy 0.
/// Invalidations are retried over TCP until the partition heals.
pub fn partition_scenario(cfg: &ExperimentConfig, from: f64, to: f64) -> FailureOutcome {
    faulted_run(
        cfg,
        |d, from, to| FaultPlan::new().partition(d.origin_id(), d.proxy_ids()[0], from, to),
        from,
        to,
    )
}

/// Scenario 2+3 combined: the server site fails, and a partition between
/// the server and proxy 0 is still up when the server recovers, so the
/// recovery-time bulk `INVALIDATE <server-addr>` to that proxy is lost in
/// transit. The origin must retry the bulk message until it is acked
/// (found by the scenario fuzzer: fire-and-forget recovery invalidations
/// left proxy 0 holding a live lease on a stale copy).
///
/// The outage spans `[from, mid)` and the partition `[mid - ε, to)`, where
/// `mid` is halfway through the window.
pub fn server_crash_under_partition_scenario(
    cfg: &ExperimentConfig,
    from: f64,
    to: f64,
) -> FailureOutcome {
    faulted_run(
        cfg,
        |d, from, to| {
            let span = to.saturating_since(from);
            let mid = from + span.mul_f64(0.5);
            let overlap = mid - SimDuration::from_secs(60);
            FaultPlan::new().outage(d.origin_id(), from, mid).partition(
                d.origin_id(),
                d.proxy_ids()[0],
                overlap,
                to,
            )
        },
        from,
        to,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use wcc_core::ProtocolKind;
    use wcc_traces::TraceSpec;
    use wcc_types::SimDuration;

    fn cfg() -> ExperimentConfig {
        // 150× keeps enough traffic in flight that the crash window actually
        // overlaps requests (at 300× the outage can land on a quiet stretch).
        ExperimentConfig::builder(TraceSpec::epa().scaled_down(150))
            .protocol(ProtocolKind::Invalidation)
            .mean_lifetime(SimDuration::from_hours(4)) // brisk churn
            .seed(5)
            .build()
    }

    #[test]
    fn proxy_crash_preserves_consistency() {
        let out = proxy_crash_scenario(&cfg(), 0.3, 0.6);
        let r = &out.report.raw;
        assert!(r.finished, "replay must drain despite the crash");
        assert_eq!(
            r.final_violations, 0,
            "no promised-fresh stale entries after recovery"
        );
        // The crash must actually have been felt.
        assert_eq!(r.proxy_recoveries, 1);
        assert!(
            r.questionable_marked > 0,
            "recovery should have marked cached entries questionable"
        );
    }

    #[test]
    fn server_crash_triggers_bulk_invalidation() {
        let out = server_crash_scenario(&cfg(), 0.3, 0.5);
        let r = &out.report.raw;
        assert!(r.finished);
        assert_eq!(
            r.bulk_invalidations, 4,
            "one INVALIDATE <server> per proxy site"
        );
        assert_eq!(r.final_violations, 0);
        // Requests during the outage timed out and were retransmitted.
        assert!(r.request_timeouts > 0);
    }

    #[test]
    fn partition_is_ridden_out_by_retries() {
        let out = partition_scenario(&cfg(), 0.3, 0.7);
        let r = &out.report.raw;
        assert!(r.finished);
        assert_eq!(r.final_violations, 0);
        assert!(r.writes_complete, "retries must deliver after healing");
    }

    #[test]
    fn faultless_reference_is_clean() {
        let base = cfg();
        let wall = reference_wall(&base);
        assert!(wall > SimDuration::ZERO);
    }
}
