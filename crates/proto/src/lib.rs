//! HTTP message model and wire codec for the `webcache` workspace.
//!
//! The paper's protocols speak a small subset of HTTP/1.0 plus one new
//! message type:
//!
//! * `GET` requests, optionally carrying an `If-Modified-Since` validator
//!   and the real client's id (so the server-side accelerator can register
//!   the site in its invalidation table);
//! * `200` replies carrying a document body, and `304 Not Modified` replies;
//!   under the lease protocols both may carry a lease grant;
//! * **`INVALIDATE`**, the paper's new message type, carrying "either a URL
//!   or the Web server address" (the latter is the bulk form used on server
//!   recovery);
//! * `NOTIFY`, the check-in message the modifier utility sends the
//!   accelerator when a document changes;
//! * coordinator control messages for the lock-step trace replay.
//!
//! [`Message`] is the payload type carried by the discrete-event simulator;
//! [`wire`] provides a text encoding of the same messages for the real TCP
//! prototype in `wcc-net`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msg;
pub mod wire;
pub mod zero;

pub use msg::{
    BatchAckEntry, BatchEntry, CoordMsg, GetRequest, HttpMsg, Message, Reply, ReplyStatus,
    RequestId,
};
pub use wire::{decode, encode, WireError};
pub use zero::{
    codec_sweep, decode_frame, decode_ref, CodecStats, FrameReader, HttpMsgRef,
    InvalidateBatchAckRef, InvalidateBatchRef, ReplyRef, ReplyStatusRef,
};
