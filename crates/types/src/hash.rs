//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The workspace's hottest maps — proxy caches keyed by [`ScopedUrl`],
//! site lists keyed by [`Url`]/[`ClientId`], the engine's timer and
//! reachability sets keyed by [`NodeId`] — all hash tiny fixed-width keys
//! (4–16 bytes). `std`'s default SipHash-1-3 is a keyed hash hardened
//! against collision flooding, which these closed-world simulation keys do
//! not need; profiling the replay inner loop showed a measurable share of
//! time under `SipHasher13::write`. [`FxHasher`] is the classic
//! Firefox/rustc multiply-xor hash: one `wrapping_mul` per word, no
//! per-process random state.
//!
//! The fixed state has a second benefit: **map iteration order is a pure
//! function of the insertion sequence**, identical across processes and
//! platforms, so no hash-order nondeterminism can leak into replay
//! reports. (`std`'s `RandomState` reseeds per process; any accidental
//! dependence on its iteration order would defeat byte-identical replays.)
//! The `xtask-lint` `hot-hash` rule enforces that the protocol-hot crates
//! build their maps with these aliases.
//!
//! [`ScopedUrl`]: crate::ScopedUrl
//! [`Url`]: crate::Url
//! [`ClientId`]: crate::ClientId
//! [`NodeId`]: crate::NodeId
//!
//! # Examples
//!
//! ```
//! use wcc_types::{FxHashMap, Url, ServerId};
//!
//! let mut hits: FxHashMap<Url, u64> = FxHashMap::default();
//! *hits.entry(Url::new(ServerId::new(0), 7)).or_insert(0) += 1;
//! assert_eq!(hits.len(), 1);
//! ```

use core::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s; zero-sized and stateless, so two maps with the
/// same keys always agree on bucket placement.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc/Firefox "Fx" hash: `hash = (hash.rotate_left(5) ^ word) * SEED`
/// per input word. Not collision-resistant against adversaries — never use
/// it for keys an attacker controls; the simulator's keys are its own.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            let word = u64::from_le_bytes([
                head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
            ]);
            self.add_to_hash(word);
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn identical_keys_hash_identically() {
        let url = crate::Url::new(crate::ServerId::new(3), 99);
        assert_eq!(hash_of(&url), hash_of(&url));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn nearby_keys_scatter() {
        // Dense u32 ids (the workspace's key shape) must not collide or
        // cluster into identical hashes.
        let hashes: std::collections::BTreeSet<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn iteration_order_is_a_pure_function_of_insertions() {
        let build = |ids: &[u32]| -> Vec<u32> {
            let mut set: FxHashSet<u32> = FxHashSet::default();
            for &i in ids {
                set.insert(i);
            }
            set.into_iter().collect()
        };
        // The same insertion sequence always yields the same iteration
        // order — including across processes and runs, unlike std's
        // per-process RandomState. (Different insertion *orders* may still
        // differ: table probing is displacement-sensitive.)
        let a = build(&[5, 1, 9, 4, 7, 2]);
        let b = build(&[5, 1, 9, 4, 7, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }
}
