//! End-to-end checks of the consistency auditor: real replays must come out
//! clean, and a deliberately corrupted event log must not.

use wcc_audit::Check;
use wcc_core::ProtocolKind;
use wcc_httpsim::Deployment;
use wcc_replay::{experiment::materialise, experiment::run_on, ExperimentConfig};
use wcc_traces::TraceSpec;
use wcc_types::{AuditEvent, SimDuration, SimTime};

fn audited_cfg(kind: ProtocolKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(200))
        .protocol(kind)
        .mean_lifetime(SimDuration::from_hours(6))
        .seed(13)
        .build();
    cfg.options.audit = true;
    cfg
}

#[test]
fn unmodified_replays_audit_clean() {
    for kind in [
        ProtocolKind::Invalidation,
        ProtocolKind::PollEveryTime,
        ProtocolKind::LeaseInvalidation,
        ProtocolKind::VolumeLease,
    ] {
        let cfg = audited_cfg(kind);
        let (trace, mods) = materialise(&cfg);
        let report = run_on(&cfg, &trace, &mods);
        let audit = report.audit.expect("audit was enabled");
        assert!(audit.is_clean(), "{kind}: {audit}");
        assert!(audit.checked_serves > 0 || kind == ProtocolKind::PollEveryTime);
    }
}

#[test]
fn injected_stale_serve_is_detected() {
    let cfg = audited_cfg(ProtocolKind::Invalidation);
    let (trace, mods) = materialise(&cfg);
    let mut deployment = Deployment::build(&trace, &mods, &cfg.protocol, cfg.options.clone());
    deployment.run();

    let mut log = deployment.audit_log();
    // Pick a client that provably received an invalidation, then forge a
    // from-cache serve of the stone-age version after that delivery.
    let delivered = log
        .iter()
        .find_map(|ev| match ev {
            AuditEvent::InvalidateDelivered { url, client, .. } => Some((*url, *client)),
            _ => None,
        })
        .expect("an invalidation-protocol replay under churn delivers invalidations");
    let end = log.last().expect("nonempty log").at();
    log.push(AuditEvent::Serve {
        url: delivered.0,
        client: delivered.1,
        version: SimTime::ZERO,
        from_cache: true,
        at: end + SimDuration::from_secs(1),
    });

    let report = wcc_audit::audit(ProtocolKind::Invalidation, &log, None);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == Check::Staleness),
        "forged stale serve must be flagged: {report}"
    );
    // The trail pins both the delivery and the offending serve.
    let v = report
        .violations
        .iter()
        .find(|v| v.check == Check::Staleness)
        .expect("checked above");
    assert_eq!(v.trail.len(), 2);
}

#[test]
fn tampered_expectations_are_caught() {
    // The same clean run must fail conservation if the server's claimed
    // counters disagree with the event log.
    let cfg = audited_cfg(ProtocolKind::Invalidation);
    let (trace, mods) = materialise(&cfg);
    let mut deployment = Deployment::build(&trace, &mods, &cfg.protocol, cfg.options.clone());
    deployment.run();
    let clean = deployment.audit();
    assert!(clean.is_clean(), "{clean}");

    let log = deployment.audit_log();
    let cooked = wcc_audit::Expectations {
        registrations: u64::MAX, // a counter no honest log can match
        ..Default::default()
    };
    let report = wcc_audit::audit(ProtocolKind::Invalidation, &log, Some(&cooked));
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == Check::Conservation),
        "cooked registration counter must be flagged: {report}"
    );
}
