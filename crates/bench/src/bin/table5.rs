//! Table 5: invalidation costs — site-list storage, average/maximum site
//! list length among modified documents, and invalidation send times — for
//! all six replays.

use wcc_bench::{experiment_label, paper_experiments, parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::ProtocolKind;
use wcc_replay::tables::format_table5_column;
use wcc_replay::{run_batch, ExperimentConfig};

/// The storage row preserved in the extracted paper text.
const PAPER_STORAGE: [(&str, &str); 6] = [
    ("EPA", "1.0 MB"),
    ("SASK", "621 KB"),
    ("ClarkNet", "1.6 MB"),
    ("NASA", "742 KB"),
    ("SDSC(57)", "489 KB"),
    ("SDSC(576)", "474 KB"),
];

fn main() {
    let scale = parse_scale(std::env::args());
    let jobs = parse_jobs(std::env::args());
    println!("=== Table 5: invalidation costs (seed {TABLE_SEED}, scale 1/{scale}) ===\n");
    let experiments = paper_experiments();
    let configs: Vec<ExperimentConfig> = experiments
        .iter()
        .map(|(spec, lifetime, _)| {
            ExperimentConfig::builder(spec.clone().scaled_down(scale))
                .protocol(ProtocolKind::Invalidation)
                .mean_lifetime(*lifetime)
                .seed(TABLE_SEED)
                .build()
        })
        .collect();
    let reports = run_batch(&configs, jobs);
    for ((spec, lifetime, _), report) in experiments.iter().zip(&reports) {
        let label = experiment_label(spec, *lifetime);
        println!("--- {label} ---");
        println!("{}", format_table5_column(report));
    }
    println!("Paper reference (storage row):");
    for (trace, storage) in PAPER_STORAGE {
        println!("  {trace:<10} {storage}");
    }
    println!(
        "\n(The paper's storage is \"on the order of 20 to 30 bytes per request\";\n\
         our model charges 24 bytes per entry plus 48 per tracked document.)"
    );
}
