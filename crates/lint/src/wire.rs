//! **wire-exhaustiveness**: the wire enums (`HttpMsg`, `AuditEvent`) are
//! the protocol's whole vocabulary; a handler that dispatches on them must
//! name every variant, or a message added for a new protocol (ROADMAP
//! item 3) compiles straight into a silent `_ =>` arm and is half-wired.
//!
//! The rule parses the enum declarations wherever they live, then checks
//! every `match` in the encoder/decoder/handler crates that *dispatches*
//! on the enum — i.e. names two or more of its variants in arm patterns.
//! Such a match must mention every declared variant by name; a catch-all
//! arm may remain (outer enums and guard fallthrough need one) but cannot
//! stand in for a missing variant.

use std::collections::BTreeSet;

use crate::engine::SourceFile;
use crate::lexer::{Delim, TokenKind};
use crate::Diagnostic;

pub(crate) const RULE: &str = "wire-exhaustiveness";

/// The enums whose dispatch must be total.
const WIRE_ENUMS: &[&str] = &["HttpMsg", "AuditEvent"];

/// Where dispatch sites are checked: the wire codec, the simulated and
/// real node handlers, the auditor, and the enum-owning crate itself.
/// Reporting/fuzz crates legitimately match a subset behind a catch-all.
pub(crate) fn match_scope(path: &str) -> bool {
    path.starts_with("crates/proto/src/")
        || path.starts_with("crates/httpsim/src/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/audit/src/")
        || path.starts_with("crates/types/src/")
}

/// One parsed wire-enum declaration.
pub(crate) struct EnumDef {
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// Extracts declarations of the wire enums from one file.
pub(crate) fn enum_defs(file: &SourceFile<'_>) -> Vec<EnumDef> {
    let mut defs = Vec::new();
    for k in 0..file.len() {
        if file.s(k) != "enum" || !WIRE_ENUMS.contains(&file.s(k + 1)) || file.masked_at(k) {
            continue;
        }
        // Find the declaration body: the first brace group after the name
        // (skipping generics, which contain no braces).
        let mut j = k + 2;
        while j < file.len() && !matches!(file.kind(j), Some(TokenKind::Open(Delim::Brace))) {
            j = file.skip_group(j);
        }
        let Some(close) = file.partner_sig(j) else {
            continue;
        };
        let mut variants = Vec::new();
        let mut t = j + 1;
        while t < close {
            // Skip attributes on the variant.
            while file.s(t) == "#"
                && matches!(file.kind(t + 1), Some(TokenKind::Open(Delim::Bracket)))
            {
                t = file.skip_group(t + 1);
            }
            if t >= close {
                break;
            }
            if matches!(file.kind(t), Some(TokenKind::Ident)) {
                variants.push(file.s(t).to_string());
            }
            // To the `,` ending this variant (skipping payload groups).
            t += 1;
            while t < close && file.s(t) != "," {
                t = file.skip_group(t);
            }
            t += 1; // past the `,`
        }
        if !variants.is_empty() {
            defs.push(EnumDef {
                name: file.s(k + 1).to_string(),
                variants,
            });
        }
    }
    defs
}

/// Checks every dispatching `match` in `file` against the declarations.
pub(crate) fn check_matches(file: &SourceFile<'_>, defs: &[EnumDef]) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    if defs.is_empty() || !match_scope(file.path) {
        return findings;
    }
    for k in 0..file.len() {
        if file.s(k) != "match"
            || !matches!(file.kind(k), Some(TokenKind::Ident))
            || file.masked_at(k)
        {
            continue;
        }
        // The match body: first brace group after the scrutinee (struct
        // literals cannot appear unparenthesised there).
        let mut j = k + 1;
        while j < file.len() && !matches!(file.kind(j), Some(TokenKind::Open(Delim::Brace))) {
            j = file.skip_group(j);
        }
        let Some(close) = file.partner_sig(j) else {
            continue;
        };
        for def in defs {
            let mentioned = mentioned_variants(file, def, j + 1, close);
            if mentioned.len() < 2 {
                continue; // not a dispatch site for this enum
            }
            let missing: Vec<&str> = def
                .variants
                .iter()
                .map(String::as_str)
                .filter(|v| !mentioned.contains(*v))
                .collect();
            if !missing.is_empty() {
                findings.push(Diagnostic {
                    path: file.path.to_string(),
                    line: file.line(k),
                    rule: RULE,
                    message: format!(
                        "match dispatches on {} but never names variant(s) {}; \
                         they are unreachable or fall into a catch-all arm — \
                         name every variant so new wire messages cannot be \
                         half-wired",
                        def.name,
                        missing.join(", "),
                    ),
                });
            }
        }
    }
    findings
}

/// The set of `Enum::Variant` names mentioned anywhere in the arm patterns
/// (or guards) of the match body `[from, to)`.
fn mentioned_variants<'a>(
    file: &SourceFile<'_>,
    def: &'a EnumDef,
    from: usize,
    to: usize,
) -> BTreeSet<&'a str> {
    let mut mentioned = BTreeSet::new();
    let mut t = from;
    while t < to {
        // Pattern (plus guard) runs to the `=>` at the body's top level.
        let arm_depth = file.depth_at(t);
        let pat_start = t;
        while t < to && !(file.s(t) == "=" && file.s(t + 1) == ">" && file.depth_at(t) == arm_depth)
        {
            t = file.skip_group(t);
        }
        for p in pat_start..t.min(to) {
            if file.s(p) == def.name && file.s(p + 1) == ":" && file.s(p + 2) == ":" {
                if let Some(v) = def.variants.iter().find(|v| *v == file.s(p + 3)) {
                    mentioned.insert(v.as_str());
                }
            }
        }
        if t >= to {
            break;
        }
        t += 2; // past `=>`
                // The arm value: a brace group, or an expression up to the `,`.
        if matches!(file.kind(t), Some(TokenKind::Open(Delim::Brace))) {
            t = file.skip_group(t);
            if file.s(t) == "," {
                t += 1;
            }
        } else {
            while t < to && file.s(t) != "," {
                t = file.skip_group(t);
            }
            t += 1;
        }
    }
    mentioned
}
