#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, repo hygiene lint.
# Any failing step fails the script.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> xtask-lint"
cargo run --quiet --bin xtask-lint

echo "==> wcc fuzz (smoke)"
./target/release/wcc fuzz --iters 25 --seed 1 --shrink

echo "==> bench trajectory (smoke)"
# Exits non-zero if the parallel grid diverges from the sequential run.
./target/release/trajectory --scale 100 --out /tmp/BENCH_replay.smoke.json

echo "verify: OK"
