//! Property tests of the server-side protocol state under arbitrary
//! operation interleavings.

use proptest::prelude::*;
use std::collections::HashSet;
use wcc_core::{ProtocolConfig, ProtocolKind, ServerConsistency};
use wcc_types::{ByteSize, ClientId, DocMeta, ServerId, SimDuration, SimTime, Url};

#[derive(Debug, Clone)]
enum Op {
    Get { doc: u32, client: u32, ims: bool },
    Modify { doc: u32 },
    Ack { doc: u32, client: u32 },
    Purge,
    ExpirePending,
    Recover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..6, 0u32..8, any::<bool>())
            .prop_map(|(doc, client, ims)| Op::Get { doc, client, ims }),
        2 => (0u32..6).prop_map(|doc| Op::Modify { doc }),
        2 => (0u32..6, 0u32..8).prop_map(|(doc, client)| Op::Ack { doc, client }),
        1 => Just(Op::Purge),
        1 => Just(Op::ExpirePending),
        1 => Just(Op::Recover),
    ]
}

fn kind_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Invalidation),
        Just(ProtocolKind::LeaseInvalidation),
        Just(ProtocolKind::TwoTierLease),
        Just(ProtocolKind::PiggybackInvalidation),
        Just(ProtocolKind::VolumeLease),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants that must hold after any operation sequence:
    /// * every pushed invalidation names a previously registered client;
    /// * acking everything pushed always completes the writes;
    /// * registered clients are always on the persistent ever-seen list
    ///   (their first registration caused exactly one disk write);
    /// * recipients lists are sorted and duplicate-free.
    #[test]
    fn server_state_invariants(
        kind in kind_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let server_id = ServerId::new(0);
        let cfg = ProtocolConfig::new(kind)
            .with_lease(SimDuration::from_secs(500))
            .with_volume_lease(SimDuration::from_secs(120));
        let mut s = ServerConsistency::new(&cfg, server_id);
        let mut now = SimTime::ZERO;
        let mut ever_registered: HashSet<ClientId> = HashSet::new();
        let mut outstanding: HashSet<(Url, ClientId)> = HashSet::new();
        let doc_meta = DocMeta::new(ByteSize::from_kib(4), SimTime::ZERO);

        for op in ops {
            now += SimDuration::from_secs(30);
            match op {
                Op::Get { doc, client, ims } => {
                    let url = Url::new(server_id, doc);
                    let client = ClientId::from_raw(client);
                    let validator = ims.then_some(SimTime::ZERO);
                    let grant = s.on_get(url, client, validator, doc_meta, now);
                    if grant.register {
                        ever_registered.insert(client);
                    }
                    // Any piggyback delivered resolves nothing from
                    // `outstanding` (those were never pushed).
                }
                Op::Modify { doc } => {
                    let url = Url::new(server_id, doc);
                    let recipients = s.on_modify(url, now);
                    // Sorted + unique.
                    let mut sorted = recipients.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(&sorted, &recipients);
                    for c in recipients {
                        prop_assert!(
                            ever_registered.contains(&c),
                            "pushed to unregistered client {c:?}"
                        );
                        outstanding.insert((url, c));
                    }
                }
                Op::Ack { doc, client } => {
                    let url = Url::new(server_id, doc);
                    let client = ClientId::from_raw(client);
                    s.on_inval_ack(url, client);
                    outstanding.remove(&(url, client));
                }
                Op::Purge => {
                    s.purge_expired_leases(now);
                }
                Op::ExpirePending => {
                    let dropped = s.expire_pending(now);
                    if kind != ProtocolKind::VolumeLease {
                        prop_assert_eq!(dropped, 0);
                    } else {
                        // Re-derive outstanding from the server's own view.
                        outstanding.retain(|(url, c)| s.pending_for(*url).contains(c));
                    }
                }
                Op::Recover => {
                    let sites = s.on_server_recover();
                    // Recovery notifies exactly the ever-seen sites.
                    let set: HashSet<ClientId> = sites.iter().copied().collect();
                    prop_assert_eq!(&set, &ever_registered);
                    outstanding.clear();
                }
            }
            // The server's pending view matches ours.
            for url in s.pending_urls() {
                for c in s.pending_for(url) {
                    prop_assert!(
                        outstanding.contains(&(url, c)),
                        "{kind}: server pends ({url}, {c}) we never saw pushed"
                    );
                }
            }
            for &(url, c) in &outstanding {
                prop_assert!(
                    s.pending_for(url).contains(&c),
                    "{kind}: lost pending ({url}, {c})"
                );
            }
            // Disk writes equal distinct registered clients.
            prop_assert_eq!(
                s.stats().recovery_disk_writes,
                ever_registered.len() as u64
            );
        }
        // Drain: acking everything completes all writes.
        for (url, c) in outstanding {
            s.on_inval_ack(url, c);
        }
        prop_assert!(s.writes_complete());
    }
}
