//! The actor abstraction: [`Node`] and its interaction context [`Ctx`].

use crate::arena::{Arena, Handle};
use crate::event::Rank;
use crate::metrics::NetStats;
use crate::net::{NetworkConfig, Reachability};
use crate::sim::{EngineEvent, ShardRoute};
use crate::EventQueue;
use wcc_types::{ByteSize, FxHashSet, NodeId, SimDuration, SimTime};

/// Handle identifying a pending timer, returned by [`Ctx::set_timer`] and
/// consumed by [`Ctx::cancel_timer`].
///
/// Packs `(owning node + 1, lane sequence)` so ids are unique across nodes
/// while being allocated from per-node counters (no global state — the
/// sharded engine allocates them concurrently without coordination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Bits reserved for the per-node sequence (2^40 events per node).
    const SEQ_BITS: u32 = 40;

    pub(crate) fn pack(node: NodeId, seq: u64) -> TimerId {
        debug_assert!(seq < 1 << Self::SEQ_BITS, "per-node sequence overflow");
        TimerId(((node.index() as u64 + 1) << Self::SEQ_BITS) | seq)
    }

    /// The index of the node that armed (and will fire) this timer.
    pub(crate) fn owner_index(self) -> usize {
        ((self.0 >> Self::SEQ_BITS) - 1) as usize
    }
}

/// A simulated actor: a pseudo-client, the pseudo-server, the accelerator,
/// the modifier process, the time coordinator…
///
/// Nodes never block; they react to message deliveries and timer firings and
/// emit new messages/timers through the [`Ctx`]. All methods have empty
/// default bodies except [`Node::on_message`], so simple nodes implement
/// only what they need.
///
/// `M` is the workspace-wide message payload type (the HTTP message model in
/// `wcc-proto` for the replay experiments).
///
/// Nodes must be [`Send`]: the sharded execution mode (see [`crate::shard`])
/// moves whole shards — nodes included — onto scoped worker threads. Nodes
/// are plain owned state machines, so this costs nothing in practice.
pub trait Node<M>: Send + 'static {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called when a timer armed with [`Ctx::set_timer`] fires. `token` is
    /// the caller-chosen discriminant.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, M>) {
        let _ = (token, ctx);
    }

    /// Called when the fault plan crashes this node. State is *retained*
    /// (the paper's proxies keep their disk cache across a crash); volatile
    /// fields should be cleared here.
    fn on_crash(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Called when the fault plan recovers this node. The paper's recovery
    /// actions (mark every entry questionable, send bulk invalidations) are
    /// implemented by the node in this hook.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

/// The interaction surface a [`Node`] sees while handling an event: the
/// clock, message sending, timers and CPU accounting.
///
/// A `Ctx` borrows the engine internals for the duration of one callback.
pub struct Ctx<'a, M> {
    pub(crate) self_id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) queue: &'a mut EventQueue<Handle>,
    pub(crate) arena: &'a mut Arena<EngineEvent<M>>,
    pub(crate) config: &'a NetworkConfig,
    pub(crate) reach: &'a Reachability,
    pub(crate) stats: &'a mut NetStats,
    pub(crate) cancelled: &'a mut FxHashSet<TimerId>,
    pub(crate) seq: &'a mut u64,
    pub(crate) busy_until: &'a mut SimTime,
    pub(crate) busy_accum: &'a mut SimDuration,
    pub(crate) route: Option<&'a mut ShardRoute<M>>,
}

impl<M> Ctx<'_, M> {
    /// The id of the node being called.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` of `size` bytes to `dst`, returning `true` if the message
    /// actually left this node.
    ///
    /// Delivery is best-effort, mirroring a packet on the wire: the message
    /// is silently dropped if a partition currently severs the link or if
    /// the destination is down *when the message arrives*. Reliability
    /// (TCP-style retry, as the paper uses for invalidations) is built by
    /// the protocols on top, with timers.
    pub fn send(&mut self, dst: NodeId, msg: M, size: ByteSize) -> bool {
        self.stats.record(size);
        if !self.reach.can_send(self.self_id, dst) {
            self.stats.record_dropped();
            return false;
        }
        let delay = self.config.link(self.self_id, dst).transfer_time(size);
        let at = self.now + delay;
        let rank = self.next_rank();
        let event = EngineEvent::Deliver {
            src: self.self_id,
            dst,
            msg,
        };
        match self.route.as_deref_mut() {
            // Under sharded execution a send to a foreign node goes into the
            // destination shard's outbox run; the barrier merges whole runs
            // into the owner's queue before the first window their arrival
            // times can fall into (arrival ≥ send + lookahead). Same-shard
            // sends short-circuit all of that and land in the local queue.
            Some(route) if route.shard_of[dst.as_usize()] != route.self_shard => {
                let shard = route.shard_of[dst.as_usize()] as usize;
                route.outboxes[shard].push((at, rank, event));
            }
            _ => {
                let handle = self.arena.alloc(event);
                self.queue.schedule_ranked(at, rank, handle);
            }
        }
        true
    }

    /// Arms a timer that fires on this node after `delay`, carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let rank = self.next_rank();
        let id = TimerId::pack(self.self_id, rank.seq);
        let handle = self.arena.alloc(EngineEvent::Timer {
            node: self.self_id,
            token,
            id,
        });
        self.queue.schedule_ranked(self.now + delay, rank, handle);
        id
    }

    /// Allocates the next `(lane, seq)` key on this node's lane.
    fn next_rank(&mut self) -> Rank {
        let rank = Rank::node(self.self_id.index(), *self.seq);
        *self.seq += 1;
        rank
    }

    /// Cancels a pending timer. Cancelling an already-fired or foreign timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id);
    }

    /// Accounts `amount` of CPU work to this node.
    ///
    /// The node is modelled as a single-core server: while it is busy, later
    /// message deliveries are deferred until the busy period ends (timers
    /// still fire on schedule). Accumulated busy time divided by wall time
    /// is the node's CPU utilisation — the simulator's analogue of the
    /// paper's `iostat` CPU numbers.
    pub fn consume(&mut self, amount: SimDuration) {
        let start = (*self.busy_until).max(self.now);
        *self.busy_until = start + amount;
        *self.busy_accum += amount;
    }

    /// The instant until which this node is busy with previously consumed
    /// CPU work.
    pub fn busy_until(&self) -> SimTime {
        *self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, Simulation};

    /// A node that consumes CPU per message and records when each message
    /// was processed.
    struct Worker {
        cost: SimDuration,
        handled_at: Vec<SimTime>,
    }

    impl Node<u32> for Worker {
        fn on_message(&mut self, _from: NodeId, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.handled_at.push(ctx.now());
            ctx.consume(self.cost);
        }
    }

    struct Burst {
        dst: Option<NodeId>,
        n: u32,
    }

    impl Node<u32> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..self.n {
                ctx.send(self.dst.unwrap(), i, ByteSize::from_bytes(10));
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}
    }

    #[test]
    fn busy_node_defers_deliveries() {
        let mut sim = Simulation::new(NetworkConfig::lan());
        let burst = sim.add_node(Burst { dst: None, n: 3 });
        let worker = sim.add_node(Worker {
            cost: SimDuration::from_millis(10),
            handled_at: Vec::new(),
        });
        sim.node_mut::<Burst>(burst).dst = Some(worker);
        sim.run_until_idle();
        let times = &sim.node_ref::<Worker>(worker).handled_at;
        assert_eq!(times.len(), 3);
        // Messages arrive essentially together, but processing is serialised
        // by the 10 ms CPU cost.
        assert!(times[1] >= times[0] + SimDuration::from_millis(10));
        assert!(times[2] >= times[1] + SimDuration::from_millis(10));
        // Busy time accumulated: 30 ms.
        assert_eq!(sim.busy_time(worker), SimDuration::from_millis(30));
    }

    struct TimerNode {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Node<u32> for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(SimDuration::from_secs(1), 1);
            let second = ctx.set_timer(SimDuration::from_secs(2), 2);
            ctx.set_timer(SimDuration::from_secs(3), 3);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_, u32>) {
            self.fired.push(token);
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut sim = Simulation::new(NetworkConfig::lan());
        let n = sim.add_node(TimerNode {
            fired: Vec::new(),
            cancel_second: true,
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<TimerNode>(n).fired, vec![1, 3]);
    }
}
