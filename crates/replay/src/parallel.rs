//! Deterministic fan-out: run independent experiments on worker threads.
//!
//! The paper's evaluation is a grid of *independent* replays — every cell
//! of Tables 3–5 is one `(trace, protocol, lifetime)` triple, and each
//! replay is a pure function of its [`ExperimentConfig`] (the simulator is
//! single-threaded and fully seeded). That makes the grid embarrassingly
//! parallel *without* giving up reproducibility: this module distributes
//! configs across scoped worker threads and reassembles the reports **in
//! submission order**, so the output of [`run_batch`] is byte-identical to
//! running the same configs sequentially — a property `tests/determinism.rs`
//! and CI enforce.
//!
//! The worker count comes from, in priority order: the explicit `jobs`
//! argument, the `WCC_JOBS` environment variable, and finally the number of
//! available cores. `--jobs 1` (or `WCC_JOBS=1`) degenerates to a plain
//! sequential loop on the calling thread, with no pool overhead.
//!
//! # Examples
//!
//! ```
//! use wcc_replay::{parallel, ExperimentConfig};
//! use wcc_core::ProtocolKind;
//! use wcc_traces::TraceSpec;
//!
//! let configs: Vec<ExperimentConfig> = ProtocolKind::PAPER_TRIO
//!     .iter()
//!     .map(|&kind| {
//!         ExperimentConfig::builder(TraceSpec::epa().scaled_down(300))
//!             .protocol(kind)
//!             .seed(1)
//!             .build()
//!     })
//!     .collect();
//! let reports = parallel::run_batch(&configs, Some(2));
//! // Reports come back in submission order regardless of which worker
//! // finished first.
//! assert_eq!(reports.len(), 3);
//! for (cfg, report) in configs.iter().zip(&reports) {
//!     assert_eq!(report.protocol, cfg.protocol.kind);
//! }
//! ```

use crate::experiment::{materialise, run_experiment, run_on, ExperimentConfig, ReplayReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use wcc_core::{ProtocolConfig, ProtocolKind};

/// Resolves the worker count for a fan-out.
///
/// Priority: explicit `jobs` (CLI `--jobs`) → the `WCC_JOBS` environment
/// variable → the machine's available parallelism. Zero (from either
/// source) and unparsable `WCC_JOBS` values fall through to the next
/// source; the result is always at least 1.
pub fn effective_jobs(jobs: Option<usize>) -> usize {
    if let Some(n) = jobs {
        if n > 0 {
            return n;
        }
    }
    if let Ok(var) = std::env::var("WCC_JOBS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the engine shard count for a single replay.
///
/// Priority: explicit `shards` (CLI `--shards`) → the `WCC_SHARDS`
/// environment variable → 1 (sequential). Unlike [`effective_jobs`] this
/// does *not* default to the core count: sharding one replay competes with
/// the batch-level fan-out for the same cores, so it is opt-in.
pub fn effective_shards(shards: Option<usize>) -> usize {
    if let Some(n) = shards {
        if n > 0 {
            return n;
        }
    }
    if let Ok(var) = std::env::var("WCC_SHARDS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// The host's core count (`available_parallelism`, floor 1).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `--shards auto` resolution: `min(requested, host_cores)`, never
/// below 1.
///
/// Engine shards run on worker threads, so shards beyond the cores that
/// can actually execute them are pure overhead — the per-window barrier
/// tax stays while the parallelism is fictional (two shards on the 1-core
/// CI container measured ~3× the sequential wall time). Explicit
/// `--shards N` is never capped: oversubscribed counts remain valid for
/// byte-identity testing, just not for speed.
pub fn auto_shards(requested: usize) -> usize {
    requested.min(host_cores()).max(1)
}

/// Applies `f` to every item on `jobs` worker threads, returning the
/// results **in input order**.
///
/// Work is handed out through a shared atomic cursor, so threads that draw
/// long items simply claim fewer of them; each result is written back into
/// its input slot, which is what makes the output order independent of
/// scheduling. With `jobs <= 1` (or one item) this is a plain `map` on the
/// calling thread.
///
/// `f` must be a pure function of the item for the "byte-identical to
/// sequential" guarantee to hold — true for experiment replays, which
/// depend only on the config and its embedded seed.
pub fn map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let workers = jobs.min(items.len());
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        return produced;
                    }
                    produced.push((idx, f(&items[idx])));
                }
            }));
        }
        for handle in handles {
            let produced = match handle.join() {
                Ok(p) => p,
                // A worker panicked (an assertion inside a replay): re-raise
                // on the caller so the failure is not silently swallowed.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (idx, result) in produced {
                slots[idx] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// Runs a batch of experiments, fanned out over [`effective_jobs`]`(jobs)`
/// workers, returning reports in submission order — byte-identical to
/// calling [`run_experiment`] on each config in turn.
pub fn run_batch(configs: &[ExperimentConfig], jobs: Option<usize>) -> Vec<ReplayReport> {
    map_indexed(configs, effective_jobs(jobs), run_experiment)
}

/// The fan-out form of [`crate::run_trio`]: the three protocols of one
/// Tables 3/4 block run concurrently over one shared materialised workload.
///
/// Reports come back in the paper's column order (adaptive TTL, polling,
/// invalidation) and are byte-identical at any job count.
pub fn run_trio_jobs(base: &ExperimentConfig, jobs: Option<usize>) -> [ReplayReport; 3] {
    let (trace, mods) = materialise(base);
    let configs: [ExperimentConfig; 3] = ProtocolKind::PAPER_TRIO.map(|kind| {
        let mut cfg = base.clone();
        cfg.protocol = ProtocolConfig::new(kind);
        cfg
    });
    let mut reports = map_indexed(&configs, effective_jobs(jobs), |cfg| {
        run_on(cfg, &trace, &mods)
    });
    // Keep the paper's column order: TTL, polling, invalidation.
    reports.sort_by_key(|r| {
        ProtocolKind::PAPER_TRIO
            .iter()
            .position(|&k| k == r.protocol)
            .expect("trio protocol")
    });
    reports.try_into().expect("exactly three trio reports")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_core::ProtocolKind;
    use wcc_traces::TraceSpec;

    #[test]
    fn explicit_jobs_wins_and_zero_falls_through() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(Some(0)) >= 1);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn explicit_shards_wins_and_default_is_sequential() {
        assert_eq!(effective_shards(Some(4)), 4);
        // Zero falls through; without WCC_SHARDS the default is 1.
        // (Environment-variable resolution is covered by the CLI tests.)
        assert!(effective_shards(Some(0)) >= 1);
    }

    #[test]
    fn auto_shards_caps_at_host_cores() {
        let cores = host_cores();
        assert!(cores >= 1);
        // A request within the core budget passes through untouched; a
        // request beyond it is capped — never oversubscribed, never 0.
        assert_eq!(auto_shards(1), 1);
        assert_eq!(auto_shards(cores), cores);
        assert_eq!(auto_shards(cores + 7), cores);
        assert_eq!(auto_shards(0), 1);
    }

    #[test]
    fn map_indexed_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        // Uneven per-item cost to force out-of-order completion.
        let square = |&x: &u64| {
            if x % 5 == 0 {
                std::thread::yield_now();
            }
            x * x
        };
        for jobs in [1, 2, 4, 8] {
            let out = map_indexed(&items, jobs, square);
            assert_eq!(out, items.iter().map(square).collect::<Vec<_>>());
        }
    }

    #[test]
    fn batch_matches_sequential_run() {
        let configs: Vec<ExperimentConfig> = [1u64, 2, 3, 4]
            .iter()
            .map(|&seed| {
                ExperimentConfig::builder(TraceSpec::epa().scaled_down(400))
                    .protocol(ProtocolKind::Invalidation)
                    .seed(seed)
                    .build()
            })
            .collect();
        let sequential = run_batch(&configs, Some(1));
        let parallel = run_batch(&configs, Some(4));
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(format!("{s:?}"), format!("{p:?}"));
        }
    }
}
