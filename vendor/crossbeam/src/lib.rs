//! Offline vendor shim for `crossbeam`.
//!
//! Only the `channel` module's unbounded MPSC surface is provided, backed
//! by `std::sync::mpsc`. Unlike real crossbeam the receiver is
//! single-consumer, which is how this workspace uses it (one dedicated
//! writer thread per receiver).

pub mod channel {
    use std::fmt;
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending half has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// The sending half disconnected.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Queues `value`, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
