//! Shared per-connection machinery for the readiness event loops.
//!
//! Each node (origin, proxy, parent) runs one reactor thread built from
//! these parts: a slab of non-blocking connections keyed by generation
//! tokens, each with a compacting receive buffer (frames decode from it
//! in place via `wcc_proto::zero::decode_frame` — the zero-copy path) and
//! a send buffer that absorbs partial writes. Write interest is armed
//! only while output is queued, so an idle keep-alive connection costs
//! one registered fd and two empty buffers.
//!
//! This file is on the hot-loop allocation lint list: everything here
//! runs once per readiness event at 10k-connection scale.

use std::io;
use std::net::{TcpListener, TcpStream};
use wcc_reactor::{Interest, Poller, RecvBuf, SendBuf};

/// Token of the node's primary listener.
pub(crate) const TOK_LISTENER: u64 = 0;
/// Token of the node's secondary listener (the proxy's metrics port).
pub(crate) const TOK_LISTENER2: u64 = 1;
/// Token of the reactor's waker pipe.
pub(crate) const TOK_WAKER: u64 = 2;
/// First token handed to accepted connections; everything below is a
/// fixed singleton.
pub(crate) const FIRST_CONN: u64 = 16;

/// One non-blocking connection plus its node-specific tag.
pub(crate) struct Conn<T> {
    pub stream: TcpStream,
    pub rbuf: RecvBuf,
    pub sbuf: SendBuf,
    /// Peer sent EOF; remaining output still flushes.
    pub eof: bool,
    /// Currently registered with write interest.
    pub want_write: bool,
    /// Close once the send buffer drains (one-shot replies, shutdown).
    pub close_after_flush: bool,
    pub tag: T,
}

impl<T> Conn<T> {
    /// Reads everything currently available; sets [`Conn::eof`] on peer
    /// close. `Ok(())` means "no fatal error" — the caller decodes next.
    pub fn read_ready(&mut self) -> io::Result<()> {
        loop {
            match self.rbuf.fill(&mut self.stream) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Connection slab with generation-checked tokens.
///
/// Tokens are `(generation << 32) | (index + FIRST_CONN)`: a completion
/// or queued push addressed to a connection that was closed and whose
/// slot was reused simply fails the generation check and is dropped.
pub(crate) struct Conns<T> {
    slots: Vec<Option<Conn<T>>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

fn token_of(idx: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | (idx as u64 + FIRST_CONN)
}

fn index_of(token: u64) -> Option<(usize, u32)> {
    let low = token & 0xffff_ffff;
    if low < FIRST_CONN {
        return None;
    }
    Some(((low - FIRST_CONN) as usize, (token >> 32) as u32))
}

impl<T> Conns<T> {
    pub fn with_capacity(cap: usize) -> Conns<T> {
        Conns {
            slots: Vec::with_capacity(cap),
            gens: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Registers an accepted stream (made non-blocking here) and returns
    /// its token.
    pub fn insert(&mut self, poller: &mut Poller, stream: TcpStream, tag: T) -> io::Result<u64> {
        stream.set_nonblocking(true)?;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let token = token_of(idx, self.gens[idx]);
        {
            use std::os::fd::AsRawFd;
            if let Err(e) = poller.add(stream.as_raw_fd(), token, Interest::READ) {
                self.free.push(idx);
                return Err(e);
            }
        }
        self.slots[idx] = Some(Conn {
            stream,
            rbuf: RecvBuf::new(),
            sbuf: SendBuf::new(),
            eof: false,
            want_write: false,
            close_after_flush: false,
            tag,
        });
        self.live += 1;
        Ok(token)
    }

    pub fn get_mut(&mut self, token: u64) -> Option<&mut Conn<T>> {
        let (idx, gen) = index_of(token)?;
        if self.gens.get(idx).copied() != Some(gen) {
            return None;
        }
        self.slots.get_mut(idx)?.as_mut()
    }

    /// Deregisters and drops a connection. Safe to call with a stale
    /// token (no-op).
    pub fn close(&mut self, poller: &mut Poller, token: u64) {
        let Some((idx, gen)) = index_of(token) else {
            return;
        };
        if self.gens.get(idx).copied() != Some(gen) {
            return;
        }
        if let Some(conn) = self.slots[idx].take() {
            use std::os::fd::AsRawFd;
            let _ = poller.delete(conn.stream.as_raw_fd());
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.live -= 1;
        }
    }

    /// Flushes queued output and keeps the poller's write interest in
    /// sync. Returns `false` if the connection was closed (fatal write
    /// error, or drained with `close_after_flush`).
    pub fn flush(&mut self, poller: &mut Poller, token: u64) -> bool {
        use std::os::fd::AsRawFd;
        let Some(conn) = self.get_mut(token) else {
            return false;
        };
        match conn.sbuf.flush(&mut conn.stream) {
            Ok(true) => {
                if conn.close_after_flush {
                    self.close(poller, token);
                    return false;
                }
                if conn.want_write {
                    conn.want_write = false;
                    let _ = poller.modify(conn.stream.as_raw_fd(), token, Interest::READ);
                }
                true
            }
            Ok(false) => {
                if !conn.want_write {
                    conn.want_write = true;
                    let _ = poller.modify(conn.stream.as_raw_fd(), token, Interest::READ_WRITE);
                }
                true
            }
            Err(_) => {
                self.close(poller, token);
                false
            }
        }
    }

    /// Collects every live token into `out` (cleared first); used by
    /// shutdown and broadcast paths, which are not per-event hot.
    pub fn live_tokens(&self, out: &mut Vec<u64>) {
        out.clear();
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.is_some() {
                out.push(token_of(idx, self.gens[idx]));
            }
        }
    }
}

/// Accepts every pending connection on a non-blocking listener.
/// Connections that cannot be accepted or registered (fd exhaustion)
/// are counted into `dropped`.
pub(crate) fn accept_all<T>(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut Conns<T>,
    mut make_tag: impl FnMut() -> T,
    dropped: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if conns.insert(poller, stream, make_tag()).is_err() {
                    *dropped += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                *dropped += 1;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn stale_tokens_are_ignored_after_reuse() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("poller");
        let mut conns: Conns<u8> = Conns::with_capacity(4);

        let c1 = TcpStream::connect(addr).expect("connect");
        let (s1, _) = listener.accept().expect("accept");
        let tok1 = conns.insert(&mut poller, s1, 1).expect("insert");
        conns.close(&mut poller, tok1);
        assert_eq!(conns.len(), 0);

        // The slot is reused with a bumped generation: the old token no
        // longer resolves.
        let c2 = TcpStream::connect(addr).expect("connect");
        let (s2, _) = listener.accept().expect("accept");
        let tok2 = conns.insert(&mut poller, s2, 2).expect("insert");
        assert_ne!(tok1, tok2);
        assert!(conns.get_mut(tok1).is_none());
        assert_eq!(conns.get_mut(tok2).map(|c| c.tag), Some(2));
        drop((c1, c2));
    }

    #[test]
    fn flush_arms_and_disarms_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("poller");
        let mut conns: Conns<()> = Conns::with_capacity(1);

        let mut peer = TcpStream::connect(addr).expect("connect");
        let (srv, _) = listener.accept().expect("accept");
        let tok = conns.insert(&mut poller, srv, ()).expect("insert");

        // Queue more than the socket buffer absorbs in one write so the
        // partial-write path arms write interest.
        let chunk = [0x5au8; 1 << 20];
        {
            let conn = conns.get_mut(tok).expect("conn");
            conn.sbuf.push_bytes(&chunk);
            conn.sbuf.push_bytes(&chunk);
        }
        assert!(conns.flush(&mut poller, tok));
        let armed = conns.get_mut(tok).expect("conn").want_write;

        // Drain the peer until everything went through.
        peer.set_nonblocking(true).expect("nonblocking");
        let mut sink = [0u8; 65536];
        let mut received = 0usize;
        let mut events = Vec::with_capacity(8);
        while received < 2 * chunk.len() {
            match peer.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => received += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    poller
                        .wait(&mut events, Some(std::time::Duration::from_millis(50)))
                        .expect("wait");
                    if !conns.flush(&mut poller, tok) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        assert_eq!(received, 2 * chunk.len());
        let conn = conns.get_mut(tok).expect("conn");
        assert!(conn.sbuf.is_empty());
        assert!(armed || !conn.want_write, "interest bookkeeping diverged");

        // close_after_flush on a drained buffer closes immediately.
        conns.get_mut(tok).expect("conn").close_after_flush = true;
        assert!(!conns.flush(&mut poller, tok));
        assert_eq!(conns.len(), 0);
        let _ = peer.flush();
    }
}
