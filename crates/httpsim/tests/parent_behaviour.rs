//! Node-level behaviour of the hierarchy parent, pinned with handcrafted
//! single-document workloads.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{CacheSharing, Deployment, DeploymentOptions, Topology};
use wcc_traces::{ModSchedule, Modification, Trace, TraceRecord};
use wcc_types::{ByteSize, ClientId, ServerId, SimDuration, SimTime, Url};

fn record(secs: u64, client: u32, doc: u32) -> TraceRecord {
    TraceRecord {
        at: SimTime::from_secs(secs),
        client: ClientId::from_raw(client),
        url: Url::new(ServerId::new(0), doc),
    }
}

fn build(records: Vec<TraceRecord>, mods: Vec<Modification>) -> Deployment {
    let trace = Trace {
        name: "handcrafted".into(),
        server: ServerId::new(0),
        duration: SimDuration::from_hours(2),
        doc_sizes: vec![ByteSize::from_kib(8); 4],
        records,
    };
    let schedule = ModSchedule::from_modifications(4, mods);
    let mut opts = DeploymentOptions::default();
    opts.num_proxies = 2;
    opts.topology = Topology::Hierarchy;
    opts.sharing = CacheSharing::SharedPerProxy;
    Deployment::build(
        &trace,
        &schedule,
        &ProtocolConfig::new(ProtocolKind::Invalidation),
        opts,
    )
}

#[test]
fn second_child_is_served_by_the_parent() {
    // Client 0 → partition 0; client 1 → partition 1. Same document, ten
    // minutes apart (separate lock-step windows).
    let mut d = build(vec![record(600, 0, 0), record(1200, 1, 0)], vec![]);
    d.run();
    let parent = d.parent().expect("hierarchy parent");
    assert_eq!(parent.counters().child_requests, 2);
    assert_eq!(parent.counters().upstream_gets, 1, "one compulsory miss");
    assert_eq!(
        parent.counters().parent_hits,
        1,
        "second child hits the parent"
    );
    let r = d.collect();
    assert_eq!(r.replies_200, 1, "origin transferred the body once");
    assert_eq!(r.final_violations, 0);
}

#[test]
fn invalidation_relays_only_to_copy_holders() {
    // Both children cache doc 0; only child of partition 0 caches doc 1.
    let mut d = build(
        vec![
            record(600, 0, 0),
            record(1200, 1, 0),
            record(1800, 0, 1),
            // doc 0 modified at t=2400; doc 1 modified at t=3000.
            record(3600, 0, 0), // refetch after invalidation
        ],
        vec![
            Modification {
                at: SimTime::from_secs(2400),
                doc: 0,
            },
            Modification {
                at: SimTime::from_secs(3000),
                doc: 1,
            },
        ],
    );
    d.run();
    let parent = d.parent().expect("parent");
    // doc 0 relay reaches both children; doc 1 relay reaches one.
    assert_eq!(parent.counters().invalidations_relayed, 3);
    let r = d.collect();
    // The origin itself sent exactly one INVALIDATE per modification (to
    // the parent).
    assert_eq!(r.invalidations - r.invalidation_retries, 2);
    assert_eq!(r.final_violations, 0);
    assert!(r.writes_complete);
    // The refetch observed the new version.
    assert_eq!(r.stale_hits, 0);
}

#[test]
fn parent_answers_stale_validator_from_its_own_cache() {
    // Child 0 fetches doc 0; the *parent's* copy stays fresh. Child 1 then
    // asks with an ancient validator — the parent serves a 200 from its own
    // cache without going upstream.
    let mut d = build(
        vec![record(600, 0, 0), record(1200, 1, 0), record(1800, 1, 0)],
        vec![],
    );
    d.run();
    let parent = d.parent().expect("parent");
    assert_eq!(
        parent.counters().upstream_gets + parent.counters().upstream_ims,
        1
    );
    let r = d.collect();
    // Child 1's second request is a pure child-cache hit (leased).
    assert_eq!(r.hits, 1);
    assert_eq!(r.requests, 3);
}

#[test]
fn child_hit_reports_flow_through_the_parent_meter() {
    // Child 0 hits its own cache repeatedly; after the invalidation the
    // dying copy's count rides ack → parent → (parent ack) → origin.
    let mut d = build(
        vec![
            record(600, 0, 0),
            record(1200, 0, 0), // child cache hit
            record(1500, 0, 0), // child cache hit
            record(3600, 0, 0), // refetch after the modification
        ],
        vec![Modification {
            at: SimTime::from_secs(2400),
            doc: 0,
        }],
    );
    d.run();
    let r = d.collect();
    assert_eq!(r.requests, 4);
    assert_eq!(r.hits, 2);
    // The two child-cache hits were reported back to the origin: they ride
    // the child's InvalAck to the parent, fold into the parent's counter,
    // and reach the origin on the parent's next upstream request.
    assert_eq!(
        r.metered_served + r.metered_reported,
        4,
        "all four views metered (served {} + reported {})",
        r.metered_served,
        r.metered_reported
    );
}
