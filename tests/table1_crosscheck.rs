//! Cross-validation of the analytical Table 1 interpreter against the full
//! discrete-event deployment: a single client viewing a single document
//! must produce identical message counts in both, for every protocol.
//!
//! Events are spaced ten minutes apart so each falls in its own five-minute
//! lock-step window, making the replay's interleaving identical to the
//! analytical (trace-order) one.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_core::analytical::{parse_stream, simulate, Event, TimedEvent};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{Deployment, DeploymentOptions};
use wcc_traces::{ModSchedule, Modification, Trace, TraceRecord};
use wcc_types::{ByteSize, ClientId, ServerId, SimDuration, Url};

/// Splits an `r`/`m` stream into the replay's trace + modifier schedule.
fn materialise(events: &[TimedEvent]) -> (Trace, ModSchedule) {
    let server = ServerId::new(0);
    let client = ClientId::from_raw(1);
    let url = Url::new(server, 0);
    let mut records = Vec::new();
    let mut mods = Vec::new();
    for ev in events {
        match ev.event {
            Event::Request => records.push(TraceRecord {
                at: ev.at,
                client,
                url,
            }),
            Event::Modify => mods.push(Modification { at: ev.at, doc: 0 }),
        }
    }
    let trace = Trace {
        name: "single-pair".into(),
        server,
        duration: SimDuration::from_secs(600 * (events.len() as u64 + 2)),
        doc_sizes: vec![ByteSize::from_kib(8)],
        records,
    };
    (trace, ModSchedule::from_modifications(1, mods))
}

fn crosscheck(stream: &str, kind: ProtocolKind) {
    let events = parse_stream(stream, 600);
    let cfg = ProtocolConfig::new(kind);
    let expected = simulate(&cfg, &events);

    let (trace, mods) = materialise(&events);
    let mut options = DeploymentOptions::default();
    options.num_proxies = 1;
    let mut deployment = Deployment::build(&trace, &mods, &cfg, options);
    deployment.run();
    let raw = deployment.collect();

    assert_eq!(raw.gets, expected.plain_gets, "{kind} {stream}: plain GETs");
    assert_eq!(raw.ims, expected.ims, "{kind} {stream}: IMS");
    assert_eq!(
        raw.replies_200, expected.file_transfers,
        "{kind} {stream}: transfers"
    );
    assert_eq!(
        raw.replies_304, expected.replies_304,
        "{kind} {stream}: 304s"
    );
    assert_eq!(
        raw.invalidations, expected.invalidations,
        "{kind} {stream}: invalidations"
    );
    assert_eq!(
        raw.stale_hits, expected.stale_serves,
        "{kind} {stream}: stale serves"
    );
    assert!(raw.finished);
}

#[test]
fn paper_example_stream_matches_for_all_protocols() {
    for kind in ProtocolKind::ALL {
        crosscheck("rrrmmmrrmrrrmmr", kind);
    }
}

#[test]
fn dense_modifications_match() {
    // The polling-friendly regime: modifications as often as requests.
    for kind in ProtocolKind::PAPER_TRIO {
        crosscheck("rmrmrmrmrmrmrm", kind);
    }
}

#[test]
fn rare_modifications_match() {
    // The invalidation-friendly regime.
    for kind in ProtocolKind::PAPER_TRIO {
        crosscheck("rrrrrrrmrrrrrrrrmrrrrrrr", kind);
    }
}

#[test]
fn no_modifications_match() {
    for kind in ProtocolKind::ALL {
        crosscheck("rrrrrrrrrrrr", kind);
    }
}

#[test]
fn leading_and_trailing_modifications_match() {
    for kind in ProtocolKind::ALL {
        crosscheck("mmrrrmm", kind);
        crosscheck("mr", kind);
        crosscheck("rm", kind);
    }
}

#[test]
fn pseudo_random_streams_match() {
    // Deterministic pseudo-random streams over a few seeds.
    for seed in 0u64..6 {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let stream: String = (0..40)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 4 == 0 {
                    'm'
                } else {
                    'r'
                }
            })
            .collect();
        for kind in ProtocolKind::PAPER_TRIO {
            crosscheck(&stream, kind);
        }
    }
}
