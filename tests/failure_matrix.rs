//! The §4 failure scenarios, run across the invalidation protocol family:
//! plain, lease-augmented and two-tier invalidation must all preserve
//! strong consistency through proxy crashes, server crashes and partitions.

use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::{
    partition_scenario, proxy_crash_scenario, server_crash_scenario,
    server_crash_under_partition_scenario, ExperimentConfig,
};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn cfg(kind: ProtocolKind) -> ExperimentConfig {
    ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(200))
        .protocol_config(ProtocolConfig::new(kind).with_lease(SimDuration::from_days(2)))
        .mean_lifetime(SimDuration::from_hours(3))
        .seed(41)
        .build()
}

fn inval_family() -> [ProtocolKind; 3] {
    [
        ProtocolKind::Invalidation,
        ProtocolKind::LeaseInvalidation,
        ProtocolKind::TwoTierLease,
    ]
}

#[test]
fn proxy_crash_matrix() {
    for kind in inval_family() {
        let out = proxy_crash_scenario(&cfg(kind), 0.3, 0.6);
        let r = &out.report.raw;
        assert!(r.finished, "{kind}");
        assert_eq!(r.final_violations, 0, "{kind}");
        assert_eq!(r.proxy_recoveries, 1, "{kind}");
    }
}

#[test]
fn server_crash_matrix() {
    for kind in inval_family() {
        let out = server_crash_scenario(&cfg(kind), 0.35, 0.55);
        let r = &out.report.raw;
        assert!(r.finished, "{kind}");
        assert_eq!(r.final_violations, 0, "{kind}");
        assert_eq!(r.bulk_invalidations, 4, "{kind}: one per proxy");
    }
}

#[test]
fn partition_matrix() {
    for kind in inval_family() {
        let out = partition_scenario(&cfg(kind), 0.3, 0.7);
        let r = &out.report.raw;
        assert!(r.finished, "{kind}");
        assert_eq!(r.final_violations, 0, "{kind}");
        assert!(r.writes_complete || r.gave_up == 0, "{kind}");
    }
}

#[test]
fn server_recovery_bulk_invalidation_survives_partition() {
    // Fuzzer regression: the server recovers while still partitioned from
    // proxy 0, so its recovery-time bulk INVALIDATE is lost in transit. The
    // origin must keep retrying until the proxy acks; no promised-fresh
    // stale entry may survive to the end of the run.
    for kind in inval_family() {
        let out = server_crash_under_partition_scenario(&cfg(kind), 0.25, 0.65);
        let r = &out.report.raw;
        assert!(r.finished, "{kind}");
        assert_eq!(r.final_violations, 0, "{kind}");
        assert!(
            r.bulk_invalidations > 4,
            "{kind}: the partitioned proxy's bulk INVALIDATE must be \
             retried, not fire-and-forget (sent {})",
            r.bulk_invalidations
        );
    }
}

#[test]
fn weak_protocols_survive_failures_too() {
    // TTL and polling have no invalidation machinery, but the replay must
    // still drain through crashes (timeout + retransmit does the work).
    for kind in [ProtocolKind::AdaptiveTtl, ProtocolKind::PollEveryTime] {
        let out = server_crash_scenario(&cfg(kind), 0.35, 0.55);
        assert!(out.report.raw.finished, "{kind}");
        // No site lists → no bulk invalidations on recovery.
        assert_eq!(out.report.raw.bulk_invalidations, 0, "{kind}");
    }
}
