//! Adaptive TTL's weak-consistency behaviour under forced churn, and the
//! §3 relationship between staleness and bandwidth savings.

use wcc_core::{AdaptiveTtlConfig, ProtocolConfig, ProtocolKind};
use wcc_replay::{experiment::materialise, experiment::run_on, ExperimentConfig};
use wcc_traces::{synthetic, TraceSpec};
use wcc_types::SimDuration;

fn churny_base() -> ExperimentConfig {
    ExperimentConfig::builder(TraceSpec::sask().scaled_down(80))
        .mean_lifetime(SimDuration::from_hours(8))
        .seed(29)
        .build()
}

#[test]
fn ttl_serves_stale_under_churn() {
    let mut cfg = churny_base();
    cfg.protocol = ProtocolConfig::new(ProtocolKind::AdaptiveTtl);
    let (trace, mods) = materialise(&cfg);
    // Steer half the re-reads into the two hours after a modification so the
    // churn actually lands on cached copies (the raw synthetic trace rarely
    // re-reads a document soon enough after its write to observe staleness).
    let trace =
        synthetic::with_modification_interest(&trace, &mods, 0.5, SimDuration::from_hours(2), 5);
    let report = run_on(&cfg, &trace, &mods);
    assert!(
        report.raw.stale_hits > 0,
        "high churn + 10% TTLs must produce stale hits"
    );
}

#[test]
fn larger_ttl_threshold_trades_staleness_for_traffic() {
    // Sweep the Alex threshold: more trust → fewer validations (messages),
    // more stale hits. The trend must be monotone-ish across the sweep.
    let base = churny_base();
    let (trace, mods) = materialise(&base);
    let mut results = Vec::new();
    for threshold in [0.01, 0.1, 0.5, 2.0] {
        let mut cfg = base.clone();
        cfg.protocol =
            ProtocolConfig::new(ProtocolKind::AdaptiveTtl).with_adaptive_ttl(AdaptiveTtlConfig {
                threshold,
                floor: SimDuration::from_secs(30),
                cap: SimDuration::from_days(30),
            });
        let r = run_on(&cfg, &trace, &mods);
        results.push((threshold, r.raw.ims, r.raw.stale_hits));
    }
    for pair in results.windows(2) {
        let (t0, ims0, stale0) = pair[0];
        let (t1, ims1, stale1) = pair[1];
        assert!(
            ims1 <= ims0,
            "threshold {t0}→{t1}: validations should not increase ({ims0}→{ims1})"
        );
        assert!(
            stale1 >= stale0,
            "threshold {t0}→{t1}: staleness should not decrease ({stale0}→{stale1})"
        );
    }
    // The extremes actually separate (the sweep is not degenerate).
    assert!(results.first().expect("nonempty").2 < results.last().expect("nonempty").2);
}

#[test]
fn ttl_bandwidth_saving_equals_skipped_validations() {
    // §3: TTL saves *file transfers* over polling only via stale hits; its
    // transfer count can never exceed polling's.
    let base = churny_base();
    let (trace, mods) = materialise(&base);
    let mut ttl_cfg = base.clone();
    ttl_cfg.protocol = ProtocolConfig::new(ProtocolKind::AdaptiveTtl);
    let mut poll_cfg = base.clone();
    poll_cfg.protocol = ProtocolConfig::new(ProtocolKind::PollEveryTime);
    let ttl = run_on(&ttl_cfg, &trace, &mods);
    let poll = run_on(&poll_cfg, &trace, &mods);
    assert!(ttl.raw.replies_200 <= poll.raw.replies_200);
    assert!(ttl.raw.total_bytes <= poll.raw.total_bytes);
    // And TTL always uses fewer control messages than polling.
    assert!(ttl.raw.ims < poll.raw.ims);
}

#[test]
fn strong_protocols_immune_to_the_same_churn() {
    for kind in [
        ProtocolKind::PollEveryTime,
        ProtocolKind::Invalidation,
        ProtocolKind::LeaseInvalidation,
    ] {
        let mut cfg = churny_base();
        cfg.protocol = ProtocolConfig::new(kind).with_lease(SimDuration::from_days(1));
        cfg.options.audit = true;
        let (trace, mods) = materialise(&cfg);
        let r = run_on(&cfg, &trace, &mods);
        // `stale_hits` compares served versions against *trace time*, so it
        // also counts serves that race an in-flight invalidation — legal
        // under the paper's semantics, where a write completes only once
        // every registered site has acknowledged. The auditor applies the
        // delivery-aware definition: no serve after the invalidation for a
        // newer version reached that client.
        let audit = r.audit.as_ref().expect("audit was enabled");
        assert!(audit.is_clean(), "{kind}: {audit}");
        assert_eq!(r.raw.final_violations, 0, "{kind}");
    }
}
