#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, repo hygiene lint.
# Any failing step fails the script.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> xtask-lint"
cargo run --quiet --bin xtask-lint

echo "==> wcc fuzz (smoke)"
./target/release/wcc fuzz --iters 25 --seed 1 --shrink

echo "verify: OK"
