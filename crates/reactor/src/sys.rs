//! The `unsafe` floor of the reactor: raw readiness syscalls.
//!
//! Linux gets `epoll` (the only backend exercised by CI and the reference
//! container); every other Unix falls back to `poll(2)` with the same
//! [`Poller`] surface. Both bind the libc symbols `std` already links, so
//! nothing external is pulled in. All other file-descriptor I/O in the
//! workspace stays on safe `std` types — this module never reads or
//! writes sockets.

use std::io::{self, PipeReader, PipeWriter, Read as _, Write as _};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a connection with queued output).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up, so a read observes the EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition; the owner should read to completion
    /// and close.
    pub error: bool,
}

/// Turns a wait timeout into the millisecond form both backends take:
/// `-1` blocks, `0` polls, and sub-millisecond waits round up so a short
/// deadline cannot busy-spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    /// `struct epoll_event`; packed on x86_64 (the kernel ABI), naturally
    /// aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered readiness over an `epoll` instance.
    pub struct Poller {
        epfd: i32,
        /// Kernel-filled event buffer, reused across waits.
        buf: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for Poller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Poller").field("epfd", &self.epfd).finish()
        }
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: Vec::with_capacity(1024),
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut flags = EPOLLRDHUP;
            if interest.readable {
                flags |= EPOLLIN;
            }
            if interest.writable {
                flags |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: flags,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` under `token`.
        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Re-arms `fd` with a new interest set.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the set (must precede closing the fd).
        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demanded a non-null event even for
            // DEL; passing one is harmless everywhere.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until readiness or `timeout` (`None` = forever), pushing
        /// events into `out` (cleared first). EINTR surfaces as zero
        /// events so the caller re-checks its shutdown/signal state.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            self.buf.clear();
            self.buf.resize(1024, EpollEvent { events: 0, data: 0 });
            let n = {
                // SAFETY: `buf` holds 1024 initialised entries; the kernel
                // writes at most `maxevents` of them.
                let rc = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), 1024, timeout_ms(timeout))
                };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                rc as usize
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let flags = ev.events;
                let token = ev.data;
                out.push(Event {
                    token,
                    readable: flags & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: flags & EPOLLOUT != 0,
                    error: flags & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed fallback with the same surface as the epoll
    /// backend; registrations live in user space.
    pub struct Poller {
        regs: Vec<(RawFd, u64, Interest)>,
        buf: Vec<PollFd>,
    }

    impl std::fmt::Debug for Poller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Poller")
                .field("registrations", &self.regs.len())
                .finish()
        }
    }

    impl Poller {
        /// Creates an empty registration set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                regs: Vec::with_capacity(64),
                buf: Vec::with_capacity(64),
            })
        }

        /// Registers `fd` under `token`.
        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.regs.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            self.regs.push((fd, token, interest));
            Ok(())
        }

        /// Re-arms `fd` with a new interest set.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.regs.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(reg) => {
                    reg.1 = token;
                    reg.2 = interest;
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        /// Removes `fd` from the set.
        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|(f, _, _)| *f != fd);
            if self.regs.len() == before {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            Ok(())
        }

        /// Blocks until readiness or `timeout` (`None` = forever).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            self.buf.clear();
            for (fd, _, interest) in &self.regs {
                let mut events = 0;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            // SAFETY: `buf` holds exactly `regs.len()` initialised entries.
            let rc = unsafe {
                poll(
                    self.buf.as_mut_ptr(),
                    self.buf.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, (_, token, _)) in self.buf.iter().zip(&self.regs) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    error: slot.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!("wcc-reactor needs a Unix host (epoll on Linux, poll elsewhere)");

pub use backend::Poller;

extern "C" {
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
#[cfg(target_os = "macos")]
const O_NONBLOCK: i32 = 0x4;
#[cfg(not(target_os = "macos"))]
const O_NONBLOCK: i32 = 0x800;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: i32 = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: i32 = 8;

/// The soft limit on open file descriptors for this process, if the
/// kernel will say. Harnesses that open thousands of sockets (the 10k
/// stress bench) use this to decide between in-process serving and
/// splitting client and daemon across processes.
pub fn max_open_files() -> Option<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: getrlimit writes the two-word struct we hand it.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc == 0 {
        Some(lim.rlim_cur)
    } else {
        None
    }
}

/// Puts a raw descriptor into non-blocking mode (`std`'s pipes expose no
/// `set_nonblocking`, unlike its sockets).
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with F_GETFL/F_SETFL takes no pointers.
    unsafe {
        let flags = fcntl(fd, F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Wakes a [`Poller::wait`] from another thread (or a signal handler's
/// sibling): a non-blocking self-pipe whose read end is registered like
/// any connection.
#[derive(Debug)]
pub struct Waker {
    rx: PipeReader,
    tx: PipeWriter,
}

/// The cross-thread half of a [`Waker`]: cheap to clone into whatever
/// needs to interrupt the loop (drop glue, signal forwarding, injected
/// work).
#[derive(Debug)]
pub struct WakeHandle {
    tx: PipeWriter,
}

impl Waker {
    /// Creates the pipe pair; both ends are non-blocking.
    pub fn new() -> io::Result<Waker> {
        let (rx, tx) = io::pipe()?;
        set_nonblocking(rx.as_raw_fd())?;
        set_nonblocking(tx.as_raw_fd())?;
        Ok(Waker { rx, tx })
    }

    /// Registers the read end under `token`.
    pub fn register(&self, poller: &mut Poller, token: u64) -> io::Result<()> {
        poller.add(self.rx.as_raw_fd(), token, Interest::READ)
    }

    /// A cloneable handle that wakes this waker's loop.
    ///
    /// # Errors
    ///
    /// Propagates the descriptor-duplication error.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: self.tx.try_clone()?,
        })
    }

    /// Consumes pending wake bytes so level-triggered polling settles.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl WakeHandle {
    /// Interrupts the target loop's `wait`. A full pipe means a wake is
    /// already pending, so `WouldBlock` is success.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn socket_readiness_and_interest_rearming() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .add(server.as_raw_fd(), 7, Interest::READ)
            .expect("add");

        // Idle connection with read interest: a short wait times out.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // Peer bytes arrive: readable fires.
        (&client).write_all(b"ping").expect("send");
        let mut readable = false;
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                readable = true;
                break;
            }
        }
        assert!(readable, "peer bytes never became readable");

        // Re-arm with write interest: an un-congested socket reports
        // writable immediately.
        poller
            .modify(server.as_raw_fd(), 7, Interest::READ_WRITE)
            .expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.delete(server.as_raw_fd()).expect("delete");
        drop(client);
    }

    #[test]
    fn waker_interrupts_wait_and_drains() {
        let mut poller = Poller::new().expect("poller");
        let waker = Waker::new().expect("waker");
        waker.register(&mut poller, 3).expect("register");
        let handle = waker.handle().expect("handle");

        let t = std::thread::spawn(move || {
            handle.wake();
            handle.wake();
        });
        let mut events = Vec::new();
        let mut woke = false;
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if events.iter().any(|e| e.token == 3 && e.readable) {
                woke = true;
                break;
            }
        }
        t.join().expect("join");
        assert!(woke, "wake never interrupted wait");
        waker.drain();
        // Level-triggered: once drained, the token stops firing.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 3));
    }
}
