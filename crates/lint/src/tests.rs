//! Rule-engine unit tests. The first half are the golden tests carried
//! over verbatim from the old substring engine (same inputs, same
//! verdicts); the rest cover the token-only rules.

use super::*;

fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
    scan_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn wall_clock_denied_everywhere_but_time_rs() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(rules_fired("crates/simnet/src/lib.rs", src), ["wall-clock"]);
    assert_eq!(rules_fired("crates/net/src/origin.rs", src), ["wall-clock"]);
    assert!(rules_fired("crates/types/src/time.rs", src).is_empty());
}

#[test]
fn wall_clock_allowed_in_the_trajectory_timer() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert!(rules_fired("crates/bench/src/trajectory.rs", src).is_empty());
    assert_eq!(
        rules_fired("crates/bench/src/bin/table3.rs", src),
        ["wall-clock"]
    );
}

#[test]
fn default_hashers_denied_on_the_hot_path() {
    let map = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    assert_eq!(
        rules_fired("crates/core/src/server.rs", map),
        ["hot-path-hasher"]
    );
    let import = "use std::collections::HashSet;\n";
    assert_eq!(
        rules_fired("crates/httpsim/src/coord.rs", import),
        ["hot-path-hasher"]
    );
    assert_eq!(
        rules_fired("crates/simnet/src/net.rs", map),
        ["hot-path-hasher"]
    );
    // Cold paths (trace parsing, the CLI, the proto decoder) may keep
    // the DoS-resistant default.
    assert!(rules_fired("crates/traces/src/summary.rs", map).is_empty());
    assert!(rules_fired("crates/proto/src/wire.rs", import).is_empty());
    // Fx aliases pass everywhere.
    let fx = "fn f() { let m = wcc_types::FxHashMap::<u32, u32>::default(); }\n";
    assert!(rules_fired("crates/core/src/server.rs", fx).is_empty());
    // Shadow models in #[cfg(test)] code are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(rules_fired("crates/core/src/sitelist.rs", test_src).is_empty());
}

#[test]
fn unwrap_denied_only_in_protocol_crates() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_fired("crates/core/src/server.rs", src), ["unwrap"]);
    assert_eq!(rules_fired("crates/proto/src/wire.rs", src), ["unwrap"]);
    assert_eq!(rules_fired("crates/cache/src/store.rs", src), ["unwrap"]);
    assert!(rules_fired("crates/httpsim/src/proxy.rs", src).is_empty());
    let expect = "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n";
    assert_eq!(rules_fired("crates/core/src/server.rs", expect), ["unwrap"]);
}

#[test]
fn sleep_denied_in_simulation_code_allowed_in_net() {
    let src = "fn f() { std::thread::sleep(d); }\n";
    assert_eq!(rules_fired("crates/core/src/server.rs", src), ["sleep"]);
    assert_eq!(rules_fired("src/bin/paper.rs", src), ["sleep"]);
    assert!(rules_fired("crates/net/src/tcp.rs", src).is_empty());
}

#[test]
fn allocating_url_path_denied_in_message_hot_crates() {
    let src = "fn f(u: wcc_types::Url) -> String { u.path() }\n";
    assert_eq!(
        rules_fired("crates/httpsim/src/proxy.rs", src),
        ["url-path-alloc"]
    );
    assert_eq!(
        rules_fired("crates/proto/src/wire.rs", src),
        ["url-path-alloc"]
    );
    assert_eq!(
        rules_fired("crates/obs/src/trace.rs", src),
        ["url-path-alloc"]
    );
    // The non-allocating forms pass.
    let ok = "fn f(u: wcc_types::Url, s: &mut String) { u.write_path(s).ok(); }\n";
    assert!(rules_fired("crates/httpsim/src/proxy.rs", ok).is_empty());
    let disp = "fn f(u: wcc_types::Url) { let _ = format!(\"{}\", u.path_display()); }\n";
    assert!(rules_fired("crates/proto/src/wire.rs", disp).is_empty());
    // Cold crates (CLI, traces, replay) may keep the convenience form.
    assert!(rules_fired("crates/replay/src/tables.rs", src).is_empty());
    assert!(rules_fired("src/bin/wcc.rs", src).is_empty());
}

#[test]
fn adhoc_atomic_counters_denied_in_the_tcp_prototype() {
    let src = "use std::sync::atomic::AtomicU64;\n";
    assert_eq!(
        rules_fired("crates/net/src/origin.rs", src),
        ["obs-registry"]
    );
    assert_eq!(
        rules_fired(
            "crates/net/src/proxy.rs",
            "static N: AtomicUsize = AtomicUsize::new(0);\n"
        ),
        ["obs-registry"]
    );
    // Control-plane flags (AtomicBool/AtomicU32) are not counters.
    let flags = "use std::sync::atomic::{AtomicBool, AtomicU32};\n";
    assert!(rules_fired("crates/net/src/origin.rs", flags).is_empty());
    // Other crates may use atomics (e.g. the fan-out pool's internals).
    assert!(rules_fired("crates/replay/src/parallel.rs", src).is_empty());
}

#[test]
fn todo_denied_everywhere_even_in_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { todo!() }\n}\n";
    let d = scan_source("crates/net/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "todo");
    assert_eq!(d[0].line, 3);
    assert_eq!(
        rules_fired("crates/traces/src/lib.rs", "fn g() { unimplemented!() }\n"),
        ["todo"]
    );
}

#[test]
fn cfg_test_items_are_skipped() {
    let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}
";
    assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn code_after_cfg_test_item_is_still_scanned() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
fn live(x: Option<u32>) -> u32 { x.unwrap() }
";
    let d = scan_source("crates/core/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 5);
}

#[test]
fn strings_and_comments_do_not_trigger() {
    let src = "\
// calls Instant::now() under the hood
/* and .unwrap() too,
   across lines */
fn f() -> &'static str { \"Instant::now() .unwrap() todo!\" }
/// Docs may say thread::sleep freely.
fn g() {}
";
    assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn char_literals_and_lifetimes_survive_stripping() {
    let src = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; q }\n";
    assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    // The lexer must not let a char literal swallow the rest of the line
    // as a string.
    let sneaky = "fn f() { let c = 'x'; Some(1).unwrap(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", sneaky), ["unwrap"]);
}

#[test]
fn inline_waiver_suppresses_one_line() {
    let src = "\
fn f() { Some(1).unwrap() } // xtask-lint: allow(unwrap)
fn g() { Some(1).unwrap() }
";
    let d = scan_source("crates/core/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 2);
    // The waiver is rule-specific.
    let wrong = "fn f() { Some(1).unwrap() } // xtask-lint: allow(sleep)\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", wrong), ["unwrap"]);
}

#[test]
fn diagnostics_carry_position_and_render() {
    let src = "fn a() {}\nfn f() { Some(1).unwrap(); }\n";
    let d = scan_source("crates/core/src/server.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 2);
    let rendered = d[0].to_string();
    assert!(rendered.starts_with("crates/core/src/server.rs:2: [unwrap]"));
}

// ---- token-only precision the old engine could not deliver ----

#[test]
fn raw_strings_and_macro_text_do_not_trigger() {
    let src = "fn f() -> &'static str { r#\"calls .unwrap() and Instant::now()\"# }\n";
    assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    // `.unwrap_or(…)` is not `.unwrap()`: token matching sees the
    // difference, substring matching on `.unwrap()` also did — but
    // `.expect_err(…)` vs `.expect(` only tokens get right.
    let or = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    assert!(scan_source("crates/core/src/lib.rs", or).is_empty());
}

#[test]
fn spaced_tokens_still_match() {
    // Formatting cannot hide a call from the token matcher.
    let src = "fn f(x: Option<u32>) -> u32 { x . unwrap ( ) }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src), ["unwrap"]);
}

// ---- map-iteration-order ----

#[test]
fn unordered_iteration_feeding_output_is_flagged() {
    // The acceptance demo: seed an unsorted HashMap iteration into
    // tables.rs and the lint names the exact line.
    let src = "\
struct Tables { rows: FxHashMap<u32, u64> }
impl Tables {
    fn render(&self, out: &mut String) {
        for (k, v) in self.rows.iter() {
            out.push_str(&format!(\"{k} {v}\\n\"));
        }
    }
}
";
    let d = scan_source("crates/replay/src/tables.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "map-iteration-order");
    assert_eq!(d[0].line, 4);
}

#[test]
fn commutative_accumulation_is_allowed() {
    let src = "\
struct S { m: FxHashMap<u32, u64> }
impl S {
    fn total(&self) -> u64 { self.m.values().sum() }
    fn biggest(&self) -> Option<u64> { self.m.values().copied().max() }
    fn busy(&self) -> usize { self.m.values().filter(|v| **v > 0).count() }
    fn mark(&mut self) {
        for v in self.m.values_mut() {
            if *v > 3 { *v += 1; }
        }
    }
}
";
    assert!(scan_source("crates/httpsim/src/parent.rs", src).is_empty());
}

#[test]
fn collect_then_sort_and_btree_collects_are_allowed() {
    let src = "\
struct S { m: FxHashMap<u32, u64>, other: FxHashSet<u32> }
impl S {
    fn sorted(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.m.keys().copied().collect();
        v.sort_unstable();
        v
    }
    fn tree(&self) -> BTreeMap<u32, u64> {
        self.m.iter().map(|(k, v)| (*k, *v)).collect()
    }
    fn turbo(&self) -> usize {
        self.m.keys().copied().collect::<BTreeSet<u32>>().len()
    }
    fn merge(&mut self, other: &mut FxHashSet<u32>) {
        self.other.extend(other.drain());
    }
}
";
    assert!(scan_source("crates/simnet/src/shard.rs", src).is_empty());
}

#[test]
fn unsorted_collect_and_escaping_iterators_are_flagged() {
    let src = "\
struct S { m: FxHashMap<u32, u64> }
impl S {
    fn leak(&self) -> Vec<u32> {
        let v: Vec<u32> = self.m.keys().copied().collect();
        v
    }
}
";
    let d = scan_source("crates/core/src/meter.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "map-iteration-order");
    // A bare `for` over the map with an order-recording body.
    let push = "\
fn f(m: &FxHashSet<u32>, out: &mut Vec<u32>) {
    for x in m {
        out.push(*x);
    }
}
";
    assert_eq!(
        rules_fired("crates/obs/src/registry.rs", push),
        ["map-iteration-order"]
    );
    // Out-of-scope crates may iterate freely (the trace parser sorts its
    // own outputs).
    assert!(scan_source("crates/traces/src/summary.rs", src).is_empty());
}

#[test]
fn btreemap_iteration_is_never_flagged() {
    let src = "\
struct S { m: BTreeMap<u32, u64> }
impl S {
    fn render(&self, out: &mut String) {
        for (k, v) in self.m.iter() {
            out.push_str(&format!(\"{k}={v}\"));
        }
    }
}
";
    assert!(scan_source("crates/obs/src/registry.rs", src).is_empty());
}

// ---- wire-exhaustiveness ----

const WIRE_ENUM: &str = "\
pub enum HttpMsg {
    Get(u32),
    Reply { status: u16 },
    Invalidate,
    Hello,
}
";

#[test]
fn dispatch_missing_a_variant_is_flagged_with_the_line() {
    let handler = "\
fn handle(msg: HttpMsg) {
    match msg {
        HttpMsg::Get(_) => on_get(),
        HttpMsg::Reply { .. } => on_reply(),
        other => ignore(other),
    }
}
";
    let files = vec![
        ("crates/proto/src/msg.rs".to_string(), WIRE_ENUM.to_string()),
        (
            "crates/httpsim/src/proxy.rs".to_string(),
            handler.to_string(),
        ),
    ];
    let d = scan_files(&files);
    assert_eq!(d.len(), 1, "diagnostics: {d:?}");
    assert_eq!(d[0].rule, "wire-exhaustiveness");
    assert_eq!(d[0].path, "crates/httpsim/src/proxy.rs");
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("Invalidate"));
    assert!(d[0].message.contains("Hello"));
}

#[test]
fn total_dispatch_passes_even_with_a_guard_catchall() {
    let handler = "\
fn handle(msg: HttpMsg) {
    match msg {
        HttpMsg::Get(n) if n > 0 => on_get(),
        HttpMsg::Get(_) | HttpMsg::Reply { .. } => fallback(),
        HttpMsg::Invalidate | HttpMsg::Hello => control(),
        _ => unreachable_guard_fallthrough(),
    }
}
";
    let files = vec![
        ("crates/proto/src/msg.rs".to_string(), WIRE_ENUM.to_string()),
        ("crates/net/src/origin.rs".to_string(), handler.to_string()),
    ];
    assert!(scan_files(&files).is_empty());
}

#[test]
fn single_variant_probes_and_reporting_crates_are_not_dispatch_sites() {
    let probe = "\
fn is_get(msg: &HttpMsg) -> bool {
    match msg {
        HttpMsg::Get(_) => true,
        _ => false,
    }
}
";
    let counting = "\
fn count(msg: &HttpMsg) -> u32 {
    match msg {
        HttpMsg::Get(_) => 1,
        HttpMsg::Reply { .. } => 2,
        _ => 0,
    }
}
";
    let files = vec![
        ("crates/proto/src/msg.rs".to_string(), WIRE_ENUM.to_string()),
        (
            "crates/httpsim/src/origin.rs".to_string(),
            probe.to_string(),
        ),
        // Reporting crates are out of scope even when they dispatch.
        (
            "crates/replay/src/tables.rs".to_string(),
            counting.to_string(),
        ),
    ];
    assert!(scan_files(&files).is_empty());
}

#[test]
fn new_enum_variant_breaks_existing_dispatch_sites() {
    // The ROADMAP-item-3 scenario: adding a variant to the wire enum must
    // fail every handler that has not wired it.
    let extended = WIRE_ENUM.replace("    Hello,\n", "    Hello,\n    MetricsGet,\n");
    let handler = "\
fn handle(msg: HttpMsg) {
    match msg {
        HttpMsg::Get(_) => on_get(),
        HttpMsg::Reply { .. } => on_reply(),
        HttpMsg::Invalidate => on_invalidate(),
        HttpMsg::Hello => on_hello(),
    }
}
";
    let ok_files = vec![
        ("crates/proto/src/msg.rs".to_string(), WIRE_ENUM.to_string()),
        (
            "crates/httpsim/src/parent.rs".to_string(),
            handler.to_string(),
        ),
    ];
    assert!(scan_files(&ok_files).is_empty());
    let broken = vec![
        ("crates/proto/src/msg.rs".to_string(), extended),
        (
            "crates/httpsim/src/parent.rs".to_string(),
            handler.to_string(),
        ),
    ];
    let d = scan_files(&broken);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "wire-exhaustiveness");
    assert!(d[0].message.contains("MetricsGet"));
}

// ---- index-panic ----

#[test]
fn vec_indexing_in_protocol_crates_is_flagged() {
    let src = "\
fn f(lanes: Vec<u32>, i: usize) -> u32 {
    lanes[i]
}
";
    let d = scan_source("crates/proto/src/wire.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "index-panic");
    assert_eq!(d[0].line, 2);
    // `.get()` passes; out-of-scope crates pass; maps are not flagged.
    let get = "fn f(lanes: Vec<u32>, i: usize) -> Option<u32> { lanes.get(i).copied() }\n";
    assert!(scan_source("crates/proto/src/wire.rs", get).is_empty());
    assert!(scan_source("crates/httpsim/src/proxy.rs", src).is_empty());
}

// ---- waiver audit ----

#[test]
fn stale_waiver_is_reported_with_its_line() {
    let src = "\
fn fixed() -> u32 { 1 } // xtask-lint: allow(unwrap)
";
    let d = audit_waivers_source("crates/core/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "stale-waiver");
    assert_eq!(d[0].line, 1);
    assert!(d[0].message.contains("unwrap"));
    // A live waiver is not stale.
    let live = "fn f() { Some(1).unwrap() } // xtask-lint: allow(unwrap)\n";
    assert!(audit_waivers_source("crates/core/src/lib.rs", live).is_empty());
    // Unknown rule names are flagged; the `<rule>` doc placeholder is not
    // a marker at all.
    let unknown = "fn f() {} // xtask-lint: allow(no-such-rule)\n";
    let d = audit_waivers_source("crates/core/src/lib.rs", unknown);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("unknown rule"));
    let doc = "//! Waive with `// xtask-lint: allow(<rule>)` on the line.\n";
    assert!(audit_waivers_source("crates/core/src/lib.rs", doc).is_empty());
    // Markers inside string literals are inert.
    let in_str = "fn f() -> &'static str { \"// xtask-lint: allow(unwrap)\" }\n";
    assert!(audit_waivers_source("crates/core/src/lib.rs", in_str).is_empty());
}

#[test]
fn scan_files_reports_stale_waivers_alongside_findings() {
    let files = vec![(
        "crates/core/src/lib.rs".to_string(),
        "fn ok() {} // xtask-lint: allow(sleep)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n"
            .to_string(),
    )];
    let d = scan_files(&files);
    let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["stale-waiver", "unwrap"]);
}

// ---- output format ----

#[test]
fn json_output_is_stable_and_escaped() {
    let d = vec![Diagnostic {
        path: "crates/core/src/lib.rs".to_string(),
        line: 3,
        rule: "unwrap",
        message: "say \"no\"".to_string(),
    }];
    let json = to_json(&d);
    assert!(json.contains("\"schema\": \"wcc-lint/1\""));
    assert!(json.contains("\"line\": 3"));
    assert!(json.contains("say \\\"no\\\""));
    let empty = to_json(&[]);
    assert!(empty.contains("\"findings\": []"));
}
