//! Deterministic scenario fuzzing for the cache-consistency simulator.
//!
//! FoundationDB-style simulation testing: a single `u64` seed expands into
//! a complete experiment — synthetic workload, protocol and tuning,
//! deployment knobs, and a declarative crash/partition schedule
//! ([`Scenario`]) — which replays inside the deterministic simulator with
//! auditing on. The consistency auditor (`wcc-audit`) is the oracle,
//! extended with cross-cutting invariants (liveness, determinism, polling
//! purity, promise freshness, weak dominance, sharded equivalence; see
//! [`check`]). Failures
//! shrink greedily ([`shrink`]) and print a self-contained repro: a seed
//! line to paste into `tests/fuzz_corpus.rs` plus the minimised scenario.
//!
//! Everything is a pure function of the base seed — no wall clocks, no
//! ambient randomness — so `fuzz` with the same [`FuzzConfig`] produces
//! byte-identical summaries on every run and platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod scenario;
pub mod shrink;

pub use check::{
    check, sharded_matches_sequential, CheckOptions, CheckStats, FailureKind, FuzzFailure,
};
pub use scenario::{FaultSpec, Interest, Scenario};
pub use shrink::{shrink, Shrunk, DEFAULT_SHRINK_BUDGET};

use std::collections::BTreeMap;
use std::fmt;

/// Derives the scenario seed for iteration `iter` of a run based at
/// `base` (a splitmix64-style mix, so consecutive iterations decorrelate).
pub fn scenario_seed(base: u64, iter: u64) -> u64 {
    let mut z = base ^ iter.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Knobs for one fuzzing run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Scenarios to try (the run stops early at the first failure).
    pub iters: u64,
    /// Base seed; iteration `i` replays `scenario_seed(seed, i)`.
    pub seed: u64,
    /// Minimise a found failure before reporting it.
    pub shrink: bool,
    /// Self-test mode: plant a forged stale serve in every scenario's
    /// audit log and require the auditor to find it.
    pub inject_stale_serve: bool,
    /// Worker threads for scenario evaluation: 0 resolves like
    /// [`wcc_replay::effective_jobs`] (CLI `--jobs` / `WCC_JOBS` / cores).
    /// The outcome is byte-identical at any job count.
    pub jobs: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 100,
            seed: 1,
            shrink: false,
            inject_stale_serve: false,
            jobs: 0,
        }
    }
}

/// A failure the fuzzer found, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// Which iteration hit it.
    pub iter: u64,
    /// The scenario seed (`scenario_seed(base, iter)`).
    pub seed: u64,
    /// The failing scenario as generated.
    pub scenario: Scenario,
    /// The oracle verdict.
    pub failure: FuzzFailure,
    /// `true` when this is injection mode's planted fault being correctly
    /// detected (the expected outcome there, not a system bug).
    pub planted: bool,
    /// The minimised scenario, when shrinking was requested.
    pub shrunk: Option<Shrunk>,
}

impl FoundFailure {
    /// A self-contained repro report: the regression seed line for
    /// `tests/fuzz_corpus.rs` plus the (shrunk) scenario description.
    pub fn repro(&self) -> String {
        let mut out = String::new();
        out.push_str("== wcc fuzz repro ==\n");
        out.push_str(&format!(
            "failure at iter {}: {}\n\n",
            self.iter, self.failure
        ));
        out.push_str("regression seed line for tests/fuzz_corpus.rs:\n");
        out.push_str(&format!(
            "    {:#018x}, // {}: {}\n\n",
            self.seed, self.failure.kind, self.scenario.protocol.kind,
        ));
        match &self.shrunk {
            Some(s) => {
                out.push_str(&format!(
                    "shrunk scenario ({} fault(s), {} reqs, {} docs, {} clients; \
                     {} evaluations over {} rounds):\n{}\n\n",
                    s.scenario.faults.len(),
                    s.scenario.spec.total_requests,
                    s.scenario.spec.num_docs,
                    s.scenario.spec.num_clients,
                    s.evaluations,
                    s.rounds,
                    s.scenario.describe(),
                ));
                out.push_str(&format!("shrunk failure: {}\n\n", s.failure));
            }
            None => out.push_str("(shrinking was not requested)\n\n"),
        }
        out.push_str(&format!(
            "original scenario:\n{}\n",
            self.scenario.describe()
        ));
        out
    }
}

/// Aggregate result of a fuzzing run. `Display` is deterministic for a
/// given [`FuzzConfig`] — two runs print byte-identical summaries.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The configuration replayed.
    pub config: FuzzConfig,
    /// Scenarios actually evaluated (< `iters` when a failure stopped
    /// the run early).
    pub iters_run: u64,
    /// Scenarios that passed the whole oracle.
    pub clean: u64,
    /// Clean scenarios per protocol kind.
    pub by_protocol: BTreeMap<String, u64>,
    /// Total user requests replayed across clean scenarios.
    pub requests: u64,
    /// Total audit events recorded across clean scenarios.
    pub events: u64,
    /// Total from-cache serves the auditor checked.
    pub checked_serves: u64,
    /// Total fault-plan entries resolved onto simulations.
    pub fault_entries: u64,
    /// The first failure, if any.
    pub failure: Option<FoundFailure>,
}

impl FuzzOutcome {
    /// `true` when the run found no violation (injection mode inverts
    /// this: there, finding the plant is the passing outcome).
    pub fn passed(&self) -> bool {
        match &self.failure {
            None => !self.config.inject_stale_serve,
            Some(f) => f.planted,
        }
    }
}

impl fmt::Display for FuzzOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} of {} scenario(s) from base seed {:#x}, {} clean",
            self.iters_run, self.config.iters, self.config.seed, self.clean
        )?;
        if !self.by_protocol.is_empty() {
            write!(f, "  protocols:")?;
            for (kind, n) in &self.by_protocol {
                write!(f, " {kind}\u{d7}{n}")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  totals: {} requests, {} audit events, {} checked serves, {} fault entries",
            self.requests, self.events, self.checked_serves, self.fault_entries
        )?;
        match &self.failure {
            None => writeln!(f, "  no oracle violations")?,
            Some(found) => {
                let tag = if found.planted { "PLANT FOUND" } else { "FAIL" };
                writeln!(
                    f,
                    "  {tag} at iter {} (seed {:#018x}): {}",
                    found.iter, found.seed, found.failure
                )?;
                if let Some(s) = &found.shrunk {
                    writeln!(
                        f,
                        "  shrunk to {} fault(s), {} reqs, {} docs, {} clients \
                         in {} evaluation(s)",
                        s.scenario.faults.len(),
                        s.scenario.spec.total_requests,
                        s.scenario.spec.num_docs,
                        s.scenario.spec.num_clients,
                        s.evaluations,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Runs the fuzzer: `iters` seeded scenarios through [`check`], stopping
/// at the first oracle violation (shrinking it when configured).
pub fn fuzz(config: &FuzzConfig) -> FuzzOutcome {
    let opts = CheckOptions {
        inject_stale_serve: config.inject_stale_serve,
    };
    let mut outcome = FuzzOutcome {
        config: *config,
        iters_run: 0,
        clean: 0,
        by_protocol: BTreeMap::new(),
        requests: 0,
        events: 0,
        checked_serves: 0,
        fault_entries: 0,
        failure: None,
    };

    // Scenarios are independent pure functions of their seed, so blocks of
    // them fan out over the worker pool; the verdicts are then scanned in
    // iteration order, which keeps the early-stop point — and therefore the
    // whole summary — byte-identical to the sequential loop. At most one
    // block of speculative work past a failure is discarded.
    let jobs = wcc_replay::effective_jobs((config.jobs > 0).then_some(config.jobs));
    let block = (jobs as u64).saturating_mul(2).max(1);
    let mut next = 0u64;
    'sweep: while next < config.iters {
        let end = next.saturating_add(block).min(config.iters);
        let iters: Vec<u64> = (next..end).collect();
        let results = wcc_replay::parallel::map_indexed(&iters, jobs, |&iter| {
            let seed = scenario_seed(config.seed, iter);
            let scenario = Scenario::generate(seed);
            let verdict = check(&scenario, &opts);
            (seed, scenario, verdict)
        });
        for (iter, (seed, scenario, verdict)) in iters.iter().copied().zip(results) {
            outcome.iters_run += 1;
            match verdict {
                Ok(stats) => {
                    outcome.clean += 1;
                    *outcome
                        .by_protocol
                        .entry(stats.protocol.to_string())
                        .or_insert(0) += 1;
                    outcome.requests += stats.requests;
                    outcome.events += stats.events as u64;
                    outcome.checked_serves += stats.checked_serves;
                    outcome.fault_entries += stats.fault_entries as u64;
                }
                Err(failure) => {
                    let planted = config.inject_stale_serve
                        && failure.kind == FailureKind::Audit(wcc_audit::Check::Staleness)
                        && failure.detail.starts_with("planted");
                    // Shrinking is rare (first failure only) and stays on
                    // the calling thread.
                    let shrunk = config
                        .shrink
                        .then(|| shrink(&scenario, &failure, &opts, DEFAULT_SHRINK_BUDGET));
                    outcome.failure = Some(FoundFailure {
                        iter,
                        seed,
                        scenario,
                        failure,
                        planted,
                        shrunk,
                    });
                    break 'sweep;
                }
            }
        }
        next = end;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seed_mixes() {
        assert_ne!(scenario_seed(1, 0), scenario_seed(1, 1));
        assert_ne!(scenario_seed(1, 0), scenario_seed(2, 0));
        assert_eq!(scenario_seed(7, 3), scenario_seed(7, 3));
    }

    #[test]
    fn tiny_fuzz_run_is_deterministic_and_clean() {
        let config = FuzzConfig {
            iters: 4,
            seed: 1,
            ..FuzzConfig::default()
        };
        let a = fuzz(&config);
        let b = fuzz(&config);
        assert_eq!(a.to_string(), b.to_string());
        assert!(a.passed(), "unexpected failure:\n{a}");
        assert_eq!(a.clean, 4);
    }

    #[test]
    fn injection_is_found_and_shrinks_small() {
        let config = FuzzConfig {
            iters: 100,
            seed: 1,
            shrink: true,
            inject_stale_serve: true,
            ..FuzzConfig::default()
        };
        let outcome = fuzz(&config);
        let found = outcome.failure.as_ref().expect("plant never found");
        assert!(found.planted, "non-planted failure: {}", found.failure);
        assert!(outcome.passed());
        let shrunk = found.shrunk.as_ref().expect("shrink was requested");
        assert!(
            shrunk.scenario.faults.len() <= 3,
            "shrunk scenario still has {} faults",
            shrunk.scenario.faults.len()
        );
        assert!(found.repro().contains("tests/fuzz_corpus.rs"));
    }
}
