//! Byte quantities with human-readable formatting.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A quantity of bytes: document sizes, message sizes, cache capacities and
/// traffic totals.
///
/// Arithmetic saturates rather than wrapping, so accumulating traffic
/// counters can never overflow silently.
///
/// # Examples
///
/// ```
/// use wcc_types::ByteSize;
///
/// let total = ByteSize::from_kib(21) + ByteSize::from_bytes(512);
/// assert_eq!(total.as_u64(), 21 * 1024 + 512);
/// assert_eq!(ByteSize::from_mib(237).to_string(), "237.00 MiB");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The size in kibibytes, as a float (for reporting).
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// The size in mebibytes, as a float (for reporting).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns `true` if the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(factor))
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> ByteSize {
        ByteSize(bytes)
    }
}

impl From<ByteSize> for u64 {
    fn from(size: ByteSize) -> u64 {
        size.0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: ByteSize) -> ByteSize {
        debug_assert!(self.0 >= rhs.0, "ByteSize subtraction underflow");
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({})", self.0)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(ByteSize::from_kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn arithmetic_saturates() {
        let max = ByteSize::from_bytes(u64::MAX);
        assert_eq!((max + ByteSize::from_bytes(1)).as_u64(), u64::MAX);
        assert_eq!(
            ByteSize::from_bytes(1).saturating_sub(ByteSize::from_bytes(5)),
            ByteSize::ZERO
        );
        assert_eq!(max.saturating_mul(2).as_u64(), u64::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::from_bytes(100).to_string(), "100 B");
        assert_eq!(ByteSize::from_kib(21).to_string(), "21.00 KiB");
        assert_eq!(ByteSize::from_mib(448).to_string(), "448.00 MiB");
        assert_eq!(ByteSize::from_bytes(1_363_148_800).to_string(), "1.27 GiB");
    }

    #[test]
    fn summation() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(6));
    }

    #[test]
    fn float_views() {
        assert!((ByteSize::from_kib(3).as_kib_f64() - 3.0).abs() < 1e-12);
        assert!((ByteSize::from_mib(2).as_mib_f64() - 2.0).abs() < 1e-12);
    }
}
