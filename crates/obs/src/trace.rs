//! Structured lifetime tracing keyed on sim time.
//!
//! A *span* is one protocol lifetime: a client request (proxy receive →
//! cache probe → upstream GET/IMS → origin → reply) or an invalidation
//! (write observed → per-site INVALIDATE → acks → quorum). Each node
//! records its view of a span into a bounded ring buffer; the deployment
//! merges the per-node buffers into one time-ordered log.
//!
//! Request spans are identified per proxy (`node`, `span`) and joined to
//! the origin's events through the `(client, req)` pair carried on the
//! wire; invalidation spans are identified by the written document and
//! write time, which every node observes identically.
//!
//! Recording never reads or writes protocol state — a traced run is
//! byte-identical to an untraced one (see `tests/determinism.rs`).

use core::fmt;
use std::collections::VecDeque;
use wcc_types::{ClientId, ServerId, SimTime, Url};

/// The lifetime a span models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A client request travelling proxy → (parent →) origin → back.
    Request,
    /// A write fanning out as INVALIDATEs until the ack quorum.
    Invalidation,
}

impl SpanKind {
    fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Invalidation => "invalidation",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "request" => Some(SpanKind::Request),
            "invalidation" => Some(SpanKind::Invalidation),
            _ => None,
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step inside a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Proxy received the client request.
    Receive,
    /// Served from the local cache without contacting the origin.
    Hit,
    /// Upstream GET or If-Modified-Since sent.
    Upstream,
    /// Origin (or parent) handled the GET/IMS.
    Origin,
    /// Proxy received the 200/304 reply; the request is complete.
    Reply,
    /// Origin observed a write (modifier check-in).
    Write,
    /// One INVALIDATE sent to a registered site.
    Invalidate,
    /// One invalidation ack received.
    Ack,
    /// Every live site acked; the write is complete.
    Quorum,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Receive => "receive",
            Phase::Hit => "hit",
            Phase::Upstream => "upstream",
            Phase::Origin => "origin",
            Phase::Reply => "reply",
            Phase::Write => "write",
            Phase::Invalidate => "invalidate",
            Phase::Ack => "ack",
            Phase::Quorum => "quorum",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "receive" => Some(Phase::Receive),
            "hit" => Some(Phase::Hit),
            "upstream" => Some(Phase::Upstream),
            "origin" => Some(Phase::Origin),
            "reply" => Some(Phase::Reply),
            "write" => Some(Phase::Write),
            "invalidate" => Some(Phase::Invalidate),
            "ack" => Some(Phase::Ack),
            "quorum" => Some(Phase::Quorum),
            _ => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim time of the step.
    pub at: SimTime,
    /// Recording node ("proxy0", "origin1", "parent", ...).
    pub node: String,
    /// Span lifetime kind.
    pub kind: SpanKind,
    /// Span id: per-proxy sequence number for requests; for invalidations,
    /// `(doc << 32) | write-time-µs-low-bits`, identical on every node.
    pub span: u64,
    /// The step within the lifetime.
    pub phase: Phase,
    /// The document involved.
    pub url: Url,
    /// Requesting client / invalidated site, when known.
    pub client: Option<ClientId>,
    /// Wire request id joining proxy and origin views of one request.
    pub req: Option<u64>,
}

/// A per-node bounded trace recorder.
///
/// Disabled tracers (the default) drop every event without allocating, so
/// untraced runs pay one branch per hook. When the ring is full the oldest
/// events are evicted and counted in [`Tracer::dropped`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    node: String,
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    next_span: u64,
}

impl Tracer {
    /// Default ring capacity per node.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A recording tracer for `node` with the default ring capacity.
    pub fn enabled(node: impl Into<String>) -> Self {
        Tracer::with_capacity(node, Tracer::DEFAULT_CAPACITY)
    }

    /// A recording tracer with an explicit ring capacity.
    pub fn with_capacity(node: impl Into<String>, capacity: usize) -> Self {
        Tracer {
            node: node.into(),
            enabled: true,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            next_span: 0,
        }
    }

    /// A disabled tracer: every record is a no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates the next request span id for this node. Monotonic even
    /// when disabled, so enabling tracing cannot change any id sequence.
    pub fn begin_span(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Records one event (no-op when disabled).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        at: SimTime,
        kind: SpanKind,
        span: u64,
        phase: Phase,
        url: Url,
        client: Option<ClientId>,
        req: Option<u64>,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            node: self.node.clone(),
            kind,
            span,
            phase,
            url,
            client,
            req,
        });
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events were evicted from a full ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Span id for an invalidation lifetime: every node derives the same id
/// from the written document and the write instant.
pub fn invalidation_span(url: Url, wrote_at: SimTime) -> u64 {
    ((url.doc() as u64) << 32) | (wrote_at.as_micros() & 0xFFFF_FFFF)
}

/// Merges per-node event streams into one log ordered by
/// `(time, node, recording order)` — deterministic for any tracer set.
pub fn merge_logs<'a>(tracers: impl IntoIterator<Item = &'a Tracer>) -> Vec<TraceEvent> {
    let mut all: Vec<(usize, TraceEvent)> = Vec::new();
    for tracer in tracers {
        for (i, ev) in tracer.events().enumerate() {
            all.push((i, ev.clone()));
        }
    }
    all.sort_by(|(ia, a), (ib, b)| (a.at, &a.node, ia).cmp(&(b.at, &b.node, ib)));
    all.into_iter().map(|(_, ev)| ev).collect()
}

impl TraceEvent {
    /// One JSONL line (no trailing newline). All values are plain JSON
    /// numbers/strings; node names never need escaping.
    pub fn to_json(&self) -> String {
        let client = match self.client {
            Some(c) => u32::from_be_bytes(c.octets()).to_string(),
            None => "null".to_string(),
        };
        let req = match self.req {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"at_us\":{},\"node\":\"{}\",\"kind\":\"{}\",\"span\":{},\
             \"phase\":\"{}\",\"server\":{},\"doc\":{},\"client\":{},\"req\":{}}}",
            self.at.as_micros(),
            self.node,
            self.kind.name(),
            self.span,
            self.phase.name(),
            self.url.server().index(),
            self.url.doc(),
            client,
            req,
        )
    }

    /// Parses one line written by [`TraceEvent::to_json`].
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let err = |what: &str| format!("bad trace line ({what}): {line}");
        let field = |key: &str| -> Result<String, String> {
            let tag = format!("\"{key}\":");
            let start = line.find(&tag).ok_or_else(|| err(key))? + tag.len();
            let rest = &line[start..];
            if let Some(stripped) = rest.strip_prefix('"') {
                let end = stripped.find('"').ok_or_else(|| err(key))?;
                Ok(stripped[..end].to_string())
            } else {
                let end = rest.find([',', '}']).ok_or_else(|| err(key))?;
                Ok(rest[..end].trim().to_string())
            }
        };
        let num =
            |key: &str| -> Result<u64, String> { field(key)?.parse::<u64>().map_err(|_| err(key)) };
        let opt_num = |key: &str| -> Result<Option<u64>, String> {
            let raw = field(key)?;
            if raw == "null" {
                Ok(None)
            } else {
                raw.parse::<u64>().map(Some).map_err(|_| err(key))
            }
        };
        Ok(TraceEvent {
            at: SimTime::from_micros(num("at_us")?),
            node: field("node")?,
            kind: SpanKind::from_name(&field("kind")?).ok_or_else(|| err("kind"))?,
            span: num("span")?,
            phase: Phase::from_name(&field("phase")?).ok_or_else(|| err("phase"))?,
            url: Url::new(ServerId::new(num("server")? as u32), num("doc")? as u32),
            client: opt_num("client")?.map(|raw| ClientId::from_ip((raw as u32).to_be_bytes())),
            req: opt_num("req")?,
        })
    }
}

/// Renders events as JSONL (one event per line, trailing newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL dump back into events; blank lines are skipped.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(1_234),
            node: "proxy0".to_string(),
            kind: SpanKind::Request,
            span: 42,
            phase: Phase::Upstream,
            url: Url::new(ServerId::new(3), 17),
            client: Some(ClientId::from_raw(9)),
            req: Some(7),
        }
    }

    #[test]
    fn json_round_trips() {
        let ev = sample_event();
        assert_eq!(TraceEvent::from_json(&ev.to_json()).unwrap(), ev);
        let none = TraceEvent {
            client: None,
            req: None,
            kind: SpanKind::Invalidation,
            phase: Phase::Quorum,
            ..ev
        };
        assert_eq!(TraceEvent::from_json(&none.to_json()).unwrap(), none);
    }

    #[test]
    fn jsonl_round_trips_and_skips_blanks() {
        let events = vec![sample_event(), sample_event()];
        let mut text = to_jsonl(&events);
        text.push('\n'); // extra blank line
        assert_eq!(from_jsonl(&text).unwrap(), events);
        assert!(from_jsonl("not json\n").is_err());
    }

    #[test]
    fn disabled_tracer_records_nothing_but_keeps_span_ids() {
        let mut t = Tracer::disabled();
        assert_eq!(t.begin_span(), 0);
        assert_eq!(t.begin_span(), 1);
        t.record(
            SimTime::ZERO,
            SpanKind::Request,
            0,
            Phase::Receive,
            Url::new(ServerId::new(0), 0),
            None,
            None,
        );
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::with_capacity("n", 2);
        for span in 0..3u64 {
            t.record(
                SimTime::from_secs(span),
                SpanKind::Request,
                span,
                Phase::Receive,
                Url::new(ServerId::new(0), 0),
                None,
                None,
            );
        }
        let spans: Vec<u64> = t.events().map(|e| e.span).collect();
        assert_eq!(spans, [1, 2]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn merged_log_is_time_ordered_with_stable_ties() {
        let url = Url::new(ServerId::new(0), 0);
        let mut a = Tracer::enabled("b-proxy");
        let mut b = Tracer::enabled("a-origin");
        let record = |tracer: &mut Tracer, at: u64| {
            let span = tracer.begin_span();
            tracer.record(
                SimTime::from_secs(at),
                SpanKind::Request,
                span,
                Phase::Receive,
                url,
                None,
                None,
            );
        };
        record(&mut a, 5);
        record(&mut b, 3);
        record(&mut a, 3);
        let log = merge_logs([&a, &b]);
        let order: Vec<(u64, &str)> = log
            .iter()
            .map(|e| (e.at.as_secs(), e.node.as_str()))
            .collect();
        assert_eq!(order, [(3, "a-origin"), (3, "b-proxy"), (5, "b-proxy")]);
    }

    #[test]
    fn invalidation_span_is_stable_across_nodes() {
        let url = Url::new(ServerId::new(1), 7);
        let at = SimTime::from_secs(1_000);
        assert_eq!(invalidation_span(url, at), invalidation_span(url, at));
        assert_ne!(
            invalidation_span(url, at),
            invalidation_span(url, at + wcc_types::SimDuration::from_micros(1))
        );
    }
}
