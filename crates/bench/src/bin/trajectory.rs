//! Writes or checks the bench trajectory report (`BENCH_replay.json`).
//!
//! Default mode times the Tables 3+4 grid sequentially and fanned out,
//! plus the single-threaded inner-loop workload, and writes the JSON
//! report — see `wcc_bench::trajectory` for what is measured and how the
//! embedded baselines were taken. Exits non-zero if the parallel grid is
//! not byte-identical to the sequential one.
//!
//! With `--check PATH` the run is instead compared against the committed
//! baseline JSON at `PATH` (CI's bench-regression gate): the workload
//! scale is taken from the baseline, deterministic fields must match
//! exactly, timing fields must stay within `--tolerance` (default 0.15 =
//! ±15%), and the diff table is printed either way. Exits non-zero on any
//! regression.
//!
//! Usage: `trajectory [--scale N] [--jobs N] [--shards N|auto] [--out PATH]
//!                    [--check BASELINE [--tolerance F]]`
//!
//! `--shards auto` caps the sharded pass at the host's core count
//! (`min(2, host_cores)` — see `wcc_bench::resolve_trajectory_shards`), so
//! a 1-core runner measures a single-shard pass instead of the ~3× tax of
//! two shards on one core.
//! (default `--out BENCH_replay.json`, i.e. the repo root when run from
//! there).

use wcc_bench::{parse_jobs, parse_scale, parse_shards, resolve_trajectory_shards, trajectory};

fn parse_value(key: &str, mut args: impl Iterator<Item = String>) -> Option<String> {
    while let Some(arg) = args.next() {
        if arg == key {
            return args.next();
        }
    }
    None
}

fn main() {
    let jobs = parse_jobs(std::env::args());
    let shards = resolve_trajectory_shards(parse_shards(std::env::args()));
    let out = parse_value("--out", std::env::args()).unwrap_or_else(|| "BENCH_replay.json".into());
    let tolerance = parse_value("--tolerance", std::env::args())
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(0.15);

    if let Some(baseline_path) = parse_value("--check", std::env::args()) {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trajectory: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let Some(scale) = trajectory::json_number(&baseline, "scale") else {
            eprintln!("trajectory: baseline {baseline_path} carries no \"scale\" field");
            std::process::exit(1);
        };
        let scale = scale as u64;
        eprintln!(
            "trajectory: regression check against {baseline_path} \
             (scale 1/{scale}, tolerance ±{:.0}%) ...",
            tolerance * 100.0
        );
        let report = trajectory::run(scale, jobs, shards);
        match trajectory::check_against(&report, &baseline, tolerance) {
            Ok(table) => {
                println!("{table}");
                println!("bench-regression gate: PASS");
            }
            Err(table) => {
                println!("{table}");
                eprintln!("trajectory: FATAL: bench-regression gate failed (see FAIL rows)");
                std::process::exit(1);
            }
        }
        return;
    }

    let scale = parse_scale(std::env::args());
    eprintln!("trajectory: timing grid + sharded + inner loop + family at scale 1/{scale} ...");
    let report = trajectory::run(scale, jobs, shards);
    println!(
        "grid ({} configs): sequential {} ms, parallel {} ms at --jobs {} \
         ({:.2}x, {} core(s)); sharded {} ms at --shards {} ({:.2}x); \
         inner loop: {} requests in {} ms ({} req/s)",
        report.grid_configs,
        report.grid_sequential_ms,
        report.grid_parallel_ms,
        report.jobs,
        report.speedup,
        report.host_cores,
        report.sharded_grid_ms,
        report.shards,
        report.sharded_speedup,
        report.inner_requests,
        report.inner_wall_ms,
        report.inner_requests_per_sec,
    );
    println!(
        "family {} ({} origins, {} requests): {} ms sequential + {}-shard, \
         state {} B vs legacy {} B (-{:.1}%), peak RSS {} kB",
        report.family_name,
        report.family_origins,
        report.family_requests,
        report.family_wall_ms,
        report.family_shards,
        report.family_state_bytes,
        report.family_legacy_state_bytes,
        report.family_memory_reduction_pct,
        report.family_peak_rss_kb,
    );
    println!(
        "proposer (count threshold {}): {} wire INVALIDATEs vs {} per-write \
         (-{:.1}%, coalesce {:.3}), write p99 {}us vs {}us, {} ms",
        report.proposer_batch_entries,
        report.proposer_messages,
        report.proposer_per_write_messages,
        report.proposer_reduction_pct,
        report.proposer_coalesce_ratio,
        report.proposer_write_p99_us,
        report.proposer_per_write_p99_us,
        report.proposer_wall_ms,
    );
    println!(
        "serve ({} keep-alive conns): {} replies in {} ms ({} req/s), \
         {} dropped, {} stale, p50/p99 {}us/{}us",
        report.serve_connections,
        report.serve_requests,
        report.serve_wall_ms,
        report.serve_requests_per_sec,
        report.serve_dropped,
        report.serve_stale,
        report.serve_p50_us,
        report.serve_p99_us,
    );
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("trajectory: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if !report.byte_identical {
        eprintln!("trajectory: FATAL: parallel grid diverged from sequential run");
        std::process::exit(1);
    }
    if !report.sharded_byte_identical {
        eprintln!("trajectory: FATAL: sharded grid diverged from sequential run");
        std::process::exit(1);
    }
    if !report.family_byte_identical {
        eprintln!("trajectory: FATAL: sharded family replay diverged from sequential run");
        std::process::exit(1);
    }
    if !report.proposer_byte_identical {
        eprintln!(
            "trajectory: FATAL: sharded batched-proposer replay diverged from sequential run"
        );
        std::process::exit(1);
    }
    if report.serve_dropped > 0 || report.serve_stale > 0 {
        eprintln!(
            "trajectory: FATAL: serving-tier pass dropped {} connection(s) / served {} stale",
            report.serve_dropped, report.serve_stale
        );
        std::process::exit(1);
    }
}
