//! Document naming and metadata.

use crate::{ByteSize, ClientId, ServerId, SimTime};
use core::fmt;
use std::sync::Arc;

/// The name of a Web document: the origin server it lives on plus a dense
/// document index on that server.
///
/// The evaluation traces address at most a few thousand distinct documents
/// per server, so a compact `(server, doc)` pair is both faster and smaller
/// than string paths; [`Url::path`] renders the conventional string form and
/// the wire codec in `wcc-proto` parses it back.
///
/// # Examples
///
/// ```
/// use wcc_types::{ServerId, Url};
///
/// let url = Url::new(ServerId::new(0), 42);
/// assert_eq!(url.path(), "/doc/42");
/// assert_eq!(url.doc(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Url {
    server: ServerId,
    doc: u32,
}

impl Url {
    /// Creates a URL naming document `doc` on `server`.
    pub const fn new(server: ServerId, doc: u32) -> Self {
        Url { server, doc }
    }

    /// The origin server this URL belongs to.
    pub const fn server(self) -> ServerId {
        self.server
    }

    /// The dense document index on the origin server.
    pub const fn doc(self) -> u32 {
        self.doc
    }

    /// Writes the conventional string path of this document into `out`
    /// without allocating — the hot-path form of [`Url::path`].
    ///
    /// Formatting a path happens once per simulated request (audit records,
    /// wire frames, log lines), so hot callers format into a reused buffer
    /// or an existing formatter instead of materialising a fresh `String`
    /// per call.
    ///
    /// ```
    /// use wcc_types::{ServerId, Url};
    ///
    /// let url = Url::new(ServerId::new(0), 42);
    /// let mut buf = String::new();
    /// url.write_path(&mut buf).unwrap();
    /// assert_eq!(buf, "/doc/42");
    /// ```
    pub fn write_path<W: fmt::Write>(self, out: &mut W) -> fmt::Result {
        write!(out, "/doc/{}", self.doc)
    }

    /// The conventional string path of this document, as a fresh `String`.
    ///
    /// Cold-path convenience over [`Url::write_path`]; inside the simulator
    /// crates prefer `write_path` into a reused buffer (the `url-path-alloc`
    /// lint flags `.path()` there).
    pub fn path(self) -> String {
        let mut out = String::with_capacity(8);
        self.write_path(&mut out)
            .expect("String write is infallible");
        out
    }

    /// A [`fmt::Display`] adapter rendering just the path (`/doc/N`), so the
    /// path can ride an existing `write!` into a shared buffer — the
    /// format-string-friendly face of [`Url::write_path`].
    ///
    /// ```
    /// use wcc_types::{ServerId, Url};
    ///
    /// let url = Url::new(ServerId::new(2), 7);
    /// assert_eq!(format!("GET {} HTTP/1.0", url.path_display()), "GET /doc/7 HTTP/1.0");
    /// ```
    pub const fn path_display(self) -> UrlPath {
        UrlPath(self)
    }

    /// Parses the string form produced by [`Url::path`], given the owning
    /// server.
    pub fn from_path(server: ServerId, path: &str) -> Option<Url> {
        let doc = path.strip_prefix("/doc/")?.parse().ok()?;
        Some(Url::new(server, doc))
    }

    /// The per-real-client scoped cache key the paper's proxies use: "if
    /// client x requests document url0, the proxy puts the reply from the Web
    /// server as url0@x in its cache", so that co-located real clients do not
    /// share cached copies.
    pub const fn scoped(self, client: ClientId) -> ScopedUrl {
        ScopedUrl { url: self, client }
    }
}

/// The path-only [`fmt::Display`] view of a [`Url`], made by
/// [`Url::path_display`]. Formatting it is equivalent to
/// [`Url::write_path`] and allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UrlPath(Url);

impl fmt::Display for UrlPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.write_path(f)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}", self.server)?;
        self.write_path(f)
    }
}

impl fmt::Debug for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Url({}/{})", self.server, self.doc)
    }
}

/// A cache key scoping a [`Url`] to one real client, mirroring the paper's
/// `url@clientid` trick for simulating unshared per-client caches on a
/// shared pseudo-client proxy.
///
/// # Examples
///
/// ```
/// use wcc_types::{ClientId, ServerId, Url};
///
/// let url = Url::new(ServerId::new(0), 7);
/// let key = url.scoped(ClientId::from_raw(99));
/// assert_eq!(key.url(), url);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScopedUrl {
    url: Url,
    client: ClientId,
}

impl ScopedUrl {
    /// The underlying document URL.
    pub const fn url(self) -> Url {
        self.url
    }

    /// The real client this scoped entry belongs to.
    pub const fn client(self) -> ClientId {
        self.client
    }
}

impl fmt::Display for ScopedUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.url, self.client)
    }
}

impl fmt::Debug for ScopedUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScopedUrl({self})")
    }
}

/// Metadata describing one version of a document: its size and the instant
/// it was last modified.
///
/// A `DocMeta` plays the role of an HTTP response's `Content-Length` +
/// `Last-Modified` headers. Comparing `last_modified` against a cached
/// copy's validator implements `If-Modified-Since`.
///
/// # Examples
///
/// ```
/// use wcc_types::{ByteSize, DocMeta, SimTime};
///
/// let meta = DocMeta::new(ByteSize::from_kib(21), SimTime::from_secs(100));
/// assert!(meta.modified_since(SimTime::from_secs(50)));
/// assert!(!meta.modified_since(SimTime::from_secs(100)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DocMeta {
    size: ByteSize,
    last_modified: SimTime,
}

impl DocMeta {
    /// Creates metadata for a document version.
    pub const fn new(size: ByteSize, last_modified: SimTime) -> Self {
        DocMeta {
            size,
            last_modified,
        }
    }

    /// The document body size.
    pub const fn size(self) -> ByteSize {
        self.size
    }

    /// When this version was created (HTTP `Last-Modified`).
    pub const fn last_modified(self) -> SimTime {
        self.last_modified
    }

    /// The `If-Modified-Since` check: has the document been modified
    /// *strictly after* `validator`?
    pub fn modified_since(self, validator: SimTime) -> bool {
        self.last_modified > validator
    }

    /// The document's age at `now` — the quantity adaptive TTL multiplies
    /// by its update threshold.
    pub fn age_at(self, now: SimTime) -> crate::SimDuration {
        now.saturating_since(self.last_modified)
    }
}

/// An immutable, cheaply clonable document body paired with its metadata —
/// what a `200` reply carries.
///
/// Bodies are shared via [`Arc`] so that the simulator can hand the same
/// bytes to thousands of cache entries without copying. The *accounted*
/// size used for bandwidth and storage is `meta.size()`, which may be larger
/// than `payload.len()` — mirroring the paper's trick of storing documents
/// scaled down by 100× on disk while scaling message-byte accounting back up.
#[derive(Clone, Debug)]
pub struct Body {
    meta: DocMeta,
    payload: Arc<[u8]>,
}

impl Body {
    /// Creates a body with an explicit payload.
    pub fn new(meta: DocMeta, payload: impl Into<Arc<[u8]>>) -> Self {
        Body {
            meta,
            payload: payload.into(),
        }
    }

    /// Creates a body whose payload is synthesized (zeroed, scaled down by
    /// `scale`) from the metadata — the simulator's usual path.
    ///
    /// Payloads are all-zero, so bodies of the same length are
    /// indistinguishable ([`PartialEq`] is byte-wise): one interned
    /// `Arc<[u8]>` per distinct length serves every `200` reply of that
    /// size, keeping the reply hot path off the global allocator.
    pub fn synthetic(meta: DocMeta, scale: u64) -> Self {
        use std::cell::RefCell;
        thread_local! {
            static ZEROED: RefCell<crate::FxHashMap<usize, Arc<[u8]>>> =
                RefCell::new(crate::FxHashMap::default());
        }
        let len = meta.size().as_u64().checked_div(scale).unwrap_or(0) as usize;
        let payload = ZEROED.with(|cache| {
            cache
                .borrow_mut()
                .entry(len)
                .or_insert_with(|| vec![0u8; len].into())
                .clone()
        });
        Body { meta, payload }
    }

    /// The metadata (accounted size + last-modified validator).
    pub const fn meta(&self) -> DocMeta {
        self.meta
    }

    /// The stored payload bytes (possibly scaled down).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.meta == other.meta && self.payload == other.payload
    }
}

impl Eq for Body {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_path_round_trip() {
        let s = ServerId::new(1);
        let u = Url::new(s, 123);
        assert_eq!(Url::from_path(s, &u.path()), Some(u));
        assert_eq!(Url::from_path(s, "/nope"), None);
        assert_eq!(Url::from_path(s, "/doc/xyz"), None);
    }

    #[test]
    fn scoped_urls_distinguish_clients() {
        let u = Url::new(ServerId::new(0), 1);
        let a = u.scoped(ClientId::from_raw(1));
        let b = u.scoped(ClientId::from_raw(2));
        assert_ne!(a, b);
        assert_eq!(a.url(), b.url());
        assert_eq!(a.to_string(), "http://server0/doc/1@0.0.0.1");
    }

    #[test]
    fn ims_semantics_are_strictly_after() {
        let meta = DocMeta::new(ByteSize::from_bytes(10), SimTime::from_secs(5));
        assert!(meta.modified_since(SimTime::from_secs(4)));
        assert!(!meta.modified_since(SimTime::from_secs(5)));
        assert!(!meta.modified_since(SimTime::from_secs(6)));
    }

    #[test]
    fn age_accumulates() {
        let meta = DocMeta::new(ByteSize::from_bytes(1), SimTime::from_secs(100));
        assert_eq!(
            meta.age_at(SimTime::from_secs(150)),
            crate::SimDuration::from_secs(50)
        );
        // Clock before the mtime clamps to zero rather than underflowing.
        assert_eq!(
            meta.age_at(SimTime::from_secs(50)),
            crate::SimDuration::ZERO
        );
    }

    #[test]
    fn synthetic_body_scales_payload() {
        let meta = DocMeta::new(ByteSize::from_kib(2), SimTime::ZERO);
        let body = Body::synthetic(meta, 100);
        assert_eq!(body.payload().len(), 20);
        assert_eq!(body.meta().size().as_u64(), 2048);
        let unscaled = Body::synthetic(meta, 1);
        assert_eq!(unscaled.payload().len(), 2048);
        let zero = Body::synthetic(meta, 0);
        assert_eq!(zero.payload().len(), 0);
    }
}
