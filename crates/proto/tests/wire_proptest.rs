//! Property tests: every well-formed message survives the wire round trip,
//! and the zero-copy decoder agrees with the owned decoder byte-for-byte —
//! on successes, on truncations and on corrupted bytes.

use proptest::prelude::*;
use wcc_proto::{
    decode, decode_ref, encode, BatchAckEntry, BatchEntry, GetRequest, HttpMsg, Reply, ReplyStatus,
    RequestId,
};
use wcc_types::{Body, ByteSize, ClientId, DocMeta, ServerId, SimTime, Url};

fn url_strategy() -> impl Strategy<Value = Url> {
    (0u32..16, 0u32..10_000).prop_map(|(s, d)| Url::new(ServerId::new(s), d))
}

fn client_strategy() -> impl Strategy<Value = ClientId> {
    any::<u32>().prop_map(ClientId::from_raw)
}

fn time_strategy() -> impl Strategy<Value = SimTime> {
    (0u64..u64::MAX / 2).prop_map(SimTime::from_micros)
}

fn body_strategy() -> impl Strategy<Value = Body> {
    (0u64..100_000, time_strategy(), 1u64..200).prop_map(|(size, mtime, scale)| {
        Body::synthetic(DocMeta::new(ByteSize::from_bytes(size), mtime), scale)
    })
}

fn msg_strategy() -> impl Strategy<Value = HttpMsg> {
    prop_oneof![
        (
            any::<u64>(),
            url_strategy(),
            client_strategy(),
            proptest::option::of(time_strategy()),
            time_strategy(),
            any::<u32>(),
        )
            .prop_map(|(req, url, client, ims, issued_at, hits)| {
                HttpMsg::Get(GetRequest {
                    req: RequestId::new(req),
                    url,
                    client,
                    ims,
                    issued_at,
                    cache_hits: hits as u64,
                })
            }),
        (
            any::<u64>(),
            url_strategy(),
            client_strategy(),
            body_strategy(),
            proptest::option::of(time_strategy()),
            proptest::collection::vec(0u32..10_000, 0..8),
            proptest::option::of(time_strategy()),
        )
            .prop_map(|(req, url, client, body, lease, pb, volume)| {
                HttpMsg::Reply(Reply {
                    req: RequestId::new(req),
                    url,
                    client,
                    status: ReplyStatus::Ok(body),
                    lease,
                    piggyback: pb.into_iter().map(|d| Url::new(url.server(), d)).collect(),
                    volume_lease: volume,
                })
            }),
        (
            any::<u64>(),
            url_strategy(),
            client_strategy(),
            proptest::option::of(time_strategy()),
            proptest::collection::vec(0u32..10_000, 0..8),
            proptest::option::of(time_strategy()),
        )
            .prop_map(|(req, url, client, lease, pb, volume)| {
                HttpMsg::Reply(Reply {
                    req: RequestId::new(req),
                    url,
                    client,
                    status: ReplyStatus::NotModified,
                    lease,
                    piggyback: pb.into_iter().map(|d| Url::new(url.server(), d)).collect(),
                    volume_lease: volume,
                })
            }),
        (url_strategy(), client_strategy())
            .prop_map(|(url, client)| HttpMsg::Invalidate { url, client }),
        (0u32..64).prop_map(|s| HttpMsg::InvalidateServer {
            server: ServerId::new(s)
        }),
        (0u32..64).prop_map(|s| HttpMsg::InvalidateServerAck {
            server: ServerId::new(s)
        }),
        (
            0u32..64,
            proptest::collection::vec((0u32..10_000, any::<u32>()), 1..8),
        )
            .prop_map(|(s, entries)| {
                let server = ServerId::new(s);
                HttpMsg::InvalidateBatch {
                    server,
                    entries: entries
                        .into_iter()
                        .map(|(d, c)| BatchEntry {
                            url: Url::new(server, d),
                            client: ClientId::from_raw(c),
                        })
                        .collect(),
                }
            }),
        (
            0u32..64,
            proptest::collection::vec((0u32..10_000, any::<u32>(), any::<u32>()), 1..8),
        )
            .prop_map(|(s, entries)| {
                let server = ServerId::new(s);
                HttpMsg::InvalidateBatchAck {
                    server,
                    entries: entries
                        .into_iter()
                        .map(|(d, c, h)| BatchAckEntry {
                            url: Url::new(server, d),
                            client: ClientId::from_raw(c),
                            cache_hits: h as u64,
                        })
                        .collect(),
                }
            }),
        Just(HttpMsg::MetricsGet),
        (url_strategy(), client_strategy(), any::<u32>()).prop_map(|(url, client, hits)| {
            HttpMsg::InvalAck {
                url,
                client,
                cache_hits: hits as u64,
            }
        }),
        (url_strategy(), time_strategy()).prop_map(|(url, at)| HttpMsg::Notify { url, at }),
        (0u32..8, 1u32..9)
            .prop_filter("partition in range", |(p, n)| p < n)
            .prop_map(|(partition, partitions)| HttpMsg::Hello {
                partition,
                partitions
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trips(msg in msg_strategy()) {
        let bytes = encode(&msg);
        let decoded = decode(&mut bytes.as_slice()).expect("well-formed message must decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn pipelined_pairs_round_trip(a in msg_strategy(), b in msg_strategy()) {
        let mut bytes = encode(&a);
        bytes.extend(encode(&b));
        let mut cursor = bytes.as_slice();
        prop_assert_eq!(decode(&mut cursor).expect("first"), a);
        prop_assert_eq!(decode(&mut cursor).expect("second"), b);
    }

    #[test]
    fn truncation_never_panics(msg in msg_strategy(), cut in 0usize..64) {
        let bytes = encode(&msg);
        let cut = cut.min(bytes.len());
        let mut truncated = &bytes[..bytes.len() - cut];
        let _ = decode(&mut truncated); // any Result is fine; no panic
    }

    /// The tentpole zero-copy property: for every message variant,
    /// `decode_ref(encode(msg)).to_owned() == msg`.
    #[test]
    fn zero_copy_decode_round_trips(msg in msg_strategy()) {
        let bytes = encode(&msg);
        let msg_ref = decode_ref(&bytes).expect("well-formed message must decode");
        prop_assert_eq!(msg_ref.to_owned(), msg);
    }

    /// Truncated input: the zero-copy decoder must fail exactly when the
    /// owned decoder fails, with a byte-identical error rendering.
    #[test]
    fn zero_copy_truncation_matches_owned(msg in msg_strategy(), cut in 0usize..512) {
        let bytes = encode(&msg);
        let cut = cut.min(bytes.len());
        let slice = &bytes[..bytes.len() - cut];
        assert_decoders_agree(slice)?;
    }

    /// Corrupted input: flip one bit anywhere in the frame; the two
    /// decoders must still agree (both succeed with equal messages, or
    /// both fail with the same error).
    #[test]
    fn zero_copy_corruption_matches_owned(msg in msg_strategy(), pos in 0usize..4096, bit in 0u32..8) {
        let mut bytes = encode(&msg);
        let len = bytes.len();
        bytes[pos % len] ^= 1 << bit;
        assert_decoders_agree(&bytes)?;
    }
}

/// Both decoders on the same bytes: equal messages or equal errors.
fn assert_decoders_agree(bytes: &[u8]) -> Result<(), TestCaseError> {
    let owned = decode(&mut &bytes[..]);
    let zero = decode_ref(bytes);
    match (owned, zero) {
        (Ok(o), Ok(z)) => prop_assert_eq!(z.to_owned(), o),
        (Err(eo), Err(ez)) => {
            prop_assert_eq!(format!("{ez}"), format!("{eo}"), "error text diverged");
            prop_assert_eq!(
                std::mem::discriminant(&ez),
                std::mem::discriminant(&eo),
                "error variant diverged"
            );
        }
        (o, z) => prop_assert!(
            false,
            "decoders diverged: owned {:?} vs zero-copy {:?}",
            o,
            z
        ),
    }
    Ok(())
}
