//! Per-connection byte buffers for a non-blocking socket.
//!
//! [`RecvBuf`] accumulates whatever the kernel hands over and exposes it
//! as one contiguous slice so `wcc_proto::zero::decode_frame` can borrow
//! frames out of it without copying; consumed prefixes compact lazily.
//! [`SendBuf`] is the mirror image: serialized replies queue here and
//! drain through partial writes as `EPOLLOUT` allows.

use std::io::{self, Read, Write};

/// Initial capacity for both buffer directions; one readiness round on a
/// keep-alive connection rarely moves more than this.
const INIT_CAP: usize = 4096;

/// Compact only once the dead prefix crosses this threshold, so a steady
/// stream of small frames does not memmove on every consume.
const COMPACT_AT: usize = 16 * 1024;

/// Receive side: a growable window of not-yet-decoded bytes.
#[derive(Debug)]
pub struct RecvBuf {
    bytes: Vec<u8>,
    /// Bytes before `start` are decoded-and-consumed, awaiting compaction.
    start: usize,
}

impl Default for RecvBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl RecvBuf {
    /// An empty buffer.
    pub fn new() -> RecvBuf {
        RecvBuf {
            bytes: Vec::with_capacity(INIT_CAP),
            start: 0,
        }
    }

    /// The undecoded bytes, contiguous.
    pub fn data(&self) -> &[u8] {
        &self.bytes[self.start..]
    }

    /// Number of undecoded bytes.
    pub fn len(&self) -> usize {
        self.bytes.len() - self.start
    }

    /// True when nothing is pending decode.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks the first `n` bytes of [`data`](Self::data) as decoded.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len());
        self.start += n;
        if self.start == self.bytes.len() {
            self.bytes.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.bytes.drain(..self.start);
            self.start = 0;
        }
    }

    /// Appends bytes directly (tests and loopback injection).
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.bytes.extend_from_slice(chunk);
    }

    /// Reads once from a non-blocking source into the buffer.
    ///
    /// Returns `Ok(n)` for `n` new bytes (`0` = peer EOF); `WouldBlock`
    /// and `Interrupted` pass through for the event loop to interpret.
    pub fn fill(&mut self, src: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; 8192];
        let n = src.read(&mut chunk)?;
        self.bytes.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

/// Send side: queued output draining through partial writes.
#[derive(Debug)]
pub struct SendBuf {
    bytes: Vec<u8>,
    /// Bytes before `pos` are already on the wire.
    pos: usize,
}

impl Default for SendBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl SendBuf {
    /// An empty buffer.
    pub fn new() -> SendBuf {
        SendBuf {
            bytes: Vec::with_capacity(INIT_CAP),
            pos: 0,
        }
    }

    /// Queues bytes behind whatever is still unsent.
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.bytes.extend_from_slice(chunk);
    }

    /// Bytes still waiting to go out.
    pub fn pending(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when fully drained.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Writes as much as the sink accepts right now.
    ///
    /// Returns `Ok(true)` once fully drained, `Ok(false)` if bytes remain
    /// (the connection should arm write interest); `WouldBlock` is
    /// absorbed into `Ok(false)` because it *is* the partial-write case.
    pub fn flush(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.bytes.len() {
            match sink.write(&self.bytes[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.bytes.clear();
        self.pos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts at most `cap` bytes per write, then signals
    /// `WouldBlock` until re-armed — the shape of a congested socket.
    struct Throttle {
        cap: usize,
        armed: bool,
        out: Vec<u8>,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.armed {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.armed = false;
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_buf_survives_partial_writes() {
        let mut sb = SendBuf::new();
        sb.push_bytes(b"hello, readiness world");
        let total = sb.pending();
        let mut sink = Throttle {
            cap: 5,
            armed: true,
            out: Vec::new(),
        };
        let mut rounds = 0;
        loop {
            match sb.flush(&mut sink).expect("io") {
                true => break,
                false => {
                    // Socket "became writable" again.
                    sink.armed = true;
                    rounds += 1;
                    assert!(rounds < 32, "flush never completed");
                }
            }
        }
        assert_eq!(sink.out, b"hello, readiness world");
        assert_eq!(total, sink.out.len());
        assert!(sb.is_empty());
    }

    #[test]
    fn send_buf_queues_behind_unsent_bytes() {
        let mut sb = SendBuf::new();
        sb.push_bytes(b"first ");
        let mut sink = Throttle {
            cap: 3,
            armed: true,
            out: Vec::new(),
        };
        assert!(!sb.flush(&mut sink).expect("io"));
        sb.push_bytes(b"second");
        sink.armed = true;
        sink.cap = 1024;
        assert!(sb.flush(&mut sink).expect("io"));
        assert_eq!(sink.out, b"first second");
    }

    #[test]
    fn recv_buf_compacts_and_preserves_tail() {
        let mut rb = RecvBuf::new();
        rb.push_bytes(b"aaaabbbb");
        assert_eq!(rb.data(), b"aaaabbbb");
        rb.consume(4);
        assert_eq!(rb.data(), b"bbbb");
        rb.push_bytes(b"cc");
        assert_eq!(rb.data(), b"bbbbcc");
        rb.consume(6);
        assert!(rb.is_empty());
        // Large dead prefix forces the compaction path.
        let big = vec![7u8; COMPACT_AT + 10];
        rb.push_bytes(&big);
        rb.consume(COMPACT_AT + 1);
        assert_eq!(rb.len(), 9);
        assert_eq!(rb.data(), &big[..9]);
    }

    #[test]
    fn recv_buf_fill_reports_eof_and_would_block() {
        struct Script(Vec<io::Result<Vec<u8>>>);
        impl Read for Script {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.0.pop() {
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(e)) => Err(e),
                    None => Ok(0),
                }
            }
        }
        let mut src = Script(vec![
            Err(io::ErrorKind::WouldBlock.into()),
            Ok(b"xy".to_vec()),
        ]);
        let mut rb = RecvBuf::new();
        assert_eq!(rb.fill(&mut src).expect("read"), 2);
        assert_eq!(rb.data(), b"xy");
        let err = rb.fill(&mut src).expect_err("would block");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(rb.fill(&mut src).expect("eof"), 0);
    }
}
