//! Scenario families: deterministic city-scale workload generators.
//!
//! The paper's evaluation stops at five single-origin 1997 traces. This
//! module grows the workload space along the axes ROADMAP item 2 names:
//! Zipf-popularity catalogs over federations of 50–100+ origins with 10⁵+
//! distinct clients, flash-crowd and breaking-news modifier storms (bursty
//! arrivals plus correlated write bursts on hot documents), diurnal
//! real-time feed workloads with per-request freshness deadlines (Mao et
//! al.), and archival TimeMap-style scan sweeps (Brunelle & Nelson).
//!
//! Every family is a pure function of `(config, seed)`: the same
//! determinism contract as [`synthetic::generate`], so families plug
//! directly into the fuzzer's oracle, the sharded-equivalence checks and
//! the trajectory bench.

use crate::modifier::{ModSchedule, Modification};
use crate::spec::TraceSpec;
use crate::synthetic;
use crate::Trace;
use rand::rngs::StdRng;
use rand::Rng;
use wcc_types::{ByteSize, ClientId, SimDuration, SimTime, Url};

/// The scenario families (ROADMAP item 2's "modern workload shapes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// A plain Zipf federation: 50–100+ origins, shared city-scale client
    /// population, per-origin Zipf catalogs, uniform modifier.
    ZipfFederation,
    /// One flash crowd: a large fraction of the hottest origin's requests
    /// collapse into a short window aimed at a handful of hot documents,
    /// with a correlated write burst on those documents.
    FlashCrowd,
    /// Several breaking-news events: each picks an origin, rapidly rewrites
    /// its hottest document, and steers that origin's readers toward it.
    BreakingNews,
    /// A strongly diurnal real-time feed workload where hot feeds update
    /// most often and every request carries a freshness deadline.
    RealTimeFeed,
    /// An archival crawler sweeping every document of every origin at a
    /// steady rate over light background traffic.
    ArchivalScan,
}

impl WorkloadFamily {
    /// Every family, in a fixed order (coverage guards iterate this).
    pub const ALL: [WorkloadFamily; 5] = [
        WorkloadFamily::ZipfFederation,
        WorkloadFamily::FlashCrowd,
        WorkloadFamily::BreakingNews,
        WorkloadFamily::RealTimeFeed,
        WorkloadFamily::ArchivalScan,
    ];

    /// The CLI/JSON name of the family.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::ZipfFederation => "zipf-federation",
            WorkloadFamily::FlashCrowd => "flash-crowd",
            WorkloadFamily::BreakingNews => "breaking-news",
            WorkloadFamily::RealTimeFeed => "real-time-feed",
            WorkloadFamily::ArchivalScan => "archival-scan",
        }
    }

    /// Looks a family up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<WorkloadFamily> {
        WorkloadFamily::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
    }
}

/// A fully parameterised family scenario: the federation spec plus the
/// modifier's mean file lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyConfig {
    /// Which generator shapes the workload.
    pub family: WorkloadFamily,
    /// The federation's calibration targets (`num_origins`, `origin_zipf`
    /// and the usual Table 2 knobs).
    pub spec: TraceSpec,
    /// Mean file lifetime driving the baseline (uniform) modifier.
    pub mean_lifetime: SimDuration,
}

impl FamilyConfig {
    /// The city-scale preset: a 64-origin federation with 1.2×10⁵ distinct
    /// clients — the acceptance configuration for the sharded engine and
    /// the memory-lean state layout.
    pub fn city(family: WorkloadFamily) -> FamilyConfig {
        let (amplitude, lifetime) = match family {
            WorkloadFamily::ZipfFederation => (0.5, SimDuration::from_days(10)),
            WorkloadFamily::FlashCrowd => (0.4, SimDuration::from_days(10)),
            WorkloadFamily::BreakingNews => (0.5, SimDuration::from_days(10)),
            WorkloadFamily::RealTimeFeed => (0.85, SimDuration::from_hours(6)),
            WorkloadFamily::ArchivalScan => (0.2, SimDuration::from_days(60)),
        };
        FamilyConfig {
            family,
            spec: TraceSpec {
                name: family.name(),
                duration: SimDuration::from_days(1),
                total_requests: 160_000,
                num_docs: 3_200,
                num_clients: 120_000,
                avg_doc_size: ByteSize::from_kib(16),
                doc_zipf: 0.9,
                client_zipf: 0.6,
                diurnal_amplitude: amplitude,
                default_lifetime: lifetime,
                num_origins: 64,
                origin_zipf: 0.7,
            },
            mean_lifetime: lifetime,
        }
    }

    /// A small preset for the fuzzer's scenario space and unit tests
    /// (3 origins, minutes of wall-clock trace).
    pub fn demo(family: WorkloadFamily) -> FamilyConfig {
        let mut cfg = FamilyConfig::city(family);
        cfg.spec.duration = SimDuration::from_hours(4);
        cfg.spec.total_requests = 300;
        cfg.spec.num_docs = 24;
        cfg.spec.num_clients = 150;
        cfg.spec.num_origins = 3;
        cfg.mean_lifetime = SimDuration::from_days(1);
        cfg
    }

    /// Proportionally smaller city scenario (origin count is kept; see
    /// [`TraceSpec::scaled_down`]).
    #[must_use]
    pub fn scaled_down(mut self, factor: u64) -> FamilyConfig {
        self.spec = self.spec.scaled_down(factor);
        self
    }

    /// The family's CLI/JSON name.
    pub fn name(&self) -> &'static str {
        self.family.name()
    }
}

/// A generated family scenario: one `(trace, schedule)` pair per origin,
/// ready for `Deployment::build_multi`, plus the family's freshness
/// contract when it has one.
#[derive(Debug, Clone)]
pub struct FamilyWorkload {
    /// Which family generated this workload.
    pub family: WorkloadFamily,
    /// One workload per origin; entry *i* is homed on `ServerId::new(i)`.
    pub workloads: Vec<(Trace, ModSchedule)>,
    /// Base freshness deadline for real-time families: a served document
    /// must be no staler than the requester's per-client deadline (see
    /// [`FamilyWorkload::deadline_for`]). `None` for families without
    /// freshness contracts.
    pub freshness_deadline: Option<SimDuration>,
}

impl FamilyWorkload {
    /// Total requests across all origins.
    pub fn total_requests(&self) -> u64 {
        self.workloads
            .iter()
            .map(|(t, _)| t.records.len() as u64)
            .sum()
    }

    /// Total trace records (same number — kept for symmetry with the
    /// deployment's memory model).
    pub fn total_records(&self) -> u64 {
        self.total_requests()
    }

    /// The per-client freshness deadline: clients spread deterministically
    /// over `[0.5, 1.5] ×` the base deadline (impatient tickers and patient
    /// dashboards coexist). `None` when the family has no freshness
    /// contract.
    pub fn deadline_for(&self, client: ClientId) -> Option<SimDuration> {
        let base = self.freshness_deadline?;
        let base_us = base.as_micros();
        let bucket = client.partition(101) as u64; // 0..=100
        Some(SimDuration::from_micros(
            base_us / 2 + bucket * base_us / 100,
        ))
    }

    /// Audits a replay's serve log against the freshness contract: a serve
    /// of `(url, client, trace_at, version)` violates it when the delivered
    /// version predates the document's version as of
    /// `trace_at − deadline_for(client)`. Mao et al.'s deadline semantics:
    /// bounded staleness per request, not per document.
    pub fn freshness_violations<I>(&self, serves: I) -> u64
    where
        I: IntoIterator<Item = (Url, ClientId, SimTime, SimTime)>,
    {
        if self.freshness_deadline.is_none() {
            return 0;
        }
        let mut violations = 0;
        for (url, client, trace_at, version) in serves {
            let Some(deadline) = self.deadline_for(client) else {
                continue;
            };
            let Some((_, mods)) = self.workloads.get(url.server().index() as usize) else {
                continue;
            };
            let floor =
                SimTime::from_micros(trace_at.as_micros().saturating_sub(deadline.as_micros()));
            if version < mods.version_at(url.doc(), floor) {
                violations += 1;
            }
        }
        violations
    }
}

/// Generates a family workload. Deterministic given `(config, seed)`.
pub fn generate(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    match cfg.family {
        WorkloadFamily::ZipfFederation => zipf_federation(cfg, seed),
        WorkloadFamily::FlashCrowd => flash_crowd(cfg, seed),
        WorkloadFamily::BreakingNews => breaking_news(cfg, seed),
        WorkloadFamily::RealTimeFeed => real_time_feed(cfg, seed),
        WorkloadFamily::ArchivalScan => archival_scan(cfg, seed),
    }
}

/// Per-origin baseline modifier: the paper's uniform-every-`N`-seconds
/// process, seeded independently per origin.
fn uniform_mods(cfg: &FamilyConfig, traces: &[Trace], seed: u64) -> Vec<ModSchedule> {
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            ModSchedule::generate(
                t.doc_count() as u32,
                cfg.mean_lifetime,
                cfg.spec.duration,
                seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9),
            )
        })
        .collect()
}

/// The origin's documents ranked by descending request count (ties by doc
/// id) — "hot" documents for storms and feeds.
fn popular_docs(trace: &Trace) -> Vec<u32> {
    let mut counts = vec![0u64; trace.doc_count()];
    for r in &trace.records {
        counts[r.url.doc() as usize] += 1;
    }
    let mut ranked: Vec<u32> = (0..trace.doc_count() as u32).collect();
    ranked.sort_by_key(|&d| (std::cmp::Reverse(counts[d as usize]), d));
    ranked
}

/// Merges two time-sorted modification lists into one sorted schedule.
fn merge_mods(num_docs: u32, a: Vec<Modification>, b: Vec<Modification>) -> ModSchedule {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() || ib < b.len() {
        let take_a = match (a.get(ia), b.get(ib)) {
            (Some(x), Some(y)) => x.at <= y.at,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            merged.push(a[ia]);
            ia += 1;
        } else {
            merged.push(b[ib]);
            ib += 1;
        }
    }
    ModSchedule::from_modifications(num_docs, merged)
}

fn zipf_federation(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    let traces = synthetic::generate_federation(&cfg.spec, seed);
    let mods = uniform_mods(cfg, &traces, seed ^ 0x21f0);
    FamilyWorkload {
        family: cfg.family,
        workloads: traces.into_iter().zip(mods).collect(),
        freshness_deadline: None,
    }
}

/// Fraction of the hot origin's requests pulled into the crowd window.
const CROWD_PULL: f64 = 0.45;
/// The crowd window: `[0.35, 0.40] ×` duration.
const CROWD_START: f64 = 0.35;
const CROWD_LEN: f64 = 0.05;
/// Write burst during the crowd: touches spread across the hot documents.
const CROWD_WRITES: u64 = 20;
/// How many hot documents the crowd converges on.
const CROWD_DOCS: usize = 4;

fn flash_crowd(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    let mut traces = synthetic::generate_federation(&cfg.spec, seed);
    let mut mods = uniform_mods(cfg, &traces, seed ^ 0x21f0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a5_c04d);

    // The crowd hits the federation's most popular origin.
    let hot = &mut traces[0];
    let hot_docs: Vec<u32> = popular_docs(hot).into_iter().take(CROWD_DOCS).collect();
    let duration_us = cfg.spec.duration.as_micros().max(1);
    let start = (duration_us as f64 * CROWD_START) as u64;
    let len = ((duration_us as f64 * CROWD_LEN) as u64).max(1);

    // Bursty arrival: a large fraction of the origin's requests collapse
    // into the window, aimed at the hot documents.
    for rec in &mut hot.records {
        if rng.gen::<f64>() < CROWD_PULL {
            rec.at = SimTime::from_micros(start + rng.gen_range(0..len));
            rec.url = Url::new(hot.server, hot_docs[rng.gen_range(0..hot_docs.len())]);
        }
    }
    hot.records.sort_by_key(|r| r.at);
    debug_assert!(hot.validate().is_ok());

    // Correlated write burst: the hot documents are rewritten repeatedly
    // while the crowd reads them (this is what stresses invalidation
    // fan-out — every burst write hits a huge site list).
    let burst: Vec<Modification> = (0..CROWD_WRITES)
        .map(|k| Modification {
            at: SimTime::from_micros(start + (k * len) / CROWD_WRITES),
            doc: hot_docs[(k as usize) % hot_docs.len()],
        })
        .collect();
    let base = std::mem::replace(&mut mods[0], ModSchedule::none(1));
    mods[0] = merge_mods(
        traces[0].doc_count() as u32,
        base.modifications().to_vec(),
        burst,
    );

    FamilyWorkload {
        family: cfg.family,
        workloads: traces.into_iter().zip(mods).collect(),
        freshness_deadline: None,
    }
}

/// Breaking-news events per day of trace duration.
const NEWS_EVENTS_PER_DAY: u64 = 4;
/// Writes per event (the story is updated as it develops).
const NEWS_WRITES: u64 = 8;
/// The write burst length and the reader-interest window.
const NEWS_WRITE_WINDOW_MINS: u64 = 10;
const NEWS_READ_WINDOW_MINS: u64 = 45;
/// Probability that a request in the interest window goes to the story.
const NEWS_BOOST: f64 = 0.6;

fn breaking_news(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    let mut traces = synthetic::generate_federation(&cfg.spec, seed);
    let mods = uniform_mods(cfg, &traces, seed ^ 0x21f0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbead_11e5);

    let duration_us = cfg.spec.duration.as_micros().max(1);
    let days = (duration_us as f64 / 86_400_000_000.0).max(0.25);
    let events = ((days * NEWS_EVENTS_PER_DAY as f64) as u64).max(2);
    let write_window = SimDuration::from_mins(NEWS_WRITE_WINDOW_MINS).as_micros();
    let read_window = SimDuration::from_mins(NEWS_READ_WINDOW_MINS).as_micros();

    // Collect each event's story writes per origin, then merge them into
    // that origin's baseline schedule.
    let mut extra: Vec<Vec<Modification>> = vec![Vec::new(); traces.len()];
    for e in 0..events {
        // Events spread evenly through the day; each hits a random origin's
        // hottest document.
        let t0 = ((e + 1) * duration_us) / (events + 1);
        let origin = rng.gen_range(0..traces.len());
        let story = popular_docs(&traces[origin])[0];
        for w in 0..NEWS_WRITES {
            extra[origin].push(Modification {
                at: SimTime::from_micros(t0 + (w * write_window) / NEWS_WRITES),
                doc: story,
            });
        }
        // Reader interest: requests at this origin inside the read window
        // swing toward the story.
        let trace = &mut traces[origin];
        let server = trace.server;
        for rec in &mut trace.records {
            let at = rec.at.as_micros();
            if at >= t0 && at < t0 + read_window && rng.gen::<f64>() < NEWS_BOOST {
                rec.url = Url::new(server, story);
            }
        }
    }

    let workloads = traces
        .into_iter()
        .zip(mods)
        .zip(extra)
        .map(|((trace, base), mut burst)| {
            burst.sort_by_key(|m| m.at);
            let docs = trace.doc_count() as u32;
            let merged = merge_mods(docs, base.modifications().to_vec(), burst);
            (trace, merged)
        })
        .collect();
    FamilyWorkload {
        family: cfg.family,
        workloads,
        freshness_deadline: None,
    }
}

/// Base freshness deadline for real-time feeds (per-client spread applies
/// on top — see [`FamilyWorkload::deadline_for`]).
const FEED_DEADLINE_MINS: u64 = 10;

fn real_time_feed(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    let traces = synthetic::generate_federation(&cfg.spec, seed);
    // Feeds update often and update *hot*: the modifier draws documents
    // from the same Zipf popularity ranking readers use, instead of the
    // paper's uniform pick — popular tickers churn fastest.
    let workloads = traces
        .into_iter()
        .enumerate()
        .map(|(i, trace)| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0xfeed_f00d ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9),
            );
            let docs = trace.doc_count() as u32;
            let ranked = popular_docs(&trace);
            let dist = crate::zipf::Zipf::new(ranked.len(), cfg.spec.doc_zipf);
            let period = cfg.mean_lifetime.div(docs as u64);
            let mut mods = Vec::new();
            if !period.is_zero() {
                let mut t = SimTime::ZERO + period;
                while t <= SimTime::ZERO + cfg.spec.duration {
                    mods.push(Modification {
                        at: t,
                        doc: ranked[dist.sample(&mut rng)],
                    });
                    t += period;
                }
            }
            let schedule = ModSchedule::from_modifications(docs, mods);
            (trace, schedule)
        })
        .collect();
    FamilyWorkload {
        family: cfg.family,
        workloads,
        freshness_deadline: Some(SimDuration::from_mins(FEED_DEADLINE_MINS)),
    }
}

/// The archival crawler's stable client id (outside the generator's
/// dotted-quad space, so it never collides with a synthetic client).
pub const SCAN_CLIENT: ClientId = ClientId::from_raw(0xE0E0_5CA1);

fn archival_scan(cfg: &FamilyConfig, seed: u64) -> FamilyWorkload {
    // Background traffic cedes the scan's request budget.
    let mut spec = cfg.spec.clone();
    let origins = spec.num_origins.max(1) as u64;
    let scan_docs = (spec.num_docs.max(spec.num_origins) as u64 / origins).max(1) * origins;
    spec.total_requests = spec.total_requests.saturating_sub(scan_docs).max(1);
    let mut traces = synthetic::generate_federation(&spec, seed);
    let mods = uniform_mods(cfg, &traces, seed ^ 0x21f0);

    // The crawler sweeps origin by origin, document by document, at a
    // steady pace across the whole duration (TimeMap-style enumeration).
    let duration_us = spec.duration.as_micros().max(1);
    let step = (duration_us / scan_docs.max(1)).max(1);
    let mut k = 0u64;
    for trace in &mut traces {
        let server = trace.server;
        let docs = trace.doc_count() as u32;
        for doc in 0..docs {
            trace.records.push(crate::TraceRecord {
                at: SimTime::from_micros((k * step).min(duration_us - 1)),
                client: SCAN_CLIENT,
                url: Url::new(server, doc),
            });
            k += 1;
        }
        trace.records.sort_by_key(|r| r.at);
        debug_assert!(trace.validate().is_ok());
    }

    FamilyWorkload {
        family: cfg.family,
        workloads: traces.into_iter().zip(mods).collect(),
        freshness_deadline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::ServerId;

    fn demo(family: WorkloadFamily) -> FamilyWorkload {
        generate(&FamilyConfig::demo(family), 7)
    }

    #[test]
    fn every_family_generates_valid_sorted_workloads() {
        for family in WorkloadFamily::ALL {
            let w = demo(family);
            assert_eq!(w.family, family);
            assert!(!w.workloads.is_empty(), "{family:?}");
            for (i, (trace, mods)) in w.workloads.iter().enumerate() {
                assert_eq!(trace.server, ServerId::new(i as u32), "{family:?}[{i}]");
                assert!(trace.validate().is_ok(), "{family:?}[{i}]");
                assert!(
                    mods.modifications().windows(2).all(|m| m[0].at <= m[1].at),
                    "{family:?}[{i}] mods unsorted"
                );
                assert!(
                    mods.modifications()
                        .iter()
                        .all(|m| (m.doc as usize) < trace.doc_count()),
                    "{family:?}[{i}] mod out of range"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for family in WorkloadFamily::ALL {
            let cfg = FamilyConfig::demo(family);
            let a = generate(&cfg, 3);
            let b = generate(&cfg, 3);
            let c = generate(&cfg, 4);
            assert_eq!(
                format!("{:?}", a.workloads),
                format!("{:?}", b.workloads),
                "{family:?}"
            );
            assert_ne!(
                format!("{:?}", a.workloads),
                format!("{:?}", c.workloads),
                "{family:?}"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for family in WorkloadFamily::ALL {
            assert_eq!(WorkloadFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(
            WorkloadFamily::from_name("FLASH-CROWD"),
            Some(WorkloadFamily::FlashCrowd)
        );
        assert_eq!(WorkloadFamily::from_name("zork"), None);
    }

    #[test]
    fn city_preset_is_federation_scale() {
        let cfg = FamilyConfig::city(WorkloadFamily::FlashCrowd);
        assert_eq!(cfg.spec.num_origins, 64);
        assert!(cfg.spec.num_clients >= 100_000);
        let reduced = cfg.scaled_down(20);
        assert_eq!(reduced.spec.num_origins, 64, "origins survive scaling");
        assert!(reduced.spec.num_docs >= 64);
    }

    #[test]
    fn real_time_feed_carries_deadlines_and_audits() {
        let w = demo(WorkloadFamily::RealTimeFeed);
        let base = w.freshness_deadline.expect("feed has a deadline");
        let d = w.deadline_for(ClientId::from_raw(42)).unwrap();
        assert!(d >= base.div(2) && d.as_micros() <= base.as_micros() * 3 / 2 + 1);
        // A fresh serve passes; an ancient version trips the audit.
        let (trace, mods) = &w.workloads[0];
        let url = trace.records[0].url;
        let late = SimTime::ZERO + w.workloads[0].0.duration;
        let current = mods.version_at(url.doc(), late);
        assert_eq!(
            w.freshness_violations([(url, ClientId::from_raw(42), late, current)]),
            0
        );
        if mods.final_version(url.doc()) > SimTime::ZERO {
            // Serving the birth version at the end violates any deadline.
            assert_eq!(
                w.freshness_violations([(url, ClientId::from_raw(42), late, SimTime::ZERO)]),
                1
            );
        }
        // Families without a contract never report violations.
        let plain = demo(WorkloadFamily::ZipfFederation);
        assert_eq!(plain.deadline_for(ClientId::from_raw(1)), None);
        assert_eq!(
            plain.freshness_violations([(url, ClientId::from_raw(1), late, SimTime::ZERO)]),
            0
        );
    }

    #[test]
    fn archival_scan_covers_every_document() {
        let w = demo(WorkloadFamily::ArchivalScan);
        for (i, (trace, _)) in w.workloads.iter().enumerate() {
            let mut seen = vec![false; trace.doc_count()];
            for r in trace.records.iter().filter(|r| r.client == SCAN_CLIENT) {
                seen[r.url.doc() as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "origin {i}: scan missed documents");
        }
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let cfg = FamilyConfig::demo(WorkloadFamily::FlashCrowd);
        let w = generate(&cfg, 7);
        let duration = cfg.spec.duration.as_micros();
        let (start, len) = (
            (duration as f64 * CROWD_START) as u64,
            (duration as f64 * CROWD_LEN) as u64,
        );
        let hot = &w.workloads[0].0;
        let inside = hot
            .records
            .iter()
            .filter(|r| r.at.as_micros() >= start && r.at.as_micros() < start + len)
            .count();
        assert!(
            inside as f64 > hot.records.len() as f64 * CROWD_PULL * 0.8,
            "crowd window holds {inside} of {}",
            hot.records.len()
        );
        // The correlated write burst landed inside the window too.
        let writes_inside = w.workloads[0]
            .1
            .modifications()
            .iter()
            .filter(|m| m.at.as_micros() >= start && m.at.as_micros() < start + len)
            .count();
        assert!(writes_inside as u64 >= CROWD_WRITES);
    }
}
