//! Repo lint driver: scans the workspace sources with the deny-by-default
//! token-level rules in `wcc_audit::lint` (the `wcc-lint` engine) and
//! exits non-zero on any finding — including stale waiver markers.
//!
//! Run from anywhere in the workspace:
//!
//! ```text
//! cargo run --bin xtask-lint             # human-readable diagnostics
//! cargo run --bin xtask-lint -- --json   # machine output for CI artifacts
//! cargo run --bin xtask-lint -- --waivers # audit waiver markers only
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut waivers_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--waivers" => waivers_only = true,
            other => {
                eprintln!("xtask-lint: unknown argument {other:?} (try --json, --waivers)");
                return ExitCode::from(2);
            }
        }
    }
    // The binary lives in the workspace root package, so its manifest dir
    // IS the workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut findings = match wcc_audit::lint::scan_tree(&root) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("xtask-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if waivers_only {
        findings.retain(|d| d.rule == "stale-waiver");
    }
    if json {
        print!("{}", wcc_audit::lint::to_json(&findings));
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if findings.is_empty() {
        println!(
            "xtask-lint: clean{}",
            if waivers_only {
                " (no stale waivers)"
            } else {
                ""
            }
        );
        return ExitCode::SUCCESS;
    }
    for d in &findings {
        println!("{d}");
    }
    eprintln!("xtask-lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
