//! Reproducibility: everything — trace generation, the modifier, the
//! replay, the report — is a pure function of (config, seed).

use wcc_core::ProtocolKind;
use wcc_replay::{run_batch, run_experiment, run_trio, run_trio_jobs, ExperimentConfig};
use wcc_traces::{synthetic, ModSchedule, TraceSpec};
use wcc_types::SimDuration;

#[test]
fn traces_are_bit_identical_per_seed() {
    for spec in TraceSpec::all() {
        let spec = spec.scaled_down(100);
        let a = synthetic::generate(&spec, 5);
        let b = synthetic::generate(&spec, 5);
        assert_eq!(a.records, b.records, "{}", spec.name);
        assert_eq!(a.doc_sizes, b.doc_sizes, "{}", spec.name);
        let c = synthetic::generate(&spec, 6);
        assert_ne!(a.records, c.records, "{}", spec.name);
    }
}

#[test]
fn modifier_schedules_are_deterministic() {
    let a = ModSchedule::generate(500, SimDuration::from_days(3), SimDuration::from_days(1), 9);
    let b = ModSchedule::generate(500, SimDuration::from_days(3), SimDuration::from_days(1), 9);
    assert_eq!(a.modifications(), b.modifications());
}

#[test]
fn full_replays_are_bit_identical_per_seed() {
    for kind in ProtocolKind::ALL {
        let cfg = ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(80))
            .protocol(kind)
            .seed(33)
            .build();
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.raw.total_messages, b.raw.total_messages, "{kind}");
        assert_eq!(a.raw.total_bytes, b.raw.total_bytes, "{kind}");
        assert_eq!(a.raw.hits, b.raw.hits, "{kind}");
        assert_eq!(a.raw.stale_hits, b.raw.stale_hits, "{kind}");
        assert_eq!(a.raw.latency.mean(), b.raw.latency.mean(), "{kind}");
        assert_eq!(a.raw.latency.max(), b.raw.latency.max(), "{kind}");
        assert_eq!(a.raw.server_busy, b.raw.server_busy, "{kind}");
        assert_eq!(
            a.raw.sitelist.total_entries, b.raw.sitelist.total_entries,
            "{kind}"
        );
        assert_eq!(a.raw.wall_duration, b.raw.wall_duration, "{kind}");
    }
}

#[test]
fn run_trio_twice_is_byte_identical() {
    // The fuzzer's determinism oracle in stronger form: not just matched
    // counters, but byte-identical Debug renderings of the whole report
    // trio (every counter, summary and audit verdict).
    let options = wcc_httpsim::DeploymentOptions {
        audit: true,
        ..Default::default()
    };
    let cfg = ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(80))
        .seed(77)
        .options(options)
        .build();
    let a = run_trio(&cfg);
    let b = run_trio(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            format!("{x:?}"),
            format!("{y:?}"),
            "trio replay diverged for {}",
            x.protocol
        );
    }
}

#[test]
fn parallel_trio_is_byte_identical_to_sequential() {
    // The fan-out pool's core guarantee: job count changes scheduling,
    // never results. Audit on, so the comparison covers every verdict.
    let options = wcc_httpsim::DeploymentOptions {
        audit: true,
        ..Default::default()
    };
    let cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(80))
        .seed(21)
        .options(options)
        .build();
    let sequential = run_trio_jobs(&cfg, Some(1));
    let parallel = run_trio_jobs(&cfg, Some(4));
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "parallel trio diverged for {}",
            s.protocol
        );
    }
}

#[test]
fn parallel_batch_is_byte_identical_to_sequential() {
    // Eight mixed configs — two traces, all four seeds past the worker
    // count — through the pool at 1 and 4 jobs.
    let configs: Vec<ExperimentConfig> = [TraceSpec::epa(), TraceSpec::sdsc()]
        .into_iter()
        .flat_map(|spec| {
            [
                (ProtocolKind::AdaptiveTtl, 3u64),
                (ProtocolKind::Invalidation, 4),
                (ProtocolKind::PollEveryTime, 5),
                (ProtocolKind::LeaseInvalidation, 6),
            ]
            .map(|(kind, seed)| {
                ExperimentConfig::builder(spec.clone().scaled_down(120))
                    .protocol(kind)
                    .seed(seed)
                    .build()
            })
        })
        .collect();
    let sequential = run_batch(&configs, Some(1));
    let parallel = run_batch(&configs, Some(4));
    assert_eq!(sequential.len(), 8);
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "batch config {i} diverged under the pool"
        );
    }
}

#[test]
fn parallel_fuzzing_is_byte_identical_to_sequential() {
    // The fuzz loop fans scenario evaluation out in blocks; the whole
    // summary (counters, per-protocol tallies, early-stop point) must not
    // depend on the job count.
    let outcome_at = |jobs: usize| {
        wcc_fuzz::fuzz(&wcc_fuzz::FuzzConfig {
            iters: 6,
            seed: 11,
            jobs,
            ..wcc_fuzz::FuzzConfig::default()
        })
    };
    let sequential = outcome_at(1);
    let parallel = outcome_at(4);
    assert_eq!(sequential.to_string(), parallel.to_string());
    assert!(sequential.passed(), "corpus slice failed:\n{sequential}");
}

#[test]
fn tracing_does_not_perturb_replay() {
    // The observability layer's core guarantee: span recording is
    // write-only, so a traced replay is byte-identical to an untraced one.
    let cfg = |trace: bool| {
        let options = wcc_httpsim::DeploymentOptions {
            trace,
            audit: true,
            ..Default::default()
        };
        ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(80))
            .protocol(ProtocolKind::Invalidation)
            .mean_lifetime(SimDuration::from_secs(3600))
            .seed(33)
            .options(options)
            .build()
    };
    let untraced = run_experiment(&cfg(false));
    let traced = run_experiment(&cfg(true));
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
}

#[test]
fn trace_log_is_recorded_and_round_trips_as_jsonl() {
    let options = wcc_httpsim::DeploymentOptions {
        trace: true,
        ..Default::default()
    };
    let cfg = ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(80))
        .protocol(ProtocolKind::Invalidation)
        .mean_lifetime(SimDuration::from_secs(3600))
        .seed(33)
        .options(options)
        .build();
    let (trace, mods) = wcc_replay::experiment::materialise(&cfg);
    let mut dep = wcc_httpsim::Deployment::build(&trace, &mods, &cfg.protocol, cfg.options.clone());
    dep.run();
    let log = dep.trace_log();
    assert!(!log.is_empty(), "traced run must record spans");
    // Both lifetimes appear, and the dump parses back losslessly.
    assert!(log.iter().any(|e| e.kind == wcc_obs::SpanKind::Request));
    assert!(log
        .iter()
        .any(|e| e.kind == wcc_obs::SpanKind::Invalidation));
    assert!(log.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
    let text = wcc_obs::to_jsonl(&log);
    assert_eq!(wcc_obs::from_jsonl(&text).unwrap(), log);
}

mod sharded_equivalence {
    //! The sharded engine's core guarantee, property-tested: for any
    //! fuzz-derived scenario — including sampled crash / recover /
    //! partition fault plans — running the deployment on `N` shards is
    //! byte-identical to the sequential engine, for every interesting
    //! shard count (1 = the fallback path, 2/4 = even splits, 7 = more
    //! shards than most deployments have busy nodes).

    use proptest::prelude::*;
    use wcc_fuzz::{scenario_seed, sharded_matches_sequential, Scenario};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn sharded_replay_matches_sequential(iter in 0u64..4096) {
            let seed = scenario_seed(0xD1CE, iter);
            let scenario = Scenario::generate(seed);
            for shards in [1usize, 2, 4, 7] {
                let outcome = sharded_matches_sequential(&scenario, shards);
                prop_assert!(
                    outcome.is_ok(),
                    "seed {seed:#018x} diverged at {shards} shard(s): {}",
                    outcome.unwrap_err()
                );
            }
        }
    }
}

mod family_sharded_equivalence {
    //! The same guarantee for multi-origin scenario families: a federation
    //! workload sharded at {1, 4, 8, 16} — the fallback path, an even
    //! split, the acceptance shard count, and more shards than origins in
    //! most sampled scenarios — is byte-identical to the sequential engine.

    use proptest::prelude::*;
    use wcc_fuzz::{scenario_seed, sharded_matches_sequential, Scenario};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn family_replay_matches_sequential_at_high_shard_counts(iter in 0u64..4096) {
            // About one seed in four samples a family scenario; walk
            // forward deterministically so every case exercises one.
            let mut step = iter;
            let scenario = loop {
                let s = Scenario::generate(scenario_seed(0xFA41, step));
                if s.family.is_some() { break s; }
                step += 1;
            };
            for shards in [1usize, 4, 8, 16] {
                let outcome = sharded_matches_sequential(&scenario, shards);
                prop_assert!(
                    outcome.is_ok(),
                    "family seed {:#018x} ({}) diverged at {shards} shard(s): {}",
                    scenario.seed,
                    scenario.summary(),
                    outcome.unwrap_err()
                );
            }
        }
    }
}

#[test]
fn largest_federation_double_run_is_byte_identical() {
    // The biggest federation the family layer ships — 64 origins sharing a
    // 120 000-client pool — generated and replayed twice. Request count is
    // reduced from the city preset so the debug-mode double run stays
    // fast; the client pool and origin fan-out (what this test guards)
    // stay at full scale.
    use wcc_core::ProtocolConfig;
    use wcc_httpsim::{Deployment, DeploymentOptions};
    use wcc_traces::family::{self, FamilyConfig, WorkloadFamily};

    let mut cfg = FamilyConfig::city(WorkloadFamily::FlashCrowd);
    cfg.spec.total_requests = 16_000;
    let a = family::generate(&cfg, 2026);
    let b = family::generate(&cfg, 2026);
    assert_eq!(a.workloads.len(), 64);
    for ((trace_a, mods_a), (trace_b, mods_b)) in a.workloads.iter().zip(&b.workloads) {
        assert_eq!(trace_a.records, trace_b.records, "{}", trace_a.name);
        assert_eq!(mods_a.modifications(), mods_b.modifications());
    }

    let protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let run = || {
        let mut dep =
            Deployment::build_multi(&a.workloads, &protocol, DeploymentOptions::default());
        dep.run();
        format!("{:?}", dep.collect())
    };
    assert_eq!(
        run(),
        run(),
        "double replay of the largest federation diverged"
    );
}

#[test]
fn different_seeds_differ() {
    let base = |seed| {
        run_experiment(
            &ExperimentConfig::builder(TraceSpec::epa().scaled_down(80))
                .protocol(ProtocolKind::Invalidation)
                .seed(seed)
                .build(),
        )
    };
    let a = base(1);
    let b = base(2);
    // Same shape, different details.
    assert_eq!(a.raw.requests, b.raw.requests);
    assert_ne!(
        (a.raw.total_messages, a.raw.total_bytes),
        (b.raw.total_messages, b.raw.total_bytes)
    );
}
