//! The simulated Harvest deployment: the paper's testbed as DES actors.
//!
//! The paper's experimental setup (§5.1) is five workstations on a 100 Mb/s
//! Ethernet: a *pseudo-server* running NCSA httpd plus the Harvest
//! accelerator, four *pseudo-clients* each running a Harvest proxy and a
//! trace-driver program, a *modifier* process on the server machine, and a
//! *time coordinator* that runs the replay "in lock step for every five
//! minutes". This crate reproduces each of those as a [`wcc_simnet::Node`]:
//!
//! * [`OriginNode`] — origin server + accelerator: serves `200`/`304`,
//!   maintains the invalidation table via
//!   [`ServerConsistency`](wcc_core::ServerConsistency), detects changes via
//!   the modifier's `NOTIFY` check-ins, fans out `INVALIDATE`s (inline or
//!   through a decoupled sender), retries unacknowledged invalidations, and
//!   accounts CPU/disk per the [`CostModel`];
//! * [`ProxyNode`] — a pseudo-client: a Harvest proxy (cache +
//!   [`ProxyPolicy`](wcc_core::ProxyPolicy)) plus the sequential trace
//!   driver that issues its partition of the trace and measures per-request
//!   latency;
//! * [`ModifierNode`] — touches one random file every `N` seconds of trace
//!   time and checks it in;
//! * [`CoordinatorNode`] — broadcasts the lock-step windows;
//! * [`InvalSenderNode`] — the decoupled invalidation sender the paper
//!   suggests ("a more fine-tuned implementation would have a separate
//!   process sending the invalidation messages"), used by ablation A1.
//!
//! ## Two clocks
//!
//! The replay is **time-compressed**, exactly like the paper's: within each
//! window, drivers issue their requests back-to-back and only processing,
//! queueing and wire delays advance the DES ("wall") clock. Consistency
//! logic — TTL ages, lease expiries, document mtimes — runs on **trace
//! time**, which travels inside the messages (the `Date` header equivalent),
//! mirroring the coordinator's broadcast simulated time. Latency, CPU
//! utilisation and disk rates are wall-clock quantities; freshness is a
//! trace-clock quantity.
//!
//! Use [`Deployment`] to assemble everything:
//!
//! ```
//! use wcc_core::{ProtocolConfig, ProtocolKind};
//! use wcc_traces::{synthetic, ModSchedule, TraceSpec};
//! use wcc_httpsim::{Deployment, DeploymentOptions};
//!
//! let spec = TraceSpec::epa().scaled_down(500);
//! let trace = synthetic::generate(&spec, 1);
//! let mods = ModSchedule::generate(spec.num_docs, spec.default_lifetime,
//!                                  spec.duration, 1);
//! let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
//! let mut deployment = Deployment::build(
//!     &trace, &mods, &cfg, DeploymentOptions::default());
//! deployment.run();
//! let report = deployment.collect();
//! assert_eq!(report.requests, trace.records.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod cost;
pub mod deployment;
pub mod modifier;
pub mod origin;
pub mod parent;
pub mod proposer;
pub mod proxy;
pub mod sender;

pub use coord::CoordinatorNode;
pub use cost::CostModel;
pub use deployment::{
    CacheSharing, ChangeDetection, Deployment, DeploymentMemory, DeploymentOptions, InvalSendMode,
    ParentSummary, ProposerReport, RawReport, ServeEvent, Topology,
};
pub use modifier::ModifierNode;
pub use origin::OriginNode;
pub use parent::{ParentCounters, ParentNode};
pub use proposer::{Proposer, ProposerStats};
pub use proxy::ProxyNode;
pub use sender::InvalSenderNode;

use wcc_proto::Message;
use wcc_types::{ByteSize, ClientId, Url};

/// The message type carried by the deployment's simulation: protocol
/// traffic plus one internal job type for the decoupled invalidation sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimMsg {
    /// Real protocol traffic (HTTP + coordinator control).
    Net(Message),
    /// Origin → decoupled sender: "fan `INVALIDATE <url>` out to these
    /// clients". Local IPC on the server machine; not network traffic.
    Dispatch {
        /// The modified document.
        url: Url,
        /// Invalidation recipients.
        clients: Vec<ClientId>,
    },
}

impl SimMsg {
    /// The accounted wire size (local dispatch jobs are free).
    pub fn wire_size(&self) -> ByteSize {
        match self {
            SimMsg::Net(m) => m.wire_size(),
            SimMsg::Dispatch { .. } => ByteSize::ZERO,
        }
    }
}

impl From<Message> for SimMsg {
    fn from(m: Message) -> SimMsg {
        SimMsg::Net(m)
    }
}
