//! Token-level static analysis for the workspace: the engine behind
//! `cargo run --bin xtask-lint`.
//!
//! A std-only Rust [`lexer`] produces a lossless token stream; the rules
//! run on token *sequences* (never inside strings, comments, or char
//! literals) with `#[cfg(test)]` masking by real item extent. Deny by
//! default, allow by exception:
//!
//! * **wall-clock** — no `SystemTime::now` / `Instant::now` outside the
//!   `WallClock` abstraction and the bench-trajectory timer.
//! * **hot-path-hasher** — no default SipHash maps in the replay hot path.
//! * **unwrap** — no `.unwrap()` / `.expect(` in protocol-crate code.
//! * **sleep** — no `thread::sleep` under the simulated clock.
//! * **todo** — no `todo!` / `unimplemented!` anywhere, tests included.
//! * **url-path-alloc** — no allocating `Url::path()` in hot crates.
//! * **obs-registry** — no ad-hoc atomic counters in the TCP prototype.
//! * **map-iteration-order** — no unordered map/set iteration whose order
//!   can reach replay-visible output (see [`order`] for the allowlist).
//! * **wire-exhaustiveness** — every dispatch over the wire enums names
//!   every variant (see [`wire`]).
//! * **index-panic** — no `v[idx]` on `Vec`s in protocol crates.
//!
//! A finding can be waived with a `// xtask-lint: allow(<rule>)` comment
//! on the offending line; the built-in waiver audit reports a
//! **stale-waiver** finding for any marker whose line no longer triggers
//! its rule.

use std::fmt;
use std::path::Path;

mod engine;
pub mod lexer;
mod order;
mod rules;
mod waiver;
mod wire;

use engine::SourceFile;

pub(crate) const STALE_WAIVER_RULE: &str = "stale-waiver";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// What to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Scans one source file with every per-file rule, waivers applied.
/// `path` must be workspace-relative with forward slashes (it selects
/// which rules apply). Cross-file knowledge (enum declarations, bindings
/// declared in sibling files) is limited to what `source` itself declares;
/// [`scan_tree`] provides the whole-workspace view.
pub fn scan_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, source);
    let mut reg = order::Registry::default();
    order::collect_bindings(&file, &mut reg);
    let defs = wire::enum_defs(&file);
    let mut findings = scan_file(&file, &reg, &defs);
    apply_waivers(&file, &mut findings);
    sort_findings(&mut findings);
    findings
}

/// Audits the waiver markers of one source file against its rule findings:
/// returns one `stale-waiver` diagnostic per marker that suppresses
/// nothing (or names an unknown rule).
pub fn audit_waivers_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, source);
    let mut reg = order::Registry::default();
    order::collect_bindings(&file, &mut reg);
    let defs = wire::enum_defs(&file);
    let findings = scan_file(&file, &reg, &defs);
    let mut stale = audit_file_waivers(&file, &findings);
    sort_findings(&mut stale);
    stale
}

/// Scans a set of in-memory files as one workspace: binding registries
/// are shared per crate, enum declarations are shared globally, and the
/// waiver audit runs across the whole set. `files` holds
/// `(workspace-relative path, source)` pairs.
pub fn scan_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let parsed: Vec<SourceFile<'_>> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();
    // Pass 1: per-crate binding registries and global enum declarations.
    let mut registries: std::collections::BTreeMap<&str, order::Registry> =
        std::collections::BTreeMap::new();
    let mut defs = Vec::new();
    for file in &parsed {
        order::collect_bindings(
            file,
            registries.entry(order::crate_key(file.path)).or_default(),
        );
        defs.extend(wire::enum_defs(file));
    }
    let empty = order::Registry::default();
    // Pass 2: rules, with waivers applied.
    let mut findings = Vec::new();
    for file in &parsed {
        let reg = registries
            .get(order::crate_key(file.path))
            .unwrap_or(&empty);
        let mut file_findings = scan_file(file, reg, &defs);
        // The audit compares markers against *unwaived* findings.
        let stale = audit_file_waivers(file, &file_findings);
        apply_waivers(file, &mut file_findings);
        findings.extend(file_findings);
        findings.extend(stale);
    }
    sort_findings(&mut findings);
    findings
}

/// Scans the workspace rooted at `root`: `src/` and every `crates/*/src/`.
/// Vendored shims are never scanned. Returns diagnostics (rule findings
/// plus stale waivers) sorted by path, line, and rule.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut paths)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let member_src = member.join("src");
            if member_src.is_dir() {
                collect_rs(&member_src, &mut paths)?;
            }
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for file in paths {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(scan_files(&files))
}

/// Renders diagnostics as stable machine-readable JSON for CI artifacts.
pub fn to_json(findings: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"schema\": \"wcc-lint/1\",\n  \"findings\": [");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        json_str(&mut out, &d.path);
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": ");
        json_str(&mut out, d.rule);
        out.push_str(", \"message\": ");
        json_str(&mut out, &d.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// All rule findings for one parsed file (waivers not yet applied).
fn scan_file(
    file: &SourceFile<'_>,
    reg: &order::Registry,
    defs: &[wire::EnumDef],
) -> Vec<Diagnostic> {
    let mut findings = rules::scan_seq_rules(file);
    findings.extend(order::scan(file, reg));
    findings.extend(wire::check_matches(file, defs));
    findings
}

/// Drops findings whose line carries a matching waiver marker.
fn apply_waivers(file: &SourceFile<'_>, findings: &mut Vec<Diagnostic>) {
    let waivers = waiver::waivers(file);
    if waivers.is_empty() {
        return;
    }
    findings.retain(|d| !waivers.iter().any(|w| w.line == d.line && w.rule == d.rule));
}

/// Stale-waiver diagnostics: markers that suppress no (unwaived) finding.
fn audit_file_waivers(file: &SourceFile<'_>, findings: &[Diagnostic]) -> Vec<Diagnostic> {
    let known = rules::known_rules();
    waiver::waivers(file)
        .into_iter()
        .filter_map(|w| {
            let message = if !known.contains(&w.rule.as_str()) {
                format!("waiver names unknown rule `{}`; remove it", w.rule)
            } else if findings
                .iter()
                .any(|d| d.line == w.line && d.rule == w.rule)
            {
                return None; // live
            } else {
                format!(
                    "stale waiver: line {} no longer triggers rule `{}`; remove the marker",
                    w.line, w.rule
                )
            };
            Some(Diagnostic {
                path: file.path.to_string(),
                line: w.line,
                rule: STALE_WAIVER_RULE,
                message,
            })
        })
        .collect()
}

fn sort_findings(findings: &mut [Diagnostic]) {
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests;
