//! The network model: links, latency, bandwidth, partitions.

use wcc_types::{ByteSize, FxHashMap, FxHashSet, NodeId, SimDuration};

/// The latency/bandwidth parameters of one (directed) link.
///
/// Transfer time for a message of `n` bytes is
/// `latency + n / bandwidth_bytes_per_sec` — a propagation delay plus a
/// serialisation delay, the standard first-order model.
///
/// # Examples
///
/// ```
/// use wcc_simnet::LinkSpec;
/// use wcc_types::{ByteSize, SimDuration};
///
/// // A 100 Mb/s Ethernet hop with 0.3 ms latency (the paper's testbed).
/// let link = LinkSpec::new(SimDuration::from_micros(300), 100_000_000 / 8);
/// let t = link.transfer_time(ByteSize::from_kib(12));
/// assert!(t > SimDuration::from_micros(300));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    latency: SimDuration,
    bandwidth_bytes_per_sec: u64,
}

impl LinkSpec {
    /// Creates a link with the given propagation latency and bandwidth in
    /// bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is zero.
    pub fn new(latency: SimDuration, bandwidth_bytes_per_sec: u64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0, "bandwidth must be positive");
        LinkSpec {
            latency,
            bandwidth_bytes_per_sec,
        }
    }

    /// The propagation latency.
    pub fn latency(self) -> SimDuration {
        self.latency
    }

    /// The bandwidth in bytes per second.
    pub fn bandwidth(self) -> u64 {
        self.bandwidth_bytes_per_sec
    }

    /// The end-to-end transfer time for a message of `size` bytes.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        let serialisation =
            SimDuration::from_secs_f64(size.as_u64() as f64 / self.bandwidth_bytes_per_sec as f64);
        self.latency + serialisation
    }
}

/// Static configuration of the simulated network: a default link applied to
/// every node pair, plus optional per-pair overrides.
///
/// # Examples
///
/// ```
/// use wcc_simnet::{LinkSpec, NetworkConfig};
/// use wcc_types::{NodeId, SimDuration};
///
/// let mut cfg = NetworkConfig::lan();
/// // Put one client behind a slow WAN hop.
/// cfg.set_link(
///     NodeId::new(0),
///     NodeId::new(1),
///     LinkSpec::new(SimDuration::from_millis(80), 1_000_000),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    default_link: LinkSpec,
    overrides: FxHashMap<(NodeId, NodeId), LinkSpec>,
}

impl NetworkConfig {
    /// A network where every pair is connected by `default_link`.
    pub fn uniform(default_link: LinkSpec) -> Self {
        NetworkConfig {
            default_link,
            overrides: FxHashMap::default(),
        }
    }

    /// The paper's testbed: a 100 Mb/s switched Ethernet with ~0.3 ms
    /// one-way latency.
    pub fn lan() -> Self {
        NetworkConfig::uniform(LinkSpec::new(
            SimDuration::from_micros(300),
            100_000_000 / 8,
        ))
    }

    /// A wide-area profile (≈40 ms one-way, 1.5 Mb/s per flow), used by the
    /// "how would this look on the real Internet" extrapolations.
    pub fn wan() -> Self {
        NetworkConfig::uniform(LinkSpec::new(SimDuration::from_millis(40), 1_500_000 / 8))
    }

    /// Overrides the link used for messages from `src` to `dst` (directed).
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> &mut Self {
        self.overrides.insert((src, dst), spec);
        self
    }

    /// Overrides the links in both directions between `a` and `b`.
    pub fn set_link_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> &mut Self {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec)
    }

    /// The link spec used for messages from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkSpec {
        // Uniform networks (every replay deployment's default) skip the hash
        // lookup on the per-send hot path.
        if self.overrides.is_empty() {
            return self.default_link;
        }
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// The minimum one-way latency over every directed link that crosses a
    /// shard boundary under `assignment` (node id → shard index). This is
    /// the conservative-PDES *lookahead*: no message sent at time `t` can
    /// arrive on another shard before `t + lookahead`, so shards can run
    /// `[t, t + lookahead)` windows independently. `None` when no pair of
    /// nodes crosses a boundary (a single effective shard).
    pub fn min_cross_shard_latency(&self, assignment: &[usize]) -> Option<SimDuration> {
        let mut min: Option<SimDuration> = None;
        for (i, &si) in assignment.iter().enumerate() {
            for (j, &sj) in assignment.iter().enumerate() {
                if i == j || si == sj {
                    continue;
                }
                let lat = self
                    .link(NodeId::new(i as u32), NodeId::new(j as u32))
                    .latency;
                min = Some(min.map_or(lat, |m: SimDuration| m.min(lat)));
            }
        }
        min
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

/// Runtime reachability state: crashed nodes and severed links. Owned by the
/// simulation engine; fault schedules mutate it through [`crate::FaultPlan`].
///
/// `Clone` because sharded execution gives every shard its own replica,
/// kept in lock-step by replicating fault events to all shards.
#[derive(Debug, Default, Clone)]
pub(crate) struct Reachability {
    crashed: FxHashSet<NodeId>,
    severed: FxHashSet<(NodeId, NodeId)>,
}

impl Reachability {
    pub(crate) fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    pub(crate) fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        // Fault-free runs (the vast majority of replays) never pay the hash
        // probe on the per-delivery hot path.
        !self.crashed.is_empty() && self.crashed.contains(&node)
    }

    pub(crate) fn sever(&mut self, a: NodeId, b: NodeId) {
        self.severed.insert((a, b));
        self.severed.insert((b, a));
    }

    pub(crate) fn heal(&mut self, a: NodeId, b: NodeId) {
        self.severed.remove(&(a, b));
        self.severed.remove(&(b, a));
    }

    /// Can a message leave `src` for `dst` right now? (A message already in
    /// flight when a partition starts is still delivered; the check happens
    /// at send time. Crash of the *destination* is checked at delivery time
    /// by the engine.)
    pub(crate) fn can_send(&self, src: NodeId, dst: NodeId) -> bool {
        if self.crashed.is_empty() && self.severed.is_empty() {
            return true;
        }
        !self.is_crashed(src) && !self.severed.contains(&(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_serialisation() {
        let link = LinkSpec::new(SimDuration::from_millis(1), 1_000_000);
        // 1 MB at 1 MB/s = 1 s serialisation + 1 ms latency.
        let t = link.transfer_time(ByteSize::from_bytes(1_000_000));
        assert_eq!(t, SimDuration::from_millis(1001));
        // Zero-size message costs exactly the latency.
        assert_eq!(
            link.transfer_time(ByteSize::ZERO),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(SimDuration::ZERO, 0);
    }

    #[test]
    fn overrides_take_precedence() {
        let mut cfg = NetworkConfig::lan();
        let slow = LinkSpec::new(SimDuration::from_millis(100), 1000);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        cfg.set_link(a, b, slow);
        assert_eq!(cfg.link(a, b), slow);
        // Other direction still the default.
        assert_eq!(cfg.link(b, a), cfg.link(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn symmetric_override() {
        let mut cfg = NetworkConfig::wan();
        let fast = LinkSpec::new(SimDuration::from_micros(10), 1 << 30);
        let (a, b) = (NodeId::new(4), NodeId::new(9));
        cfg.set_link_symmetric(a, b, fast);
        assert_eq!(cfg.link(a, b), fast);
        assert_eq!(cfg.link(b, a), fast);
    }

    #[test]
    fn reachability_partition_and_crash() {
        let mut r = Reachability::default();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert!(r.can_send(a, b));
        r.sever(a, b);
        assert!(!r.can_send(a, b));
        assert!(!r.can_send(b, a));
        assert!(r.can_send(a, c));
        r.heal(a, b);
        assert!(r.can_send(a, b));
        r.crash(a);
        assert!(r.is_crashed(a));
        assert!(!r.can_send(a, c));
        r.recover(a);
        assert!(r.can_send(a, c));
    }
}
