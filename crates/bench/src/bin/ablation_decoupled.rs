//! Ablation A1: synchronous vs. decoupled invalidation sending.
//!
//! The paper traces its worst-case latency to the accelerator refusing new
//! requests "until it finishes sending all invalidation messages", and
//! predicts that "a more fine-tuned implementation would have a separate
//! process sending the invalidation messages, thus avoiding the maximum
//! latency problem." This binary measures both designs.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_bench::{parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::ProtocolKind;
use wcc_httpsim::{DeploymentOptions, InvalSendMode};
use wcc_replay::{run_batch, ExperimentConfig};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn config(
    spec: TraceSpec,
    lifetime: SimDuration,
    mode: InvalSendMode,
    scale: u64,
) -> ExperimentConfig {
    let mut options = DeploymentOptions::default();
    options.send_mode = mode;
    ExperimentConfig::builder(spec.scaled_down(scale))
        .protocol(ProtocolKind::Invalidation)
        .mean_lifetime(lifetime)
        .seed(TABLE_SEED)
        .options(options)
        .build()
}

fn fmt_ms(d: Option<wcc_types::SimDuration>) -> String {
    d.map_or("-".into(), |d| format!("{:.1} ms", d.as_secs_f64() * 1e3))
}

fn main() {
    let scale = parse_scale(std::env::args());
    println!(
        "=== Ablation A1: synchronous vs decoupled invalidation sender (scale 1/{scale}) ===\n"
    );
    // High-churn, high-popularity settings where fan-outs are large enough
    // to stall: NASA with a 7-day lifetime and SDSC with 2.5 days.
    let cases = [
        (TraceSpec::nasa(), SimDuration::from_days(7)),
        (TraceSpec::sdsc(), SimDuration::from_secs(5 * 86_400 / 2)),
    ];
    let jobs = parse_jobs(std::env::args());
    let configs: Vec<ExperimentConfig> = cases
        .iter()
        .flat_map(|(spec, lifetime)| {
            [InvalSendMode::Synchronous, InvalSendMode::Decoupled]
                .map(|mode| config(spec.clone(), *lifetime, mode, scale))
        })
        .collect();
    let reports = run_batch(&configs, jobs);
    for ((spec, lifetime), pair) in cases.iter().zip(reports.chunks(2)) {
        let name = spec.name;
        let lifetime = *lifetime;
        let (sync, dec) = (&pair[0], &pair[1]);
        println!("--- {name} (lifetime {lifetime}) ---");
        println!("{:<30}{:>16}{:>16}", "", "synchronous", "decoupled");
        println!(
            "{:<30}{:>16}{:>16}",
            "Invalidations (fresh)",
            sync.raw.invalidations - sync.raw.invalidation_retries,
            dec.raw.invalidations - dec.raw.invalidation_retries
        );
        println!(
            "{:<30}{:>16}{:>16}",
            "Avg latency",
            fmt_ms(sync.raw.latency.mean()),
            fmt_ms(dec.raw.latency.mean())
        );
        println!(
            "{:<30}{:>16}{:>16}",
            "Max latency",
            fmt_ms(sync.raw.latency.max()),
            fmt_ms(dec.raw.latency.max())
        );
        println!(
            "{:<30}{:>16}{:>16}",
            "Max invalidation batch time",
            fmt_ms(sync.raw.inval_time.max()),
            fmt_ms(dec.raw.inval_time.max())
        );
        println!(
            "{:<30}{:>15.1}%{:>15.1}%",
            "Server CPU",
            sync.raw.server_cpu * 100.0,
            dec.raw.server_cpu * 100.0
        );
        println!();
    }
    println!(
        "Expected shape: identical traffic, but the synchronous sender's max\n\
         latency includes whole invalidation batches; decoupling removes the\n\
         stall, as §5.2 predicts."
    );
}
