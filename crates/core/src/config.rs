//! Protocol selection and tuning knobs.

use crate::economics::AdaptiveLeaseConfig;
use core::fmt;
use wcc_types::SimDuration;

/// Which consistency protocol a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Weak consistency: the Alex protocol — TTL proportional to document
    /// age, `If-Modified-Since` when an expired copy is hit.
    AdaptiveTtl,
    /// Weak consistency with a single fixed time-to-live for every
    /// document — the baseline Worrell's thesis compared invalidation
    /// against (the paper cites it in §2). Kept as an ablation baseline;
    /// adaptive TTL dominates it.
    FixedTtl,
    /// Strong consistency by validation: `If-Modified-Since` on every hit.
    PollEveryTime,
    /// Strong consistency by server-driven invalidation with unbounded site
    /// lists (the paper's §4 prototype).
    Invalidation,
    /// Invalidation where every reply carries a fixed-length lease; the
    /// server forgets clients whose leases expired (§6).
    LeaseInvalidation,
    /// Two-tier leases: a very short (zero) lease on plain `GET`s, the full
    /// lease only on `If-Modified-Since` revalidations, so only clients that
    /// ask for a document a second time are remembered (§6).
    TwoTierLease,
    /// Piggyback server invalidation (PSI, Krishnamurthy & Wills — the
    /// follow-up line of work the paper's related work anticipates): the
    /// server keeps site lists but *piggybacks* invalidations on the next
    /// reply to each site instead of pushing them. No extra messages at
    /// all, but consistency is only as fresh as the site's last contact —
    /// a middle ground between adaptive TTL and invalidation.
    PiggybackInvalidation,
    /// Volume leases (Yin, Alvisi, Dahlin & Lin — the published answer to
    /// this paper's §4 partition problem): a *long* per-object lease plus a
    /// *short* per-server "volume" lease that every reply renews. A cached
    /// copy is served only while **both** are live. On a modification the
    /// server pushes invalidations to live-volume clients only and simply
    /// queues piggybacks for the rest — so a write completes after at most
    /// `max(ack time, volume-lease length)` even through a partition.
    VolumeLease,
}

impl ProtocolKind {
    /// All eight protocols (the paper's five, the fixed-TTL baseline and
    /// the PSI / volume-lease extensions).
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::AdaptiveTtl,
        ProtocolKind::FixedTtl,
        ProtocolKind::PollEveryTime,
        ProtocolKind::Invalidation,
        ProtocolKind::LeaseInvalidation,
        ProtocolKind::TwoTierLease,
        ProtocolKind::PiggybackInvalidation,
        ProtocolKind::VolumeLease,
    ];

    /// The three protocols compared head-to-head in Tables 3 and 4.
    pub const PAPER_TRIO: [ProtocolKind; 3] = [
        ProtocolKind::AdaptiveTtl,
        ProtocolKind::PollEveryTime,
        ProtocolKind::Invalidation,
    ];

    /// Returns `true` for the protocols that guarantee strong consistency
    /// (no stale document returned after a write completes).
    pub fn is_strong(self) -> bool {
        !matches!(
            self,
            ProtocolKind::AdaptiveTtl
                | ProtocolKind::FixedTtl
                | ProtocolKind::PiggybackInvalidation
        )
    }

    /// Returns `true` for the protocols that *push* `INVALIDATE` messages
    /// (and therefore guarantee write completion).
    pub fn uses_invalidation(self) -> bool {
        matches!(
            self,
            ProtocolKind::Invalidation
                | ProtocolKind::LeaseInvalidation
                | ProtocolKind::TwoTierLease
                | ProtocolKind::VolumeLease
        )
    }

    /// Returns `true` for every protocol that maintains server-side site
    /// lists (the push family plus PSI).
    pub fn uses_site_lists(self) -> bool {
        self.uses_invalidation() || self == ProtocolKind::PiggybackInvalidation
    }

    /// A short stable name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::AdaptiveTtl => "adaptive-ttl",
            ProtocolKind::FixedTtl => "fixed-ttl",
            ProtocolKind::PollEveryTime => "poll-every-time",
            ProtocolKind::Invalidation => "invalidation",
            ProtocolKind::LeaseInvalidation => "lease-invalidation",
            ProtocolKind::TwoTierLease => "two-tier-lease",
            ProtocolKind::PiggybackInvalidation => "piggyback",
            ProtocolKind::VolumeLease => "volume-lease",
        }
    }

    /// Parses the name produced by [`ProtocolKind::name`].
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning for the adaptive-TTL (Alex) estimator:
/// `ttl = clamp(threshold × age, floor, cap)`.
///
/// The 10 % threshold is the classic Alex value; Harvest shipped comparable
/// defaults. The cap prevents a years-old document from being trusted for
/// months; the floor avoids thrashing on just-modified documents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTtlConfig {
    /// Fraction of the document's age used as its time-to-live.
    pub threshold: f64,
    /// Lower bound on the assigned TTL.
    pub floor: SimDuration,
    /// Upper bound on the assigned TTL.
    pub cap: SimDuration,
}

impl AdaptiveTtlConfig {
    /// The TTL assigned to a document of the given age.
    pub fn ttl_for_age(&self, age: SimDuration) -> SimDuration {
        let raw = age.mul_f64(self.threshold);
        raw.max(self.floor).min(self.cap)
    }
}

impl Default for AdaptiveTtlConfig {
    fn default() -> Self {
        AdaptiveTtlConfig {
            threshold: 0.1,
            floor: SimDuration::from_secs(30),
            cap: SimDuration::from_days(7),
        }
    }
}

/// How the server grants invalidation promises (leases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeasePolicy {
    /// No promise at all (TTL and polling protocols).
    None,
    /// Unbounded promise — the plain invalidation protocol, equivalent to
    /// "a lease equal to the duration of the trace" (§6).
    Infinite,
    /// Every reply carries a lease of the given length.
    Fixed(SimDuration),
    /// Plain `GET`s get `get_lease` (typically zero); `If-Modified-Since`
    /// revalidations get `ims_lease` (the full lease).
    TwoTier {
        /// Lease granted on a plain `GET` (usually zero → not tracked).
        get_lease: SimDuration,
        /// Lease granted on an `If-Modified-Since` revalidation.
        ims_lease: SimDuration,
    },
}

/// Complete protocol configuration shared by the proxy- and server-side
/// state machines.
///
/// # Examples
///
/// ```
/// use wcc_core::{ProtocolConfig, ProtocolKind};
/// use wcc_types::SimDuration;
///
/// let cfg = ProtocolConfig::new(ProtocolKind::LeaseInvalidation)
///     .with_lease(SimDuration::from_days(3));
/// assert!(cfg.kind.uses_invalidation());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// The protocol to run.
    pub kind: ProtocolKind,
    /// Adaptive-TTL tuning (used only by [`ProtocolKind::AdaptiveTtl`]).
    pub adaptive_ttl: AdaptiveTtlConfig,
    /// Lease duration for [`ProtocolKind::LeaseInvalidation`] and the
    /// `ims_lease` of [`ProtocolKind::TwoTierLease`]. The paper suggests
    /// leases of a few days.
    pub lease: SimDuration,
    /// The single TTL used by [`ProtocolKind::FixedTtl`].
    pub fixed_ttl: SimDuration,
    /// The short per-server volume lease used by
    /// [`ProtocolKind::VolumeLease`] (Yin et al. use tens of seconds to a
    /// few minutes).
    pub volume_lease: SimDuration,
    /// When set, lease-granting protocols replace their fixed duration with
    /// the per-document cost objective of
    /// [`LeaseEconomics`](crate::LeaseEconomics): read-mostly documents earn
    /// longer leases, write-hot ones shorter. Plain invalidation's infinite
    /// promise becomes a bounded adaptive lease.
    pub adaptive_lease: Option<AdaptiveLeaseConfig>,
}

impl ProtocolConfig {
    /// Configuration with default tuning for `kind`.
    pub fn new(kind: ProtocolKind) -> Self {
        ProtocolConfig {
            kind,
            adaptive_ttl: AdaptiveTtlConfig::default(),
            lease: SimDuration::from_days(3),
            fixed_ttl: SimDuration::from_days(1),
            volume_lease: SimDuration::from_mins(2),
            adaptive_lease: None,
        }
    }

    /// Overrides the lease duration.
    #[must_use]
    pub fn with_lease(mut self, lease: SimDuration) -> Self {
        self.lease = lease;
        self
    }

    /// Overrides the adaptive-TTL tuning.
    #[must_use]
    pub fn with_adaptive_ttl(mut self, cfg: AdaptiveTtlConfig) -> Self {
        self.adaptive_ttl = cfg;
        self
    }

    /// Overrides the fixed TTL.
    #[must_use]
    pub fn with_fixed_ttl(mut self, ttl: SimDuration) -> Self {
        self.fixed_ttl = ttl;
        self
    }

    /// Overrides the volume-lease length.
    #[must_use]
    pub fn with_volume_lease(mut self, volume: SimDuration) -> Self {
        self.volume_lease = volume;
        self
    }

    /// Enables adaptive per-document lease durations.
    #[must_use]
    pub fn with_adaptive_lease(mut self, cfg: AdaptiveLeaseConfig) -> Self {
        self.adaptive_lease = Some(cfg);
        self
    }

    /// The lease policy implied by the protocol kind.
    pub fn lease_policy(&self) -> LeasePolicy {
        match self.kind {
            ProtocolKind::AdaptiveTtl | ProtocolKind::FixedTtl | ProtocolKind::PollEveryTime => {
                LeasePolicy::None
            }
            ProtocolKind::Invalidation
            | ProtocolKind::PiggybackInvalidation
            | ProtocolKind::VolumeLease => LeasePolicy::Infinite,
            ProtocolKind::LeaseInvalidation => LeasePolicy::Fixed(self.lease),
            ProtocolKind::TwoTierLease => LeasePolicy::TwoTier {
                get_lease: SimDuration::ZERO,
                ims_lease: self.lease,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(ProtocolKind::from_name("nonsense"), None);
    }

    #[test]
    fn strength_classification() {
        assert!(!ProtocolKind::AdaptiveTtl.is_strong());
        assert!(!ProtocolKind::FixedTtl.is_strong());
        for kind in [
            ProtocolKind::PollEveryTime,
            ProtocolKind::Invalidation,
            ProtocolKind::LeaseInvalidation,
            ProtocolKind::TwoTierLease,
        ] {
            assert!(kind.is_strong(), "{kind} should be strong");
        }
    }

    #[test]
    fn invalidation_family() {
        assert!(!ProtocolKind::AdaptiveTtl.uses_invalidation());
        assert!(!ProtocolKind::FixedTtl.uses_invalidation());
        assert!(!ProtocolKind::PollEveryTime.uses_invalidation());
        assert!(ProtocolKind::TwoTierLease.uses_invalidation());
    }

    #[test]
    fn adaptive_ttl_clamps() {
        let cfg = AdaptiveTtlConfig::default();
        // 10% of 10 days = 1 day.
        assert_eq!(
            cfg.ttl_for_age(SimDuration::from_days(10)),
            SimDuration::from_days(1)
        );
        // Very young documents get the floor.
        assert_eq!(cfg.ttl_for_age(SimDuration::from_secs(10)), cfg.floor);
        // Ancient documents are capped.
        assert_eq!(cfg.ttl_for_age(SimDuration::from_days(1000)), cfg.cap);
    }

    #[test]
    fn lease_policies_match_kinds() {
        assert_eq!(
            ProtocolConfig::new(ProtocolKind::AdaptiveTtl).lease_policy(),
            LeasePolicy::None
        );
        assert_eq!(
            ProtocolConfig::new(ProtocolKind::Invalidation).lease_policy(),
            LeasePolicy::Infinite
        );
        let lease = SimDuration::from_days(8);
        assert_eq!(
            ProtocolConfig::new(ProtocolKind::LeaseInvalidation)
                .with_lease(lease)
                .lease_policy(),
            LeasePolicy::Fixed(lease)
        );
        match ProtocolConfig::new(ProtocolKind::TwoTierLease)
            .with_lease(lease)
            .lease_policy()
        {
            LeasePolicy::TwoTier {
                get_lease,
                ims_lease,
            } => {
                assert_eq!(get_lease, SimDuration::ZERO);
                assert_eq!(ims_lease, lease);
            }
            other => panic!("unexpected policy {other:?}"),
        }
    }
}
