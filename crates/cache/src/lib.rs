//! The proxy cache store: what Harvest's `cached` keeps on disk.
//!
//! A [`CacheStore`] maps per-client scoped URLs
//! ([`ScopedUrl`](wcc_types::ScopedUrl), the paper's `url@clientid` trick)
//! to [`Entry`] metadata, enforces a byte-capacity budget, and evicts under
//! one of two [`ReplacementPolicy`] disciplines:
//!
//! * [`ReplacementPolicy::Lru`] — classic least-recently-used;
//! * [`ReplacementPolicy::ExpiredFirstLru`] — Harvest's discipline, which
//!   "replaces expired documents first" and falls back to LRU. The paper
//!   shows this interacts badly with adaptive TTL's conservative lifetime
//!   estimates (the SASK hit-ratio anomaly), which our ablation A2
//!   reproduces.
//!
//! Consistency state (TTL expiry, lease expiry, the *questionable* flag set
//! by server-recovery invalidations) lives on each entry in a
//! [`Freshness`] record; the protocol state machines in `wcc-core` read and
//! update it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod store;

pub use store::{CacheStats, CacheStore, Entry, Freshness, InsertOutcome, ReplacementPolicy};
