//! Committed fuzz corpus: interesting scenario seeds replayed through the
//! full fuzz oracle on every test run.
//!
//! Each entry is a *scenario* seed (the per-iteration seed printed in a
//! `wcc fuzz` failure line, not the base seed). Reproducing a fuzz failure
//! locally and then committing its seed here turns a one-off catch into a
//! permanent regression test: the scenario is regenerated from the seed,
//! replayed with auditing on, and must pass every oracle check.
//!
//! To add a seed: run `wcc fuzz --shrink`, copy the `regression seed line`
//! from the repro block into `CORPUS`, and keep the one-line comment saying
//! what it caught.

use webcache::fuzz::{check, CheckOptions, Scenario};

/// Seeds chosen for coverage (every protocol, 0-3 faults, 1-4 proxies) plus
/// regressions for bugs the fuzzer has actually caught.
const CORPUS: &[u64] = &[
    // -- coverage: every protocol under faults ---------------------------
    0x5692161d100b05e5, // adaptive-ttl, 3 faults, 4 proxies
    0xe4d971771b652c20, // fixed-ttl, 1 fault, 4 proxies
    0xbeeb8da1658eec67, // lease-invalidation, fault-free (injection-detection seed)
    0x71c18690ee42c90b, // poll-every-time, 1 fault, single proxy
    0xc34d0bff90150280, // lease-invalidation, 1 fault, long-lived docs
    0xc4fea708156e0c84, // fixed-ttl, 2 faults, tiny doc population
    0xcb435c8e74616796, // invalidation, 1 fault, single proxy
    0x9afcd44d14cf8bfe, // two-tier-lease, 1 fault
    0x01c9558bd006badb, // piggyback, 1 fault, 4 proxies
    0x87b341d690d7a28a, // invalidation, 2 faults
    0x2ac2ce17a5794a3b, // lease-invalidation, 2 faults
    0x2310bd4abe96ea03, // volume-lease, 3 faults
    0x0c43407dc177b6f7, // piggyback, 2 faults, short trace
    0xc1af2b37c863da48, // piggyback, 3 faults, single proxy
    0x24bdf605ee188704, // volume-lease, 2 faults, week-scale lifetimes
    0x9464fd3ad6ffc7e6, // invalidation, 3 faults, 4 proxies
    0xdbd238973a2b148a, // adaptive-ttl, 3 faults, short trace
    0x3909f559401b6dab, // two-tier-lease, fault-free, hot small docs
    0xd85ab7a2b154095a, // poll-every-time, 1 fault, fast-changing docs
    0xea909a92e113bf3c, // volume-lease, fault-free, 31 clients
    // -- regressions: bugs the fuzzer caught -----------------------------
    // Recovery-time bulk INVALIDATE was fire-and-forget: an origin outage
    // overlapping an origin<->proxy partition swallowed it, so post-recovery
    // writes fanned out to an empty site list while the proxy kept a live
    // lease on a stale copy. Fixed by InvalidateServerAck + a bounded origin
    // retry loop.
    0x104410149bb2b666, // lease-invalidation, outage + partition overlap
    0x6c8099a8060d9f5c, // invalidation, same signature, 8 stale entries
    0x5e47202d6705578e, // lease-invalidation, 2-fault overlap
    0x41ac8f13e2dc7c12, // invalidation, 2-fault overlap
    0x1d67c34f6a2a35d9, // lease-invalidation, many-client variant
    0x44e41974af301401, // invalidation, large doc population variant
    // Oracle calibration: browser-based detection defers the origin's
    // knowledge of a write until the next poll, so end-of-run promised-fresh
    // staleness is a model property there, not a bug.
    0xb4a0472e578069ae, // volume-lease + browser-based detection + outage
    // -- coverage: every workload family x the paper trio ----------------
    // Family scenarios run multi-origin federations (2-6 origins) and push
    // the sharded-equivalence check (oracle 8) to 8-16 shards.
    0x273ffb229ad337c9, // archival-scan, adaptive-ttl, 6 origins, 2 faults
    0x54c9abe8ef8c48ee, // archival-scan, invalidation, 2 proxies
    0xc3893c0f7dd1e207, // archival-scan, poll-every-time
    0x40b8d6825309434b, // breaking-news, adaptive-ttl, 2 faults
    0xf5e056b693184450, // breaking-news, invalidation, 3 faults
    0x3b0198ee397091e9, // breaking-news, poll-every-time
    0xeef31bee492e155e, // flash-crowd, adaptive-ttl, 6 origins, 3 faults
    0xe3880f0500ee1b50, // flash-crowd, invalidation, 4 proxies
    0x3f94f3ec74086c53, // flash-crowd, poll-every-time, 3 proxies
    0x2dfebae2ce73308b, // real-time-feed, adaptive-ttl, 6 origins
    0xfb4538e9d4deb08d, // real-time-feed, invalidation
    0x409ef71f42c6940e, // real-time-feed, poll-every-time, 5 origins
    0x23aaceb50f8f45be, // zipf-federation, adaptive-ttl, 2 faults
    0xed34dd8c16152b28, // zipf-federation, invalidation, 3 faults
    0xb4bb9b81b6e79bf7, // zipf-federation, poll-every-time, 4 origins
    // -- coverage: batched invalidation proposer --------------------------
    // Each seed enables the proposer at a different count threshold and
    // overlaps batch rounds with partitions or outages, so the staleness
    // and write-liveness oracles cover the coalescing fan-out path.
    0x538454127b093a7e, // entries=4, invalidation, batch round overlaps a partition
    0x9e3779b97f4a22f8, // entries=2, two-tier-lease + adaptive lease, archival-scan, 3 faults
    0xa40a9584ad25fc9d, // entries=4, two-tier-lease + adaptive lease, zipf-federation, 3 faults
    0x43d91e8ef8a4d808, // entries=8, invalidation + adaptive lease, archival-scan, 3 faults
    0xd0ec054665290918, // entries=16, two-tier-lease + adaptive lease, zipf-federation, 6 origins
    0xa0ac6ae1c541794b, // entries=32, lease-invalidation + adaptive lease, flash-crowd
];

#[test]
fn corpus_has_at_least_twenty_seeds() {
    assert!(CORPUS.len() >= 20, "corpus shrank to {}", CORPUS.len());
}

#[test]
fn corpus_seeds_are_unique() {
    let mut sorted = CORPUS.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), CORPUS.len(), "duplicate seed in CORPUS");
}

#[test]
fn corpus_covers_every_protocol() {
    let mut protocols: Vec<String> = CORPUS
        .iter()
        .map(|&seed| Scenario::generate(seed).protocol.kind.name().to_owned())
        .collect();
    protocols.sort();
    protocols.dedup();
    assert!(
        protocols.len() >= 8,
        "corpus only exercises {protocols:?}; keep all eight protocols covered"
    );
}

#[test]
fn corpus_covers_every_workload_family_with_the_paper_trio() {
    use webcache::traces::family::WorkloadFamily;

    // (family, protocol) pairs the family slice of the corpus exercises.
    let mut pairs: Vec<(&'static str, String)> = CORPUS
        .iter()
        .filter_map(|&seed| {
            let s = Scenario::generate(seed);
            s.family
                .map(|f| (f.name(), s.protocol.kind.name().to_owned()))
        })
        .collect();
    assert!(
        pairs.len() >= 8,
        "only {} family seeds in the corpus; keep at least 8",
        pairs.len()
    );
    pairs.sort();
    pairs.dedup();
    for family in WorkloadFamily::ALL {
        for protocol in ["invalidation", "adaptive-ttl", "poll-every-time"] {
            assert!(
                pairs.contains(&(family.name(), protocol.to_owned())),
                "corpus lost coverage of family {} under {protocol}",
                family.name()
            );
        }
    }
}

#[test]
fn corpus_covers_batched_proposer_thresholds() {
    let mut thresholds: Vec<usize> = CORPUS
        .iter()
        .filter_map(|&seed| {
            Scenario::generate(seed)
                .options
                .inval_batch
                .map(|b| b.max_entries)
        })
        .collect();
    thresholds.sort_unstable();
    thresholds.dedup();
    for want in [2usize, 4, 8, 16, 32] {
        assert!(
            thresholds.contains(&want),
            "corpus lost proposer coverage at max_entries={want} (have {thresholds:?})"
        );
    }
}

#[test]
fn corpus_replays_clean() {
    let opts = CheckOptions::default();
    let mut failures = Vec::new();
    for &seed in CORPUS {
        let scenario = Scenario::generate(seed);
        if let Err(failure) = check(&scenario, &opts) {
            failures.push(format!(
                "{:#018x} ({}): {failure}",
                seed,
                scenario.summary()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus seeds regressed:\n{}",
        failures.join("\n")
    );
}
