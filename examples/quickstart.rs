//! Quickstart: compare the three consistency protocols on a scaled-down
//! EPA workload and print a paper-style table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webcache::core::ProtocolKind;
use webcache::replay::tables::format_trio_block;
use webcache::replay::{run_trio, ExperimentConfig};
use webcache::traces::TraceSpec;

fn main() {
    // 1/20 of the real EPA trace: ~2k requests, 180 documents, 50-day mean
    // file lifetime (the paper's headline setting for this trace).
    let spec = TraceSpec::epa().scaled_down(20);
    let cfg = ExperimentConfig::builder(spec).seed(7).build();

    println!("Replaying {} under all three protocols…\n", cfg.spec.name);
    let trio = run_trio(&cfg);
    println!("{}", format_trio_block(&trio));

    let (ttl, poll, inval) = (&trio[0].raw, &trio[1].raw, &trio[2].raw);
    println!("Headline result, reproduced:");
    println!(
        "  polling-every-time sends {:+.1}% more messages than invalidation;",
        100.0 * (poll.total_messages as f64 / inval.total_messages as f64 - 1.0)
    );
    println!(
        "  adaptive TTL sends {:+.1}% more and returned {} stale document(s);",
        100.0 * (ttl.total_messages as f64 / inval.total_messages as f64 - 1.0),
        ttl.stale_hits
    );
    println!(
        "  invalidation is strongly consistent: {} violations, writes complete = {}.",
        inval.final_violations, inval.writes_complete
    );
    assert_eq!(inval.protocol, ProtocolKind::Invalidation);
}
