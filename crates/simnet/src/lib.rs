//! Deterministic discrete-event network simulator.
//!
//! `wcc-simnet` is the substrate under the trace-replay evaluation: it plays
//! the role the five SPARC-20 workstations and the 100 Mb/s Ethernet played
//! in the paper's experiments. It provides:
//!
//! * an **event queue** with a total order (time, then per-node lane and
//!   lane sequence), so every run is bit-for-bit reproducible ([`event`]);
//! * a **generational arena** that parks in-flight events so the queue moves
//!   three-word handles and steady-state scheduling never touches the
//!   global allocator ([`arena`]);
//! * **actor nodes** addressed by [`NodeId`](wcc_types::NodeId) that react to
//!   messages and timers through the [`Node`] trait ([`node`]);
//! * a **network model** with per-link propagation latency and bandwidth
//!   (transfer time = latency + bytes / bandwidth), link failures and
//!   network partitions ([`net`]);
//! * **CPU busy-time accounting**: a node may [`Ctx::consume`] simulated CPU
//!   time, deferring its later deliveries — this is how the pseudo-server's
//!   utilisation and the synchronous-invalidation request stalls are
//!   reproduced;
//! * **crash / recovery** of nodes with message loss while down ([`fault`]);
//! * small **metric primitives** (counters and min/avg/max summaries) used
//!   by the replay reports ([`metrics`]);
//! * **sharded execution**: nodes partitioned across scoped worker threads,
//!   synchronised in conservative lookahead windows, producing results
//!   byte-identical to the sequential engine ([`shard`]).
//!
//! # Example
//!
//! A two-node ping/pong:
//!
//! ```
//! use wcc_simnet::{Ctx, Node, Simulation, NetworkConfig};
//! use wcc_types::{ByteSize, NodeId, SimDuration};
//!
//! struct Ping { peer: Option<NodeId>, pongs: u32 }
//! struct Pong;
//!
//! impl Node<&'static str> for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
//!         ctx.send(self.peer.unwrap(), "ping", ByteSize::from_bytes(64));
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: &'static str, _ctx: &mut Ctx<'_, &'static str>) {
//!         assert_eq!(msg, "pong");
//!         self.pongs += 1;
//!     }
//! }
//! impl Node<&'static str> for Pong {
//!     fn on_message(&mut self, from: NodeId, msg: &'static str, ctx: &mut Ctx<'_, &'static str>) {
//!         assert_eq!(msg, "ping");
//!         ctx.send(from, "pong", ByteSize::from_bytes(64));
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::lan());
//! let ping = sim.add_node(Ping { peer: None, pongs: 0 });
//! let pong = sim.add_node(Pong);
//! sim.node_mut::<Ping>(ping).peer = Some(pong);
//! sim.run_until_idle();
//! assert_eq!(sim.node_ref::<Ping>(ping).pongs, 1);
//! assert_eq!(sim.net_stats().messages, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod node;
pub mod shard;
pub mod sim;

pub use arena::{Arena, ArenaStats, Handle};
pub use event::EventQueue;
pub use fault::{FaultEntry, FaultPlan};
pub use metrics::{Counter, NetStats, Summary};
pub use net::{LinkSpec, NetworkConfig};
pub use node::{Ctx, Node, TimerId};
pub use shard::ShardedSimulation;
pub use sim::Simulation;
