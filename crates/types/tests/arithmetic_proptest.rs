//! Algebraic laws of the time and byte arithmetic (all saturating).

use proptest::prelude::*;
use wcc_types::{ByteSize, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn time_addition_is_monotone_and_saturating(
        t in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let t = SimTime::from_micros(t);
        let a = SimDuration::from_micros(a);
        let b = SimDuration::from_micros(b);
        // Monotone.
        prop_assert!(t + a >= t);
        // Associative under saturation.
        prop_assert_eq!((t + a) + b, t + (a + b));
        // Never exceeds NEVER.
        prop_assert!(t + a <= SimTime::NEVER);
    }

    #[test]
    fn saturating_since_inverts_addition_when_in_range(
        t in 0u64..u64::MAX / 2,
        d in 0u64..u64::MAX / 2,
    ) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        // And the reverse direction clamps.
        prop_assert_eq!(t.saturating_since(t + d + SimDuration::from_micros(1)),
                        SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling_laws(d in 0u64..u64::MAX / 4, k in 0u64..1_000) {
        let d = SimDuration::from_micros(d);
        prop_assert_eq!(d.saturating_mul(0), SimDuration::ZERO);
        prop_assert_eq!(d.saturating_mul(1), d);
        prop_assert_eq!(d.div(0), SimDuration::ZERO);
        if k > 0 {
            // div then mul never exceeds the original.
            prop_assert!(d.div(k).saturating_mul(k) <= d);
        }
    }

    #[test]
    fn byte_size_sum_commutes(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (ByteSize::from_bytes(a), ByteSize::from_bytes(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x.max(y));
        prop_assert_eq!(x.saturating_sub(x), ByteSize::ZERO);
        prop_assert_eq!((x + y).saturating_sub(y).as_u64(),
                        if a.checked_add(b).is_some() { a } else { u64::MAX - b });
    }

    #[test]
    fn mul_f64_matches_integer_scaling_for_small_values(
        d in 0u64..1_000_000_000u64,
        k in 1u64..100,
    ) {
        let d = SimDuration::from_micros(d);
        // Float scaling by an integer factor agrees with integer scaling
        // (values small enough for exact f64 representation).
        prop_assert_eq!(d.mul_f64(k as f64), d.saturating_mul(k));
    }
}
