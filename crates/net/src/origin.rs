//! The TCP origin server + accelerator, served by a readiness reactor.
//!
//! One reactor thread owns every connection: per-request `GET`s, modifier
//! check-ins, `/metrics` scrapes, and the proxies' persistent `HELLO`
//! push channels all multiplex over the same epoll/poll loop
//! (`wcc_reactor`). Requests decode zero-copy out of each connection's
//! receive buffer; `INVALIDATE` pushes are queued straight into the
//! target channel's send buffer — no per-connection threads anywhere.
//!
//! Restart recovery follows the paper's §5 model: an origin spawned with
//! `recovering = true` has lost its in-memory site lists, so it answers
//! every proxy re-registration with a bulk `INVALIDATE <server>` and
//! retries on a 250 ms tick until the `InvalidateServerAck` arrives.
//! Once every known channel has acknowledged, strong consistency holds
//! again without any persistent site-list storage.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wcc_core::{ProtocolConfig, ServerConsistency, SiteListStats};
use wcc_obs::{Histogram, Registry};
use wcc_proto::msg::sizes::INVALIDATE_SIZE;
use wcc_proto::{
    decode_frame, encode, BatchEntry, GetRequest, HttpMsg, HttpMsgRef, Reply, ReplyStatus,
    WireError,
};
use wcc_reactor::{Poller, WakeHandle, Waker};
use wcc_types::{
    Body, ByteSize, ClientId, DocMeta, InvalBatchConfig, ServerId, SimDuration, SimTime, Url,
    WallClock,
};

use crate::evloop::{accept_all, Conn, Conns, TOK_LISTENER, TOK_WAKER};

/// Configuration for [`NetOrigin::spawn`].
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// The server's identity (must match the URLs clients request).
    pub server: ServerId,
    /// Document sizes, indexed by document id.
    pub doc_sizes: Vec<ByteSize>,
    /// The consistency protocol to run.
    pub protocol: ProtocolConfig,
    /// Storage scale factor for document payloads (the paper's 100×).
    pub doc_scale: u64,
    /// Batched invalidation proposer thresholds. `None` keeps the
    /// per-write fan-out: one `INVALIDATE` push per stale copy. `Some`
    /// coalesces pending invalidations and fans out one multi-URL
    /// `InvalidateBatch` round per proxy partition when a count/byte
    /// threshold trips (or the age bound, on the reactor's tick).
    pub inval_batch: Option<InvalBatchConfig>,
}

/// Counters and state visible through [`NetOrigin::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct OriginSnapshot {
    /// Plain `GET`s served.
    pub gets: u64,
    /// `If-Modified-Since` requests served.
    pub ims: u64,
    /// `200` replies sent.
    pub replies_200: u64,
    /// `304` replies sent.
    pub replies_304: u64,
    /// `INVALIDATE`s pushed (logical per-copy count; with the batched
    /// proposer each coalesced entry still counts once here).
    pub invalidations: u64,
    /// `InvalidateBatch` rounds flushed by the proposer.
    pub inval_batches: u64,
    /// Entries carried by those rounds (deduplicated).
    pub batched_entries: u64,
    /// Enqueued invalidations absorbed by coalescing: the `(url, client)`
    /// pair was already pending when a later write re-enqueued it.
    pub coalesced_invalidations: u64,
    /// Acks received.
    pub acks: u64,
    /// Check-ins processed.
    pub notifies: u64,
    /// Whether every invalidation has been acknowledged.
    pub writes_complete: bool,
    /// Site-list statistics.
    pub sitelist: SiteListStats,
}

struct Protected {
    consistency: ServerConsistency,
    versions: Vec<SimTime>,
    counters: OriginSnapshot,
    /// Wall-time GET service latency (decode to reply built).
    serve_latency: Histogram,
    /// Batched proposer accumulator: pending stale copies, coalesced per
    /// document. Always empty when `inval_batch` is `None`.
    pending_inval: BTreeMap<Url, BTreeSet<ClientId>>,
    /// Entry count of `pending_inval` (kept incrementally).
    pending_entries: u64,
    /// Armed when the accumulator went empty → non-empty; drives the age
    /// threshold.
    pending_since: Option<WallClock>,
    /// Entries per flushed `InvalidateBatch` round.
    batch_sizes: Histogram,
    /// §5 restart recovery: still rebuilding consistency via bulk
    /// invalidation.
    recovering: bool,
    /// Partitions sent an `INVALIDATE <server>` and not yet acked.
    recovery_pending: BTreeSet<u32>,
    /// Partitions whose bulk invalidation was acknowledged.
    recovery_acked: BTreeSet<u32>,
}

struct State {
    server: ServerId,
    doc_sizes: Vec<ByteSize>,
    /// Reloadable via [`NetOrigin::set_doc_scale`] (SIGHUP config reload).
    doc_scale: AtomicU32,
    inval_batch: Option<InvalBatchConfig>,
    protected: Mutex<Protected>,
    shutdown: AtomicBool,
}

/// What one check-in produced for the wire.
enum Fanout {
    /// Per-write fan-out: push one `INVALIDATE` per recipient now.
    PerWrite(Vec<ClientId>),
    /// Batched proposer: recipients were queued; `flush` is set when the
    /// count or byte threshold tripped and the round should go out now.
    Queued { flush: bool },
}

impl State {
    fn handle_get(&self, get: &GetRequest) -> HttpMsg {
        let mut p = self.protected.lock();
        if get.is_ims() {
            p.counters.ims += 1;
        } else {
            p.counters.gets += 1;
        }
        let doc = get.url.doc() as usize;
        let meta = DocMeta::new(self.doc_sizes[doc], p.versions[doc]);
        let grant = p
            .consistency
            .on_get(get.url, get.client, get.ims, meta, get.issued_at);
        let status = if grant.send_body {
            p.counters.replies_200 += 1;
            ReplyStatus::Ok(Body::synthetic(
                meta,
                u64::from(self.doc_scale.load(Ordering::SeqCst)),
            ))
        } else {
            p.counters.replies_304 += 1;
            ReplyStatus::NotModified
        };
        HttpMsg::Reply(Reply {
            req: get.req,
            url: get.url,
            client: get.client,
            status,
            lease: grant.lease,
            piggyback: grant.piggyback,
            volume_lease: grant.volume_lease,
        })
    }

    /// Processes a check-in; returns what to push on the wire.
    fn handle_notify(&self, url: Url, at: SimTime) -> Fanout {
        let mut p = self.protected.lock();
        p.counters.notifies += 1;
        let doc = url.doc() as usize;
        p.versions[doc] = p.versions[doc].max(at);
        let recipients = p.consistency.on_modify(url, at);
        p.counters.invalidations += recipients.len() as u64;
        let Some(cfg) = self.inval_batch else {
            return Fanout::PerWrite(recipients);
        };
        if !recipients.is_empty() && p.pending_since.is_none() {
            p.pending_since = Some(WallClock::start());
        }
        let mut fresh = 0u64;
        {
            let Protected {
                pending_inval,
                counters,
                ..
            } = &mut *p;
            for client in recipients {
                if pending_inval.entry(url).or_default().insert(client) {
                    fresh += 1;
                } else {
                    counters.coalesced_invalidations += 1;
                }
            }
        }
        p.pending_entries += fresh;
        // Byte threshold is what a per-write fan-out of the queue would
        // have cost — the same accounting the simulator's proposer uses.
        let bytes = p.pending_entries * INVALIDATE_SIZE;
        let flush = p.pending_entries >= cfg.max_entries as u64 || bytes >= cfg.max_bytes.as_u64();
        Fanout::Queued { flush }
    }

    /// Drains the proposer accumulator into one sorted entry list per
    /// proxy partition, recording the per-round stats.
    fn drain_pending(&self, partitions: u32) -> Vec<(u32, Vec<BatchEntry>)> {
        let mut p = self.protected.lock();
        if p.pending_entries == 0 {
            return Vec::new();
        }
        let pending = std::mem::take(&mut p.pending_inval);
        p.counters.batched_entries += p.pending_entries;
        p.pending_entries = 0;
        p.pending_since = None;
        let partitions = partitions.max(1);
        let mut per: BTreeMap<u32, Vec<BatchEntry>> = BTreeMap::new();
        for (url, clients) in pending {
            for client in clients {
                per.entry(client.partition(partitions))
                    .or_default()
                    .push(BatchEntry { url, client });
            }
        }
        let mut out = Vec::with_capacity(per.len());
        for (partition, entries) in per {
            p.counters.inval_batches += 1;
            p.batch_sizes.record(entries.len() as u64);
            out.push((partition, entries));
        }
        out
    }

    /// Time until the oldest pending entry hits the age threshold:
    /// `Some(ZERO)` when a flush is overdue, `None` when nothing is
    /// pending (or batching is off).
    fn batch_age_left(&self) -> Option<Duration> {
        let cfg = self.inval_batch?;
        let p = self.protected.lock();
        let elapsed = p.pending_since.as_ref()?.elapsed();
        if elapsed >= cfg.max_age {
            Some(Duration::ZERO)
        } else {
            Some(Duration::from_micros(
                cfg.max_age.as_micros() - elapsed.as_micros(),
            ))
        }
    }

    fn handle_ack(&self, url: Url, client: ClientId) {
        let mut p = self.protected.lock();
        p.counters.acks += 1;
        p.consistency.on_inval_ack(url, client);
    }

    fn recovery_done(p: &Protected) -> bool {
        !p.recovering || (!p.recovery_acked.is_empty() && p.recovery_pending.is_empty())
    }

    /// Renders the node's registry as Prometheus text exposition.
    fn render_metrics(&self) -> String {
        let p = self.protected.lock();
        let node = [("node", "origin")];
        let c = &p.counters;
        let mut r = Registry::default();
        r.set_counter(
            "wcc_gets_total",
            "Plain GET requests served.",
            &node,
            c.gets,
        );
        r.set_counter(
            "wcc_ims_total",
            "If-Modified-Since requests served.",
            &node,
            c.ims,
        );
        r.set_counter(
            "wcc_replies_200_total",
            "200 replies sent.",
            &node,
            c.replies_200,
        );
        r.set_counter(
            "wcc_replies_304_total",
            "304 replies sent.",
            &node,
            c.replies_304,
        );
        r.set_counter(
            "wcc_invalidations_total",
            "INVALIDATEs pushed to proxies.",
            &node,
            c.invalidations,
        );
        r.set_counter(
            "wcc_inval_batches_total",
            "InvalidateBatch rounds flushed by the batched proposer.",
            &node,
            c.inval_batches,
        );
        r.set_counter(
            "wcc_inval_batched_entries_total",
            "Deduplicated entries carried by flushed batch rounds.",
            &node,
            c.batched_entries,
        );
        r.set_counter(
            "wcc_inval_coalesced_total",
            "Enqueued invalidations absorbed by proposer coalescing.",
            &node,
            c.coalesced_invalidations,
        );
        r.set_counter(
            "wcc_inval_acks_total",
            "Invalidation acknowledgements received.",
            &node,
            c.acks,
        );
        r.set_counter(
            "wcc_notifies_total",
            "Modifier check-ins processed.",
            &node,
            c.notifies,
        );
        let stats = p.consistency.table().stats();
        r.set_gauge(
            "wcc_sitelist_entries",
            "Live site-list entries (granted leases / registrations).",
            &node,
            stats.total_entries,
        );
        r.set_gauge(
            "wcc_sitelist_tracked_documents",
            "Documents with a non-empty site list.",
            &node,
            stats.tracked_documents,
        );
        r.set_gauge(
            "wcc_sitelist_max_list_len",
            "Longest site list.",
            &node,
            stats.max_list_len,
        );
        r.set_gauge(
            "wcc_sitelist_storage_bytes",
            "Estimated site-list memory.",
            &node,
            stats.storage.as_u64(),
        );
        r.set_gauge(
            "wcc_writes_complete",
            "1 when every invalidation has been acknowledged.",
            &node,
            u64::from(p.consistency.writes_complete()),
        );
        r.set_gauge(
            "wcc_recovery_complete",
            "1 when §5 restart recovery has finished (always 1 on a clean start).",
            &node,
            u64::from(Self::recovery_done(&p)),
        );
        r.set_gauge(
            "wcc_inval_pending_queue",
            "Coalesced (document, client) entries waiting in the proposer.",
            &node,
            p.pending_entries,
        );
        r.set_histogram(
            "wcc_serve_latency_seconds",
            "Wall-time GET service latency.",
            &node,
            &p.serve_latency,
        );
        r.set_histogram(
            "wcc_inval_batch_size",
            "Entries per flushed InvalidateBatch round.",
            &node,
            &p.batch_sizes,
        );
        r.render()
    }
}

/// A running TCP origin. Shuts down (and joins its reactor) on drop.
pub struct NetOrigin {
    addr: SocketAddr,
    state: Arc<State>,
    wake: WakeHandle,
    reactor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetOrigin")
            .field("addr", &self.addr)
            .finish()
    }
}

impl NetOrigin {
    /// Binds a loopback listener and starts serving.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    pub fn spawn(config: OriginConfig) -> std::io::Result<NetOrigin> {
        Self::spawn_at("127.0.0.1:0".parse().expect("literal addr"), config, false)
    }

    /// Binds `addr` (use port 0 for ephemeral) and starts serving; with
    /// `recovering = true` the origin assumes its site lists were lost in
    /// a crash and runs the §5 bulk-invalidation recovery against every
    /// proxy that (re)registers.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    pub fn spawn_at(
        addr: SocketAddr,
        config: OriginConfig,
        recovering: bool,
    ) -> std::io::Result<NetOrigin> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let n = config.doc_sizes.len();
        let state = Arc::new(State {
            server: config.server,
            doc_sizes: config.doc_sizes,
            doc_scale: AtomicU32::new(u32::try_from(config.doc_scale.max(1)).unwrap_or(u32::MAX)),
            inval_batch: config.inval_batch,
            protected: Mutex::new(Protected {
                consistency: ServerConsistency::new(&config.protocol, config.server),
                versions: vec![SimTime::ZERO; n],
                counters: OriginSnapshot::default(),
                serve_latency: Histogram::default(),
                pending_inval: BTreeMap::new(),
                pending_entries: 0,
                pending_since: None,
                batch_sizes: Histogram::default(),
                recovering,
                recovery_pending: BTreeSet::new(),
                recovery_acked: BTreeSet::new(),
            }),
            shutdown: AtomicBool::new(false),
        });

        let mut poller = Poller::new()?;
        {
            use std::os::fd::AsRawFd;
            poller.add(
                listener.as_raw_fd(),
                TOK_LISTENER,
                wcc_reactor::Interest::READ,
            )?;
        }
        let waker = Waker::new()?;
        waker.register(&mut poller, TOK_WAKER)?;
        let wake = waker.handle()?;

        let reactor_state = Arc::clone(&state);
        let reactor = std::thread::spawn(move || {
            reactor_loop(&reactor_state, &listener, poller, &waker);
        });

        Ok(NetOrigin {
            addr,
            state,
            wake,
            reactor: Some(reactor),
        })
    }

    /// The address to point proxies and the check-in utility at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current Prometheus text exposition — the same body `GET
    /// /metrics` on [`NetOrigin::addr`] returns.
    pub fn metrics_text(&self) -> String {
        self.state.render_metrics()
    }

    /// A copy of the current counters and site-list stats.
    pub fn snapshot(&self) -> OriginSnapshot {
        let p = self.state.protected.lock();
        let mut snap = p.counters.clone();
        snap.writes_complete = p.consistency.writes_complete();
        snap.sitelist = p.consistency.table().stats();
        snap
    }

    /// Swaps the payload scale factor at runtime (`wcc serve`'s SIGHUP
    /// config reload).
    pub fn set_doc_scale(&self, doc_scale: u64) {
        let clamped = u32::try_from(doc_scale.max(1)).unwrap_or(u32::MAX);
        self.state.doc_scale.store(clamped, Ordering::SeqCst);
    }

    /// Whether §5 restart recovery has finished. Always true for an
    /// origin spawned with `recovering = false`; after a crash restart it
    /// turns true once at least one proxy re-registered and every bulk
    /// invalidation sent so far was acknowledged.
    pub fn recovery_complete(&self) -> bool {
        State::recovery_done(&self.state.protected.lock())
    }

    /// Polls until [`NetOrigin::recovery_complete`] or `timeout` elapses.
    pub fn wait_recovery_complete(&self, timeout: Duration) -> bool {
        let clock = WallClock::start();
        let timeout =
            SimDuration::from_micros(u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX));
        loop {
            if self.recovery_complete() {
                return true;
            }
            if clock.has_elapsed(timeout) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Polls until every outstanding invalidation is acknowledged (the
    /// paper's write-completion condition) or `timeout` elapses. Returns
    /// whether completion was reached.
    pub fn wait_writes_complete(&self, timeout: Duration) -> bool {
        let clock = WallClock::start();
        let timeout =
            SimDuration::from_micros(u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX));
        loop {
            if self.state.protected.lock().consistency.writes_complete() {
                return true;
            }
            if clock.has_elapsed(timeout) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for NetOrigin {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
    }
}

/// Per-connection tag: `HELLO` upgrades a plain connection into a push
/// channel for one proxy partition.
struct OTag {
    partition: Option<u32>,
}

/// What the dispatcher wants done with the connection afterwards.
enum After {
    Keep,
    CloseAfterFlush,
    Close,
}

/// The origin's whole serving tier: one loop, every connection.
fn reactor_loop(state: &Arc<State>, listener: &TcpListener, mut poller: Poller, waker: &Waker) {
    let mut conns: Conns<OTag> = Conns::with_capacity(64);
    let mut events: Vec<wcc_reactor::Event> = Vec::with_capacity(256);
    // partition -> push-channel token (latest HELLO wins, stale tokens
    // fail their generation check harmlessly).
    let mut channels: HashMap<u32, u64> = HashMap::new();
    // Partition count the proxies declared in their HELLOs; routing must
    // use the same modulus the proxies used when sharding clients.
    let mut total_partitions: u32 = 1;
    let mut outbox: Vec<(u64, HttpMsg)> = Vec::with_capacity(64);
    let mut scratch: Vec<u64> = Vec::with_capacity(64);
    let mut dropped: u64 = 0;

    loop {
        let retry_recovery = {
            let p = state.protected.lock();
            p.recovering && !p.recovery_pending.is_empty()
        };
        // Two timers share the poller timeout: the 250 ms recovery retry
        // tick and the proposer's age threshold (whichever is sooner).
        let batch_left = state.batch_age_left();
        let retry_tick = if retry_recovery {
            Some(Duration::from_millis(250))
        } else {
            None
        };
        let timeout = match (retry_tick, batch_left) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if poller.wait(&mut events, timeout).is_err() {
            break;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if state.batch_age_left() == Some(Duration::ZERO) {
            // Age flush: the oldest pending entry has waited max_age, so
            // the round goes out even though no count threshold tripped.
            flush_batches(state, &channels, total_partitions, &mut outbox);
            deliver_outbox(&mut outbox, &mut conns, &mut poller);
        }
        if events.is_empty() && retry_recovery {
            // Retry tick: re-send the bulk invalidation to every pending
            // partition (idempotent on the proxy side).
            let pending: Vec<u32> = {
                let p = state.protected.lock();
                p.recovery_pending.iter().copied().collect()
            };
            for partition in pending {
                if let Some(&tok) = channels.get(&partition) {
                    outbox.push((
                        tok,
                        HttpMsg::InvalidateServer {
                            server: state.server,
                        },
                    ));
                }
            }
            deliver_outbox(&mut outbox, &mut conns, &mut poller);
            continue;
        }
        for ev in events.iter().copied() {
            match ev.token {
                TOK_LISTENER => {
                    accept_all(
                        listener,
                        &mut poller,
                        &mut conns,
                        || OTag { partition: None },
                        &mut dropped,
                    );
                }
                TOK_WAKER => waker.drain(),
                tok => {
                    if ev.writable {
                        conns.flush(&mut poller, tok);
                    }
                    if ev.readable || ev.error {
                        drive_conn(
                            state,
                            &mut poller,
                            &mut conns,
                            &mut channels,
                            &mut total_partitions,
                            &mut outbox,
                            tok,
                        );
                    }
                }
            }
        }
        deliver_outbox(&mut outbox, &mut conns, &mut poller);
    }

    // Shutdown: flush whatever is queued, then drop every connection.
    conns.live_tokens(&mut scratch);
    for tok in scratch.drain(..) {
        conns.flush(&mut poller, tok);
        conns.close(&mut poller, tok);
    }
}

/// Drains the proposer accumulator into one `InvalidateBatch` per proxy
/// partition with a live push channel. Entries routed at a partition with
/// no channel are dropped from the wire like their per-write equivalents:
/// the site list still holds them, and a re-registration (or the §5 bulk
/// recovery invalidation) picks them up.
fn flush_batches(
    state: &Arc<State>,
    channels: &HashMap<u32, u64>,
    total_partitions: u32,
    outbox: &mut Vec<(u64, HttpMsg)>,
) {
    for (partition, entries) in state.drain_pending(total_partitions) {
        if let Some(&tok) = channels.get(&partition) {
            outbox.push((
                tok,
                HttpMsg::InvalidateBatch {
                    server: state.server,
                    entries,
                },
            ));
        }
    }
}

/// Queues `outbox` frames into their target connections and flushes.
fn deliver_outbox(outbox: &mut Vec<(u64, HttpMsg)>, conns: &mut Conns<OTag>, poller: &mut Poller) {
    for (tok, msg) in outbox.drain(..) {
        if let Some(conn) = conns.get_mut(tok) {
            conn.sbuf.push_bytes(&encode(&msg));
        }
        conns.flush(poller, tok);
    }
}

/// Reads and dispatches every complete frame on one connection.
fn drive_conn(
    state: &Arc<State>,
    poller: &mut Poller,
    conns: &mut Conns<OTag>,
    channels: &mut HashMap<u32, u64>,
    total_partitions: &mut u32,
    outbox: &mut Vec<(u64, HttpMsg)>,
    token: u64,
) {
    {
        let Some(conn) = conns.get_mut(token) else {
            return;
        };
        if conn.read_ready().is_err() {
            conns.close(poller, token);
            return;
        }
    }
    loop {
        let Some(conn) = conns.get_mut(token) else {
            return;
        };
        let Conn {
            rbuf,
            sbuf,
            tag,
            eof,
            close_after_flush,
            ..
        } = conn;
        let step = match decode_frame(rbuf.data(), *eof) {
            Ok(None) => break, // mid-frame; more bytes may arrive
            Err(WireError::Closed) => {
                // Clean EOF between frames: deliver queued output first.
                if sbuf.is_empty() {
                    conns.close(poller, token);
                } else {
                    *close_after_flush = true;
                    conns.flush(poller, token);
                }
                return;
            }
            Err(_) => {
                conns.close(poller, token);
                return;
            }
            Ok(Some((msg, used))) => {
                let after = dispatch(
                    state,
                    sbuf,
                    tag,
                    channels,
                    total_partitions,
                    outbox,
                    token,
                    &msg,
                );
                rbuf.consume(used);
                after
            }
        };
        match step {
            After::Keep => {}
            After::CloseAfterFlush => {
                *close_after_flush = true;
                break;
            }
            After::Close => {
                conns.close(poller, token);
                return;
            }
        }
    }
    conns.flush(poller, token);
}

/// Handles one decoded message; replies go into `sbuf`, pushes to other
/// connections into `outbox`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    state: &Arc<State>,
    sbuf: &mut wcc_reactor::SendBuf,
    tag: &mut OTag,
    channels: &mut HashMap<u32, u64>,
    total_partitions: &mut u32,
    outbox: &mut Vec<(u64, HttpMsg)>,
    token: u64,
    msg: &HttpMsgRef<'_>,
) -> After {
    match msg {
        HttpMsgRef::Get(get) if get.url.server() == state.server => {
            let clock = WallClock::start();
            let reply = state.handle_get(get);
            // Record before the reply ships: once the requester's fetch
            // returns, a scrape must already see this serve.
            state
                .protected
                .lock()
                .serve_latency
                .record(clock.elapsed().as_micros());
            sbuf.push_bytes(&encode(&reply));
            After::Keep
        }
        HttpMsgRef::MetricsGet => {
            // One-shot scrape: raw HTTP response, then close.
            sbuf.push_bytes(&crate::scrape::metrics_response(&state.render_metrics()));
            After::CloseAfterFlush
        }
        HttpMsgRef::Notify { url, at } if url.server() == state.server => {
            match state.handle_notify(*url, *at) {
                Fanout::PerWrite(recipients) => {
                    let partitions = (*total_partitions).max(1);
                    for client in recipients {
                        let partition = client.partition(partitions);
                        if let Some(&tok) = channels.get(&partition) {
                            // Best-effort: a dead channel leaves the entry
                            // pending; a re-registered proxy (or the bulk
                            // recovery invalidation) will pick it up.
                            outbox.push((tok, HttpMsg::Invalidate { url: *url, client }));
                        }
                    }
                }
                Fanout::Queued { flush } => {
                    if flush {
                        flush_batches(state, channels, *total_partitions, outbox);
                    }
                }
            }
            After::Keep
        }
        HttpMsgRef::InvalAck {
            url,
            client,
            cache_hits: _,
        } => {
            state.handle_ack(*url, *client);
            After::Keep
        }
        HttpMsgRef::InvalidateBatchAck(ack) if ack.server == state.server => {
            // A whole proposer round acknowledged: clean the site lists
            // entry by entry, exactly as per-entry `InvalAck`s would.
            for e in ack.entries() {
                state.handle_ack(e.url, e.client);
            }
            After::Keep
        }
        HttpMsgRef::InvalidateServerAck { server } if *server == state.server => {
            let mut p = state.protected.lock();
            p.counters.acks += 1;
            if let Some(partition) = tag.partition {
                p.recovery_pending.remove(&partition);
                p.recovery_acked.insert(partition);
            }
            After::Keep
        }
        HttpMsgRef::Hello {
            partition,
            partitions,
        } => {
            *total_partitions = (*partitions).max(1);
            channels.insert(*partition, token);
            tag.partition = Some(*partition);
            let mut p = state.protected.lock();
            if p.recovering && !p.recovery_acked.contains(partition) {
                // §5: the restarted origin cannot know which copies this
                // proxy holds, so it invalidates them all and waits for
                // the ack (the reactor's 250 ms tick retries).
                p.recovery_pending.insert(*partition);
                sbuf.push_bytes(&encode(&HttpMsg::InvalidateServer {
                    server: state.server,
                }));
            }
            After::Keep
        }
        HttpMsgRef::Reply(_)
        | HttpMsgRef::Invalidate { .. }
        | HttpMsgRef::InvalidateBatch(_)
        | HttpMsgRef::InvalidateServer { .. } => {
            After::Close // protocol violation: these flow origin -> proxy only
        }
        // Guard fallthrough: a Get/Notify/ack for a server we do not own.
        _ => After::Close,
    }
}

/// The modifier's check-in utility: tells the accelerator at `origin` that
/// `url` was modified at (logical) time `at`.
///
/// # Errors
///
/// Returns any socket error.
pub fn check_in(origin: SocketAddr, url: Url, at: SimTime) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(origin)?;
    stream.write_all(&encode(&HttpMsg::Notify { url, at }))?;
    stream.flush()
}
