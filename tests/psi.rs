//! Integration tests for the PSI (piggyback server invalidation) extension.

use wcc_core::ProtocolKind;
use wcc_replay::experiment::{materialise, run_on};
use wcc_replay::ExperimentConfig;
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn reports() -> (
    wcc_httpsim::RawReport,
    wcc_httpsim::RawReport,
    wcc_httpsim::RawReport,
) {
    let base = ExperimentConfig::builder(TraceSpec::sask().scaled_down(60))
        .mean_lifetime(SimDuration::from_days(7))
        .seed(91)
        .build();
    let (trace, mods) = materialise(&base);
    let run = |kind: ProtocolKind| {
        let mut cfg = base.clone();
        cfg.protocol = wcc_core::ProtocolConfig::new(kind);
        run_on(&cfg, &trace, &mods).raw
    };
    (
        run(ProtocolKind::PiggybackInvalidation),
        run(ProtocolKind::Invalidation),
        run(ProtocolKind::AdaptiveTtl),
    )
}

#[test]
fn psi_sends_no_dedicated_messages() {
    let (psi, push, _ttl) = reports();
    assert_eq!(psi.invalidations, 0, "PSI never pushes");
    assert_eq!(psi.ims, 0, "PSI trusts its leases; no validations");
    assert!(psi.piggybacked > 0, "invalidations must ride replies");
    assert!(push.piggybacked == 0);
    // Cheapest on the wire: strictly fewer messages than push invalidation.
    assert!(
        psi.total_messages < push.total_messages,
        "psi {} vs push {}",
        psi.total_messages,
        push.total_messages
    );
}

#[test]
fn psi_staleness_is_nonzero_but_write_completion_is_trivial() {
    let (psi, push, _ttl) = reports();
    // Weak consistency: some staleness expected (copies outlive
    // modifications until the site's next contact).
    assert!(psi.stale_hits > 0, "PSI should show bounded staleness");
    assert_eq!(push.stale_hits, 0);
    // PSI has no pending pushes by construction.
    assert!(psi.writes_complete);
}

#[test]
fn psi_bytes_track_the_other_protocols() {
    let (psi, push, ttl) = reports();
    let base = push.total_bytes.as_u64() as f64;
    for (name, r) in [("psi", &psi), ("ttl", &ttl)] {
        let ratio = r.total_bytes.as_u64() as f64 / base;
        assert!((0.95..=1.05).contains(&ratio), "{name} byte ratio {ratio}");
    }
}
