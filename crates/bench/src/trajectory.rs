//! The tracked bench trajectory: timing the replay engine release over
//! release.
//!
//! [`run`] times two fixed-seed workloads and emits a machine-readable
//! report (`BENCH_replay.json` at the repo root, written by the
//! `trajectory` binary and uploaded by CI):
//!
//! * **grid** — the full Tables 3 + 4 grid (six experiments × three
//!   protocols = 18 independent replays), once sequentially (`--jobs 1`)
//!   and once fanned out over the worker pool. The two passes must be
//!   byte-identical (`Debug`-string comparison, the same oracle as
//!   `tests/determinism.rs`); the report records both wall times and the
//!   speedup.
//! * **sharded** — the same grid with every replay running on the sharded
//!   engine (`--shards N`, at least 2): per-origin shards executing bounded
//!   time windows with cross-shard event exchange at barriers (see
//!   `wcc_simnet::ShardedSimulation`). The pass must be byte-identical to
//!   the sequential grid; the report records its wall time and speedup.
//!   Unlike the fan-out above (whole replays in parallel), this parallelises
//!   *inside* one replay, so it is the number to watch when a single huge
//!   experiment — not a grid — is the bottleneck.
//! * **inner loop** — the EPA invalidation replay on one thread, reported
//!   as requests per second. This isolates single-threaded engine
//!   throughput from fan-out, so hot-path work (hashing, allocation,
//!   message encoding) shows up here and thread-pool work shows up above.
//!   The workload is floored at the scale-2 replay (20 329 requests) even
//!   when the grid is scaled down further, so the arena's steady-state
//!   recycle ratio is measured on a run long enough for the slab's
//!   warm-up ramp and parked-timer footprint not to dominate it.
//! * **family** — one flash-crowd federation scenario
//!   (`FamilyConfig::city`, 64 origins sharing a client pool) replayed
//!   sequentially and on the 8-shard engine. The two passes must be
//!   byte-identical, and the report carries the deterministic state-memory
//!   model (`Deployment::memory_model`): peak trace-record + site-list
//!   bytes under the current layout versus the legacy AoS/merged-stream
//!   layout. The ≥30% reduction is host-independent, so [`check_against`]
//!   gates it everywhere; the `family_peak_rss_kb` field (VmHWM) is
//!   informational only.
//!
//! Since schema /7 the report also carries a **proposer** block: the PR 7
//! write storms (the flash-crowd federation above plus its breaking-news
//! sibling) replayed once under per-write invalidation fan-out and once
//! under the default batched proposer (`InvalBatchConfig::default()`,
//! count threshold 8). The block records the wire INVALIDATE traffic of
//! both passes, the coalesce ratio (intents per delivered entry) and the
//! write-completion tails; [`check_against`] gates a ≥30% message cut, a
//! coalesce ratio above 1 and a batched write-completion p99 no worse
//! than per-write — all off the simulation clock, so they reproduce on
//! any host. The batched flash-crowd replay also runs on the 8-shard
//! engine and must stay byte-identical to its sequential pass.
//!
//! Since schema /5 the report also carries an **alloc_stats** block: the
//! engine arena's event-recycling counters from the inner-loop replay
//! (steady state must serve ≥95% of event allocations from recycled
//! slots) and the zero-copy decode probe ([`wcc_proto::codec_sweep`] over
//! the inner trace re-expressed as wire traffic — the only owned copies
//! allowed are the retention copies where a `200` body enters a cache).
//! Both gates judge the current run alone, so they hold on any host.
//!
//! The `BASELINE_*` constants are the same measurements taken at scale 1
//! immediately **before** this round of optimisation (default-hasher maps,
//! per-call `String` paths on the wire encoder, sequential-only harness) on
//! the reference dev container, and the `PRE_SHARD_*` constants repeat the
//! exercise immediately before the sharded-engine round (BinaryHeap event
//! queue, sequential engine only), so the JSON carries its own
//! before/after for both optimisation rounds. Baselines are only
//! comparable at `scale == 1` on similar hardware; `host_cores` is
//! recorded so a single-core runner's `speedup ≈ 1` is not mistaken for a
//! pool regression — on one core the sharded pass *cannot* win and is
//! instead gated on a cost ceiling over the sequential engine.
//!
//! This is the one module in the workspace allowed to read the wall clock
//! (`Instant::now`): it measures real elapsed time by design and feeds
//! nothing back into any simulation. `xtask lint` allowlists exactly this
//! file.

use std::fmt::Write as _;
use std::time::Instant;

use crate::{paper_experiments, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{Deployment, DeploymentOptions, RawReport};
use wcc_replay::{run_batch, run_experiment_sharded, ExperimentConfig};
use wcc_traces::family::{self, FamilyConfig, WorkloadFamily};
use wcc_traces::TraceSpec;
use wcc_types::InvalBatchConfig;

/// Shard count of the family pass — the acceptance configuration for the
/// federation workloads ("replays byte-identically sequential vs 8 shards").
pub const FAMILY_SHARDS: usize = 8;

/// Wall time of the full Tables 3+4 grid, run sequentially, measured at
/// scale 1 on the reference container *before* the hot-path optimisation
/// round (milliseconds).
pub const BASELINE_GRID_SEQUENTIAL_MS: u64 = 2794;

/// Wall time of the inner-loop workload (full EPA invalidation replay)
/// before the optimisation round, same conditions (milliseconds).
pub const BASELINE_INNER_WALL_MS: u64 = 170;

/// Requests per second of the inner-loop workload before the optimisation
/// round (`40_658` requests / [`BASELINE_INNER_WALL_MS`]).
pub const BASELINE_INNER_REQUESTS_PER_SEC: u64 = 239_000;

/// Wall time of the full grid, run sequentially, measured at scale 1 on the
/// 1-core reference container immediately **before** the sharded-engine
/// round (BinaryHeap event queue, sequential engine only) — milliseconds.
pub const PRE_SHARD_GRID_SEQUENTIAL_MS: u64 = 2582;

/// Inner-loop wall time immediately before the sharded-engine round, same
/// conditions (milliseconds).
pub const PRE_SHARD_INNER_WALL_MS: u64 = 133;

/// Inner-loop throughput immediately before the sharded-engine round
/// (requests per second).
pub const PRE_SHARD_INNER_REQUESTS_PER_SEC: u64 = 305_699;

/// Wall time of the full grid, run sequentially, immediately **before**
/// the raw-speed round (heap-boxed events, per-event cross-shard
/// scheduling, owned-only wire decode) — measured at scale 20 on the
/// 1-core reference container, i.e. the committed `ci/bench-baseline.json`
/// of that round (milliseconds).
pub const PRE_RAW_GRID_SEQUENTIAL_MS: u64 = 330;

/// Inner-loop wall time immediately before the raw-speed round, re-measured
/// from that round's tree at the pinned inner workload (EPA invalidation,
/// scale 2, 20 329 requests) on the same container — median of five
/// runs (milliseconds).
pub const PRE_RAW_INNER_WALL_MS: u64 = 200;

/// Inner-loop throughput immediately before the raw-speed round (requests
/// per second, same pinned scale-2 workload).
pub const PRE_RAW_INNER_REQUESTS_PER_SEC: u64 = 101_645;

/// Simulated-time latency tails of one grid replay. These come from the
/// deterministic simulation clock, not the host wall clock, so they must
/// reproduce *exactly* across machines — the regression gate compares them
/// byte-for-byte.
#[derive(Debug, Clone)]
pub struct TailEntry {
    /// Trace name (`EPA`, `SASK`, ...).
    pub trace: String,
    /// Protocol name (`adaptive-ttl`, `poll-every-time`, `invalidation`).
    pub protocol: &'static str,
    /// Median request latency in simulated microseconds.
    pub p50_us: u64,
    /// 90th-percentile request latency in simulated microseconds.
    pub p90_us: u64,
    /// 99th-percentile request latency in simulated microseconds.
    pub p99_us: u64,
}

/// One trajectory measurement, ready to serialise.
#[derive(Debug, Clone)]
pub struct TrajectoryReport {
    /// Workload divisor the run used (baselines assume 1).
    pub scale: u64,
    /// Worker count of the parallel grid pass.
    pub jobs: usize,
    /// Cores the host reported (`available_parallelism`).
    pub host_cores: usize,
    /// Coarse identity of the measuring host (arch/OS/cores/CPU model).
    /// Timing baselines are only comparable between equal fingerprints;
    /// [`check_against`] downgrades the timing gates to informational when
    /// they differ.
    pub host_fingerprint: String,
    /// Replays in the grid (6 experiments × 3 protocols).
    pub grid_configs: usize,
    /// Grid wall time with `--jobs 1` (milliseconds).
    pub grid_sequential_ms: u64,
    /// Grid wall time fanned out over `jobs` workers (milliseconds).
    pub grid_parallel_ms: u64,
    /// `grid_sequential_ms / grid_parallel_ms`.
    pub speedup: f64,
    /// Whether the two grid passes produced byte-identical reports
    /// (`Debug`-string comparison). Anything but `true` is a bug.
    pub byte_identical: bool,
    /// Shard count of the sharded grid pass (always at least 2).
    pub shards: usize,
    /// Grid wall time with every replay on the sharded engine
    /// (milliseconds).
    pub sharded_grid_ms: u64,
    /// `grid_sequential_ms / sharded_grid_ms`.
    pub sharded_speedup: f64,
    /// Whether the sharded grid pass matched the sequential one
    /// byte-for-byte. Anything but `true` is a bug.
    pub sharded_byte_identical: bool,
    /// Requests replayed by the inner-loop workload.
    pub inner_requests: u64,
    /// Inner-loop wall time (milliseconds).
    pub inner_wall_ms: u64,
    /// Inner-loop throughput.
    pub inner_requests_per_sec: u64,
    /// Event-arena allocations during the inner-loop replay.
    pub events_allocated: u64,
    /// Of those, served from the arena's free list instead of the global
    /// allocator.
    pub events_recycled: u64,
    /// `events_recycled / events_allocated`, percent. Gated at ≥95 by
    /// [`check_against`] — steady-state event dispatch must not touch the
    /// global allocator.
    pub events_recycled_pct: f64,
    /// Peak in-flight events the arena held at once.
    pub events_peak_live: u64,
    /// Messages pushed through the zero-copy decode probe
    /// ([`wcc_proto::codec_sweep`] over the inner trace as wire traffic).
    pub decode_messages: u64,
    /// Encoded bytes the probe decoded.
    pub decode_bytes: u64,
    /// Probe messages whose bulk data stayed borrowed in the buffer.
    pub decode_borrows: u64,
    /// Probe messages that needed an owning copy. Gated by
    /// [`check_against`] to equal `decode_retained` exactly: the only
    /// copies are retention copies.
    pub decode_copies: u64,
    /// Probe messages a cache retains past the buffer (`200` replies).
    pub decode_retained: u64,
    /// Per-config simulated latency tails of the sequential grid pass, in
    /// table order (deterministic — see [`TailEntry`]).
    pub tails: Vec<TailEntry>,
    /// Name of the family pass's scenario (`flash-crowd`).
    pub family_name: &'static str,
    /// Origins in the family federation (one trace each).
    pub family_origins: usize,
    /// Configured size of the federation's shared client pool.
    pub family_clients: u64,
    /// Requests replayed by the family pass.
    pub family_requests: u64,
    /// Shard count of the family pass's sharded replay ([`FAMILY_SHARDS`]).
    pub family_shards: usize,
    /// Wall time of both family replays (sequential + sharded) combined,
    /// milliseconds.
    pub family_wall_ms: u64,
    /// Family throughput: requests replayed across both passes
    /// (`2 × family_requests`) over [`family_wall_ms`]. Informational,
    /// like every derived quotient.
    pub family_requests_per_sec: u64,
    /// Whether the 8-shard family replay matched the sequential one
    /// byte-for-byte. Anything but `true` is a bug.
    pub family_byte_identical: bool,
    /// Peak simulation-state bytes (trace-record partitions + site lists)
    /// under the current memory-lean layout — deterministic, from
    /// `Deployment::memory_model`.
    pub family_state_bytes: u64,
    /// The same peak under the legacy layout (merged record stream +
    /// AoS site-list entries) — the refactor's "before" number.
    pub family_legacy_state_bytes: u64,
    /// `(legacy - current) / legacy`, percent. Host-independent; gated
    /// at ≥30 by [`check_against`].
    pub family_memory_reduction_pct: f64,
    /// Peak RSS of this process (`VmHWM`, kilobytes) after the family
    /// pass. Informational only: allocator- and host-dependent, `0` off
    /// Linux.
    pub family_peak_rss_kb: u64,
    /// Concurrent keep-alive connections the serving-tier pass drove
    /// against an in-process origin+proxy pair (schema /6).
    pub serve_connections: usize,
    /// Replies the serving-tier pass received and audited.
    pub serve_requests: u64,
    /// Connections the serving tier dropped mid-run. Gated at exactly 0
    /// on the current run by [`check_against`].
    pub serve_dropped: u64,
    /// Stale serves the client-side audit counted. Gated at exactly 0 on
    /// the current run — the paper's strong-consistency invariant, seen
    /// from the browser.
    pub serve_stale: u64,
    /// Median request latency over real sockets, host microseconds.
    pub serve_p50_us: u64,
    /// 90th-percentile serving latency, host microseconds.
    pub serve_p90_us: u64,
    /// 99th-percentile serving latency, host microseconds. Same-host
    /// baselines gate it within tolerance; foreign hosts informational.
    pub serve_p99_us: u64,
    /// 99.9th-percentile serving latency, host microseconds.
    pub serve_p999_us: u64,
    /// Wall time of the serving-tier pass, milliseconds.
    pub serve_wall_ms: u64,
    /// Serving throughput, replies per wall second. Informational.
    pub serve_requests_per_sec: u64,
    /// Count threshold of the batched proposer pass
    /// (`InvalBatchConfig::default().max_entries`, schema /7).
    pub proposer_batch_entries: usize,
    /// Wire INVALIDATE messages of the batched write-storm passes
    /// (flash-crowd + breaking-news; batch messages counted once).
    pub proposer_messages: u64,
    /// Wire INVALIDATE messages of the same storms under per-write
    /// fan-out — the counterfactual the reduction is judged against.
    pub proposer_per_write_messages: u64,
    /// `(per_write - batched) / per_write`, percent. Deterministic; gated
    /// at ≥30 by [`check_against`].
    pub proposer_reduction_pct: f64,
    /// Invalidation intents per delivered entry across both batched
    /// storms (`> 1` once repeated writes coalesce). Gated at > 1.
    pub proposer_coalesce_ratio: f64,
    /// Median write-completion time (first fan-out to last ack) of the
    /// batched passes, simulated microseconds.
    pub proposer_write_p50_us: u64,
    /// 99th-percentile write-completion time of the batched passes,
    /// simulated microseconds. Gated to be no worse than
    /// [`Self::proposer_per_write_p99_us`].
    pub proposer_write_p99_us: u64,
    /// 99th-percentile write-completion time of the per-write passes,
    /// simulated microseconds.
    pub proposer_per_write_p99_us: u64,
    /// Whether the batched flash-crowd replay matched its 8-shard run
    /// byte-for-byte. Anything but `true` is a bug.
    pub proposer_byte_identical: bool,
    /// Wall time of all proposer-pass replays combined, milliseconds.
    pub proposer_wall_ms: u64,
}

/// The 18-config Tables 3+4 grid at `scale`, in table order.
pub fn grid_configs(scale: u64) -> Vec<ExperimentConfig> {
    paper_experiments()
        .into_iter()
        .flat_map(|(spec, lifetime, _)| {
            ProtocolKind::PAPER_TRIO.map(|kind| {
                ExperimentConfig::builder(spec.clone().scaled_down(scale))
                    .protocol_config(ProtocolConfig::new(kind))
                    .mean_lifetime(lifetime)
                    .seed(TABLE_SEED)
                    .build()
            })
        })
        .collect()
}

/// Unique per-experiment row labels for the grid, in table order: the
/// trace names, with the two SDSC lifetime variants disambiguated by the
/// paper's modification counts (`SDSC(57)`, `SDSC(576)`).
///
/// The labels come from [`paper_experiments`]' fixed counts, not from the
/// scaled spec, so reduced-scale CI runs and the committed full-scale
/// baseline emit identical `latency_tails` keys. Before schema /5 the
/// tails reused the bare trace name, so the two SDSC experiments produced
/// six rows under five distinct keys — ambiguous for any by-key consumer;
/// [`run`] now asserts the `(trace, protocol)` keys are unique.
pub fn grid_trace_labels() -> Vec<String> {
    paper_experiments()
        .iter()
        .map(|(spec, _, paper_mods)| {
            if spec.name == "SDSC" {
                format!("SDSC({paper_mods})")
            } else {
                spec.name.to_string()
            }
        })
        .collect()
}

/// A coarse identifier of the measuring host: architecture, OS, core count
/// and CPU model, e.g. `x86_64/linux/8c/AMD EPYC 7B13`.
///
/// Wall-clock baselines taken on one machine say nothing about another, so
/// the report records where it was measured and [`check_against`] only
/// enforces the timing gates when the fingerprints agree (the deterministic
/// fields are gated regardless — they must reproduce everywhere).
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model = cpu_model().unwrap_or_else(|| "unknown-cpu".to_string());
    format!(
        "{}/{}/{}c/{}",
        std::env::consts::ARCH,
        std::env::consts::OS,
        cores,
        model
    )
}

/// First `model name` from `/proc/cpuinfo`, sanitised so the fingerprint
/// embeds into the JSON report without escaping. `None` off Linux.
fn cpu_model() -> Option<String> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let line = info.lines().find(|l| l.starts_with("model name"))?;
    let (_, model) = line.split_once(':')?;
    let clean: String = model
        .trim()
        .chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect();
    if clean.is_empty() {
        None
    } else {
        Some(clean)
    }
}

/// Peak resident-set size of this process so far (`VmHWM` from
/// `/proc/self/status`), in kilobytes. Informational only — it depends on
/// the allocator and everything the process ran before — and `0` off
/// Linux.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn millis(elapsed: std::time::Duration) -> u64 {
    // Round up so a sub-millisecond run never reports 0 (and never divides
    // by zero downstream).
    elapsed.as_millis().max(1) as u64
}

/// Runs the trajectory workloads and returns the measurements.
///
/// `jobs` follows the usual resolution ([`wcc_replay::effective_jobs`]):
/// explicit value, else `WCC_JOBS`, else the core count. `shards` is the
/// already-resolved shard count of the sharded pass (see
/// [`crate::resolve_trajectory_shards`]); a count of 1 — the `--shards
/// auto` resolution on a 1-core host — re-measures the sequential engine
/// through the sharded entry point instead of paying the barrier tax for
/// parallelism the host cannot deliver.
pub fn run(scale: u64, jobs: Option<usize>, shards: usize) -> TrajectoryReport {
    let jobs = wcc_replay::effective_jobs(jobs);
    let shards = shards.max(1);
    let configs = grid_configs(scale);

    let start = Instant::now();
    let sequential = run_batch(&configs, Some(1));
    let grid_sequential_ms = millis(start.elapsed());

    let start = Instant::now();
    let parallel = run_batch(&configs, Some(jobs));
    let grid_parallel_ms = millis(start.elapsed());

    let byte_identical = sequential.len() == parallel.len()
        && sequential
            .iter()
            .zip(&parallel)
            .all(|(s, p)| format!("{s:?}") == format!("{p:?}"));

    // Sharded pass: the same grid, one replay at a time, each running on
    // the sharded engine. Kept sequential at the batch level so the wall
    // time isolates engine-sharding from the fan-out pool.
    let start = Instant::now();
    let sharded: Vec<_> = configs
        .iter()
        .map(|cfg| run_experiment_sharded(cfg, shards))
        .collect();
    let sharded_grid_ms = millis(start.elapsed());
    let sharded_byte_identical = sequential.len() == sharded.len()
        && sequential
            .iter()
            .zip(&sharded)
            .all(|(s, p)| format!("{s:?}") == format!("{p:?}"));

    let us = |d: Option<wcc_types::SimDuration>| d.map_or(0, |d| d.as_micros());
    let labels = grid_trace_labels();
    let per_trio = ProtocolKind::PAPER_TRIO.len();
    let tails: Vec<TailEntry> = sequential
        .iter()
        .enumerate()
        .map(|(i, r)| TailEntry {
            trace: labels[i / per_trio].clone(),
            protocol: r.protocol.name(),
            p50_us: us(r.raw.latency.median()),
            p90_us: us(r.raw.latency.p90()),
            p99_us: us(r.raw.latency.p99()),
        })
        .collect();
    let mut tail_keys = std::collections::BTreeSet::new();
    for t in &tails {
        assert!(
            tail_keys.insert((t.trace.clone(), t.protocol)),
            "duplicate latency_tails row {}/{}",
            t.trace,
            t.protocol
        );
    }

    // Inner loop: one full EPA invalidation replay on the calling thread,
    // timed end-to-end like `run_experiment` (materialisation included)
    // and then mined for the engine arena's allocation counters. The
    // workload is floored at the scale-2 replay (20 329 requests) no
    // matter how far the grid is scaled down: the recycle ratio is
    // `1 - peak_live / allocated`, and peak_live is dominated by
    // long-pending TTL timers parked in the overflow heap, so a tiny
    // workload would let that footprint dominate the denominator and make
    // the ≥95% steady-state gate unmeetable for structural, not
    // regression, reasons. All of these counters come off the simulation
    // clock and are byte-deterministic, so the measured ratio carries no
    // host noise.
    let inner_scale = scale.min(2);
    let inner_cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(inner_scale))
        .protocol(ProtocolKind::Invalidation)
        .seed(TABLE_SEED)
        .build();
    let start = Instant::now();
    let (inner_trace, inner_mods) = wcc_replay::materialise(&inner_cfg);
    let mut inner_dep = Deployment::build(
        &inner_trace,
        &inner_mods,
        &inner_cfg.protocol,
        inner_cfg.options.clone(),
    );
    inner_dep.run();
    let inner_raw = inner_dep.collect();
    let inner_wall_ms = millis(start.elapsed());
    let alloc = inner_dep.alloc_stats();

    // Decode probe: the inner trace re-expressed as wire traffic — one GET
    // per record, answered with a 200 on the first touch of each document
    // (the retention copy into a cache) and a 304 thereafter.
    let mut corpus = Vec::with_capacity(inner_trace.records.len() * 2);
    let mut first_touch = vec![true; inner_trace.doc_count()];
    for (i, rec) in inner_trace.records.iter().enumerate() {
        let req = wcc_proto::RequestId::new(i as u64);
        corpus.push(wcc_proto::HttpMsg::Get(wcc_proto::GetRequest {
            req,
            url: rec.url,
            client: rec.client,
            ims: None,
            issued_at: rec.at,
            cache_hits: 0,
        }));
        let doc = rec.url.doc();
        let status = if std::mem::take(&mut first_touch[doc as usize]) {
            let meta = wcc_types::DocMeta::new(inner_trace.doc_size(doc), wcc_types::SimTime::ZERO);
            wcc_proto::ReplyStatus::Ok(wcc_types::Body::synthetic(meta, 100))
        } else {
            wcc_proto::ReplyStatus::NotModified
        };
        corpus.push(wcc_proto::HttpMsg::Reply(wcc_proto::Reply {
            req,
            url: rec.url,
            client: rec.client,
            status,
            lease: None,
            piggyback: Vec::new(),
            volume_lease: None,
        }));
    }
    let codec = wcc_proto::codec_sweep(&corpus);

    // Family pass: one flash-crowd federation (64 origins, shared client
    // pool), replayed sequentially and on the 8-shard engine, compared
    // with the same Debug-string oracle as the grids. The state-bytes
    // pair comes from the deterministic memory model, not the host
    // allocator, so the reduction gate reproduces everywhere.
    let family_cfg = FamilyConfig::city(WorkloadFamily::FlashCrowd).scaled_down(scale);
    let family_workload = family::generate(&family_cfg, TABLE_SEED);
    let family_protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let start = Instant::now();
    let mut fam_seq = Deployment::build_multi(
        &family_workload.workloads,
        &family_protocol,
        DeploymentOptions::default(),
    );
    fam_seq.run();
    let fam_seq_report = fam_seq.collect();
    let mut fam_shd = Deployment::build_multi(
        &family_workload.workloads,
        &family_protocol,
        DeploymentOptions::default(),
    );
    fam_shd.run_sharded(FAMILY_SHARDS);
    let fam_shd_report = fam_shd.collect();
    let family_wall_ms = millis(start.elapsed());
    let family_byte_identical = format!("{fam_seq_report:?}") == format!("{fam_shd_report:?}");
    let family_memory = fam_seq.memory_model();

    // Proposer pass (schema /7): the PR 7 write storms — the flash-crowd
    // federation above plus its breaking-news sibling — once under
    // per-write fan-out and once under the default batched proposer. The
    // flash-crowd per-write leg reuses the family pass's sequential report
    // (same workload, same options), and the batched flash-crowd replay
    // runs both sequentially and on the 8-shard engine so the batched
    // write-completion path is pinned byte-identical under sharding.
    // Message counts, coalesce ratio and write-completion tails all come
    // off the simulation clock, so the gates reproduce on any host.
    let batch_cfg = InvalBatchConfig::default();
    let batched_options = DeploymentOptions {
        inval_batch: Some(batch_cfg),
        ..DeploymentOptions::default()
    };
    let wire_invalidations = |r: &RawReport| {
        r.origin_counters.invalidations_sent - r.origin_counters.batched_entries
            + r.origin_counters.inval_batches
    };
    let bn_cfg = FamilyConfig::city(WorkloadFamily::BreakingNews).scaled_down(scale);
    let bn_workload = family::generate(&bn_cfg, TABLE_SEED);
    let start = Instant::now();
    let mut bn_pw = Deployment::build_multi(
        &bn_workload.workloads,
        &family_protocol,
        DeploymentOptions::default(),
    );
    bn_pw.run();
    let bn_pw_report = bn_pw.collect();
    let mut fc_batched = Deployment::build_multi(
        &family_workload.workloads,
        &family_protocol,
        batched_options.clone(),
    );
    fc_batched.run();
    let fc_batched_report = fc_batched.collect();
    let mut fc_batched_shd = Deployment::build_multi(
        &family_workload.workloads,
        &family_protocol,
        batched_options.clone(),
    );
    fc_batched_shd.run_sharded(FAMILY_SHARDS);
    let fc_batched_shd_report = fc_batched_shd.collect();
    let mut bn_batched =
        Deployment::build_multi(&bn_workload.workloads, &family_protocol, batched_options);
    bn_batched.run();
    let bn_batched_report = bn_batched.collect();
    let proposer_wall_ms = millis(start.elapsed());
    let proposer_byte_identical =
        format!("{fc_batched_report:?}") == format!("{fc_batched_shd_report:?}");

    let proposer_per_write_messages =
        wire_invalidations(&fam_seq_report) + wire_invalidations(&bn_pw_report);
    let proposer_messages =
        wire_invalidations(&fc_batched_report) + wire_invalidations(&bn_batched_report);
    let proposer_reduction_pct = if proposer_per_write_messages == 0 {
        0.0
    } else {
        (1.0 - proposer_messages as f64 / proposer_per_write_messages as f64) * 100.0
    };
    let (mut enqueued, mut flushed) = (0u64, 0u64);
    for r in [&fc_batched_report, &bn_batched_report] {
        if let Some(p) = r.proposer {
            enqueued += p.enqueued;
            flushed += p.flushed_entries;
        }
    }
    let proposer_coalesce_ratio = if flushed == 0 {
        1.0
    } else {
        enqueued as f64 / flushed as f64
    };
    let mut batched_writes = fc_batched_report.write_completion.clone();
    batched_writes.merge(&bn_batched_report.write_completion);
    let mut per_write_writes = fam_seq_report.write_completion.clone();
    per_write_writes.merge(&bn_pw_report.write_completion);

    // Serving-tier pass (schema /6): the readiness-reactor origin+proxy
    // pair under a few thousand keep-alive connections, in-process so the
    // pass needs no child binaries. The floor of 64 keeps reduced-scale
    // CI runs meaningful; full scale drives 2048. The dropped/stale gates
    // are judged on the current run alone (host-independent); the latency
    // tail follows the usual same-host timing rule.
    let serve_cfg = crate::serve::ServeBenchConfig {
        connections: (2048 / scale.max(1)).max(64) as usize,
        requests_per_conn: 8,
        docs: 64,
        protocol: ProtocolConfig::new(ProtocolKind::Invalidation),
        soak_secs: None,
        restart: false,
        exe: None,
    };
    let serve = crate::serve::run(&serve_cfg).expect("serving-tier bench pass");
    let q = |v: Option<u64>| v.unwrap_or(0);

    TrajectoryReport {
        scale,
        jobs,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        host_fingerprint: host_fingerprint(),
        grid_configs: configs.len(),
        grid_sequential_ms,
        grid_parallel_ms,
        speedup: grid_sequential_ms as f64 / grid_parallel_ms as f64,
        byte_identical,
        shards,
        sharded_grid_ms,
        sharded_speedup: grid_sequential_ms as f64 / sharded_grid_ms as f64,
        sharded_byte_identical,
        inner_requests: inner_raw.requests,
        inner_wall_ms,
        inner_requests_per_sec: inner_raw.requests * 1000 / inner_wall_ms,
        events_allocated: alloc.allocated,
        events_recycled: alloc.recycled,
        events_recycled_pct: alloc.recycled_pct(),
        events_peak_live: alloc.peak_live,
        decode_messages: codec.messages,
        decode_bytes: codec.bytes,
        decode_borrows: codec.borrows,
        decode_copies: codec.copies,
        decode_retained: codec.retained,
        tails,
        family_name: family_cfg.family.name(),
        family_origins: family_workload.workloads.len(),
        family_clients: u64::from(family_cfg.spec.num_clients),
        family_requests: family_workload.total_requests(),
        family_shards: FAMILY_SHARDS,
        family_wall_ms,
        family_requests_per_sec: family_workload.total_requests() * 2 * 1000 / family_wall_ms,
        family_byte_identical,
        family_state_bytes: family_memory.peak_bytes(),
        family_legacy_state_bytes: family_memory.legacy_peak_bytes(),
        family_memory_reduction_pct: family_memory.reduction_pct(),
        family_peak_rss_kb: peak_rss_kb(),
        serve_connections: serve.connections,
        serve_requests: serve.requests,
        serve_dropped: serve.dropped,
        serve_stale: serve.stale,
        serve_p50_us: q(serve.latency.p50()),
        serve_p90_us: q(serve.latency.p90()),
        serve_p99_us: q(serve.latency.p99()),
        serve_p999_us: q(serve.latency.p999()),
        serve_wall_ms: serve.wall_ms,
        serve_requests_per_sec: serve.requests_per_sec() as u64,
        proposer_batch_entries: batch_cfg.max_entries,
        proposer_messages,
        proposer_per_write_messages,
        proposer_reduction_pct,
        proposer_coalesce_ratio,
        proposer_write_p50_us: us(batched_writes.median()),
        proposer_write_p99_us: us(batched_writes.p99()),
        proposer_per_write_p99_us: us(per_write_writes.p99()),
        proposer_byte_identical,
        proposer_wall_ms,
    }
}

impl TrajectoryReport {
    /// Serialises the report (plus the embedded baselines) as JSON.
    ///
    /// Hand-rolled — the workspace carries no serde — but stable: keys are
    /// emitted in a fixed order so diffs between releases are meaningful.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"wcc-bench-trajectory/7\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        out.push_str(&format!(
            "  \"host_fingerprint\": \"{}\",\n",
            self.host_fingerprint
        ));
        out.push_str("  \"grid\": {\n");
        out.push_str(&format!("    \"configs\": {},\n", self.grid_configs));
        out.push_str(&format!(
            "    \"sequential_ms\": {},\n",
            self.grid_sequential_ms
        ));
        out.push_str(&format!(
            "    \"parallel_ms\": {},\n",
            self.grid_parallel_ms
        ));
        out.push_str(&format!("    \"speedup\": {:.3},\n", self.speedup));
        out.push_str(&format!(
            "    \"byte_identical\": {}\n",
            self.byte_identical
        ));
        out.push_str("  },\n");
        // Key names stay unique document-wide ("sharded_ms", not a second
        // "wall_ms") so the linear key scan in `json_number` stays
        // unambiguous.
        out.push_str("  \"sharded\": {\n");
        out.push_str(&format!("    \"shards\": {},\n", self.shards));
        out.push_str(&format!("    \"sharded_ms\": {},\n", self.sharded_grid_ms));
        out.push_str(&format!(
            "    \"sharded_speedup\": {:.3},\n",
            self.sharded_speedup
        ));
        out.push_str(&format!(
            "    \"sharded_byte_identical\": {}\n",
            self.sharded_byte_identical
        ));
        out.push_str("  },\n");
        out.push_str("  \"inner_loop\": {\n");
        out.push_str("    \"workload\": \"EPA invalidation replay\",\n");
        out.push_str(&format!("    \"requests\": {},\n", self.inner_requests));
        out.push_str(&format!("    \"wall_ms\": {},\n", self.inner_wall_ms));
        out.push_str(&format!(
            "    \"requests_per_sec\": {}\n",
            self.inner_requests_per_sec
        ));
        out.push_str("  },\n");
        // Arena + decode counters (schema /5). Key names stay unique
        // document-wide, like every block's.
        out.push_str("  \"alloc_stats\": {\n");
        out.push_str(&format!(
            "    \"events_allocated\": {},\n",
            self.events_allocated
        ));
        out.push_str(&format!(
            "    \"events_recycled\": {},\n",
            self.events_recycled
        ));
        out.push_str(&format!(
            "    \"events_recycled_pct\": {:.1},\n",
            self.events_recycled_pct
        ));
        out.push_str(&format!(
            "    \"events_peak_live\": {},\n",
            self.events_peak_live
        ));
        out.push_str(&format!(
            "    \"decode_messages\": {},\n",
            self.decode_messages
        ));
        out.push_str(&format!("    \"decode_bytes\": {},\n", self.decode_bytes));
        out.push_str(&format!(
            "    \"decode_borrows\": {},\n",
            self.decode_borrows
        ));
        out.push_str(&format!("    \"decode_copies\": {},\n", self.decode_copies));
        out.push_str(&format!(
            "    \"decode_retained\": {}\n",
            self.decode_retained
        ));
        out.push_str("  },\n");
        // Every family key carries the "family_" prefix so the linear
        // key scans stay unambiguous against the grid blocks.
        out.push_str("  \"family\": {\n");
        out.push_str(&format!("    \"family_name\": \"{}\",\n", self.family_name));
        out.push_str(&format!(
            "    \"family_origins\": {},\n",
            self.family_origins
        ));
        out.push_str(&format!(
            "    \"family_clients\": {},\n",
            self.family_clients
        ));
        out.push_str(&format!(
            "    \"family_requests\": {},\n",
            self.family_requests
        ));
        out.push_str(&format!("    \"family_shards\": {},\n", self.family_shards));
        out.push_str(&format!(
            "    \"family_wall_ms\": {},\n",
            self.family_wall_ms
        ));
        out.push_str(&format!(
            "    \"family_requests_per_sec\": {},\n",
            self.family_requests_per_sec
        ));
        out.push_str(&format!(
            "    \"family_byte_identical\": {},\n",
            self.family_byte_identical
        ));
        out.push_str(&format!(
            "    \"family_state_bytes\": {},\n",
            self.family_state_bytes
        ));
        out.push_str(&format!(
            "    \"family_legacy_state_bytes\": {},\n",
            self.family_legacy_state_bytes
        ));
        out.push_str(&format!(
            "    \"family_memory_reduction_pct\": {:.1},\n",
            self.family_memory_reduction_pct
        ));
        out.push_str(&format!(
            "    \"family_peak_rss_kb\": {}\n",
            self.family_peak_rss_kb
        ));
        out.push_str("  },\n");
        // Serving-tier block (schema /6). Every key carries the "serve_"
        // prefix so the linear key scans stay unambiguous.
        out.push_str("  \"serve\": {\n");
        out.push_str(&format!(
            "    \"serve_connections\": {},\n",
            self.serve_connections
        ));
        out.push_str(&format!(
            "    \"serve_requests\": {},\n",
            self.serve_requests
        ));
        out.push_str(&format!("    \"serve_dropped\": {},\n", self.serve_dropped));
        out.push_str(&format!("    \"serve_stale\": {},\n", self.serve_stale));
        out.push_str(&format!("    \"serve_p50_us\": {},\n", self.serve_p50_us));
        out.push_str(&format!("    \"serve_p90_us\": {},\n", self.serve_p90_us));
        out.push_str(&format!("    \"serve_p99_us\": {},\n", self.serve_p99_us));
        out.push_str(&format!("    \"serve_p999_us\": {},\n", self.serve_p999_us));
        out.push_str(&format!("    \"serve_wall_ms\": {},\n", self.serve_wall_ms));
        out.push_str(&format!(
            "    \"serve_requests_per_sec\": {}\n",
            self.serve_requests_per_sec
        ));
        out.push_str("  },\n");
        // Batched-proposer block (schema /7). Every key carries the
        // "proposer_" prefix so the linear key scans stay unambiguous.
        out.push_str("  \"proposer\": {\n");
        out.push_str(&format!(
            "    \"proposer_batch_entries\": {},\n",
            self.proposer_batch_entries
        ));
        out.push_str(&format!(
            "    \"proposer_messages\": {},\n",
            self.proposer_messages
        ));
        out.push_str(&format!(
            "    \"proposer_per_write_messages\": {},\n",
            self.proposer_per_write_messages
        ));
        out.push_str(&format!(
            "    \"proposer_reduction_pct\": {:.1},\n",
            self.proposer_reduction_pct
        ));
        out.push_str(&format!(
            "    \"proposer_coalesce_ratio\": {:.3},\n",
            self.proposer_coalesce_ratio
        ));
        out.push_str(&format!(
            "    \"proposer_write_p50_us\": {},\n",
            self.proposer_write_p50_us
        ));
        out.push_str(&format!(
            "    \"proposer_write_p99_us\": {},\n",
            self.proposer_write_p99_us
        ));
        out.push_str(&format!(
            "    \"proposer_per_write_p99_us\": {},\n",
            self.proposer_per_write_p99_us
        ));
        out.push_str(&format!(
            "    \"proposer_byte_identical\": {},\n",
            self.proposer_byte_identical
        ));
        out.push_str(&format!(
            "    \"proposer_wall_ms\": {}\n",
            self.proposer_wall_ms
        ));
        out.push_str("  },\n");
        out.push_str("  \"latency_tails\": [\n");
        for (i, t) in self.tails.iter().enumerate() {
            let comma = if i + 1 == self.tails.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"trace\": \"{}\", \"protocol\": \"{}\", \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {} }}{comma}\n",
                t.trace, t.protocol, t.p50_us, t.p90_us, t.p99_us
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"baseline\": {\n");
        out.push_str(
            "    \"note\": \"pre-optimisation, scale 1, sequential harness, reference container\",\n",
        );
        out.push_str(&format!(
            "    \"grid_sequential_ms\": {},\n",
            BASELINE_GRID_SEQUENTIAL_MS
        ));
        out.push_str(&format!(
            "    \"inner_wall_ms\": {},\n",
            BASELINE_INNER_WALL_MS
        ));
        out.push_str(&format!(
            "    \"inner_requests_per_sec\": {}\n",
            BASELINE_INNER_REQUESTS_PER_SEC
        ));
        out.push_str("  },\n");
        out.push_str("  \"pre_shard\": {\n");
        out.push_str(
            "    \"note\": \"immediately before the sharded-engine round, scale 1, \
             sequential engine, 1-core reference container\",\n",
        );
        out.push_str(&format!(
            "    \"pre_shard_grid_ms\": {},\n",
            PRE_SHARD_GRID_SEQUENTIAL_MS
        ));
        out.push_str(&format!(
            "    \"pre_shard_inner_ms\": {},\n",
            PRE_SHARD_INNER_WALL_MS
        ));
        out.push_str(&format!(
            "    \"pre_shard_inner_rps\": {}\n",
            PRE_SHARD_INNER_REQUESTS_PER_SEC
        ));
        out.push_str("  },\n");
        out.push_str("  \"pre_raw\": {\n");
        out.push_str(
            "    \"note\": \"immediately before the raw-speed round (arena events, \
             batched windows, zero-copy decode), 1-core reference container; grid at \
             scale 20, inner loop at its pinned scale-2 workload\",\n",
        );
        out.push_str(&format!(
            "    \"pre_raw_grid_ms\": {},\n",
            PRE_RAW_GRID_SEQUENTIAL_MS
        ));
        out.push_str(&format!(
            "    \"pre_raw_inner_ms\": {},\n",
            PRE_RAW_INNER_WALL_MS
        ));
        out.push_str(&format!(
            "    \"pre_raw_inner_rps\": {}\n",
            PRE_RAW_INNER_REQUESTS_PER_SEC
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Extracts the first number stored under `"key":` in a report JSON.
///
/// The workspace carries no serde, and [`TrajectoryReport::to_json`] emits
/// keys in a fixed order with unique quoted names, so a linear scan is both
/// sufficient and stable. Returns `None` when the key is absent.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the first string stored under `"key":` in a report JSON.
///
/// Same linear-scan contract as [`json_number`]; the values the report
/// emits are pre-sanitised (no embedded quotes), so no unescaping is
/// needed. Returns `None` when the key is absent or not a string.
pub fn json_string(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The `"latency_tails": [...]` block of a report JSON, verbatim.
fn tails_block(doc: &str) -> Option<&str> {
    let start = doc.find("\"latency_tails\": [")?;
    let end = start + doc[start..].find(']')?;
    Some(&doc[start..=end])
}

/// Timing fields get an absolute grace on top of the relative tolerance:
/// reduced-scale CI runs finish in tens of milliseconds, where scheduler
/// noise alone exceeds any sane percentage.
const TIMING_GRACE_MS: f64 = 100.0;

/// Compares a fresh measurement against a committed baseline JSON
/// (`ci/bench-baseline.json`), the CI bench-regression gate.
///
/// * **Deterministic fields** (`scale`, grid `configs`, inner-loop
///   `requests`, the full `latency_tails` block) must match exactly, and
///   the fresh run's `byte_identical` flag must be `true` — these come
///   from the simulation clock and cannot legitimately drift.
/// * **Timing fields** (`sequential_ms`, `parallel_ms`, `sharded_ms`,
///   `wall_ms`) must be within `tolerance` (relative, e.g. `0.15` = ±15%)
///   of the baseline, with [`TIMING_GRACE_MS`] of absolute slack — but
///   only when the baseline's `host_fingerprint` matches the current
///   host's. A baseline measured on different hardware says nothing about
///   this machine's wall clock, so on a mismatch every timing and shard
///   gate is downgraded to informational (logged in the table) while the
///   deterministic fields and both byte-identity flags stay mandatory.
/// * **Derived fields** (`speedup`, `requests_per_sec`) are reported but
///   not gated: they are quotients of numbers already checked, and gating
///   them twice only doubles the flake rate.
/// * **Sharding** is gated by host shape: on a 1-core host the sharded
///   grid may cost at most 3× (plus grace) over the sequential grid —
///   the window-synchronisation tax is fixed while sequential dispatch
///   got ~4× faster in the raw-speed round — and its speedup is
///   informational; on a ≥4-core host at full scale the speedup must
///   reach 1.5×; anything in between is informational. The sharded pass
///   must be byte-identical in every case.
/// * **Allocation discipline** (schema /5): `events_recycled_pct` must
///   reach 95 and `decode_copies` must equal `decode_retained` — both
///   judged on the current run alone (host-independent), like the memory
///   gate. The deterministic decode-probe fields (`decode_messages`,
///   `decode_bytes`, `decode_retained`) are exact against baselines that
///   carry them and informational against pre-/5 baselines.
/// * **Family pass** (schema /4): `family_byte_identical` must be `true`
///   and `family_memory_reduction_pct` must reach 30 — both judged on the
///   current run alone, since they are host-independent. The deterministic
///   federation fields (`family_origins`, `family_requests`, the two
///   state-bytes numbers) are exact against baselines that carry them and
///   informational against pre-/4 baselines; `family_wall_ms` follows the
///   usual same-host timing rule.
/// * **Batched proposer** (schema /7): `proposer_reduction_pct` must reach
///   30, `proposer_coalesce_ratio` must exceed 1, the batched
///   write-completion p99 must be no worse than the per-write one, and
///   `proposer_byte_identical` must be `true` — all judged on the current
///   run alone, since every number comes off the simulation clock. The
///   deterministic message counts and write-completion quantiles are exact
///   against baselines that carry them and informational against pre-/7
///   baselines; `proposer_wall_ms` follows the same-host timing rule.
/// * **Serving tier** (schema /6): `serve_dropped` and `serve_stale` must
///   both be exactly 0 — judged on the current run alone, since a dropped
///   connection or a stale serve is a defect on any host. The workload
///   shape (`serve_connections`, `serve_requests`) is exact against
///   baselines that carry it and informational against pre-/6 baselines;
///   `serve_p99_us` and `serve_wall_ms` follow the same-host timing rule
///   (real-socket latency says nothing across hardware).
///
/// Returns the comparison table either way: `Ok` when everything passed,
/// `Err` when anything regressed.
pub fn check_against(
    current: &TrajectoryReport,
    baseline: &str,
    tolerance: f64,
) -> Result<String, String> {
    let cur = current.to_json();
    let same_host =
        json_string(baseline, "host_fingerprint").is_some_and(|b| b == current.host_fingerprint);
    let mut table = String::new();
    if !same_host {
        let _ = writeln!(
            table,
            "note: baseline host fingerprint ({}) differs from this host ({});\n\
             note: timing and shard gates are informational on this run — exact\n\
             note: fields and byte-identity are still enforced.",
            json_string(baseline, "host_fingerprint").unwrap_or_else(|| "absent".to_string()),
            current.host_fingerprint
        );
    }
    let _ = writeln!(
        table,
        "{:<16} {:>14} {:>14}  verdict",
        "field", "baseline", "current"
    );
    let mut failed = false;
    let mut row = |name: &str, base: Option<f64>, cur: Option<f64>, ok: bool, note: &str| {
        let f = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v}"));
        let _ = writeln!(
            table,
            "{name:<16} {:>14} {:>14}  {}{note}",
            f(base),
            f(cur),
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    };

    for key in ["scale", "configs", "requests"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        row(key, b, c, b.is_some() && b == c, " (exact)");
    }
    for key in ["sequential_ms", "parallel_ms", "sharded_ms", "wall_ms"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        let within = match (b, c) {
            (Some(b), Some(c)) => (c - b).abs() <= (tolerance * b).max(TIMING_GRACE_MS),
            _ => false,
        };
        if same_host {
            row(key, b, c, within, &format!(" (±{:.0}%)", tolerance * 100.0));
        } else {
            row(key, b, c, true, " (informational: different host)");
        }
    }
    for key in ["speedup", "requests_per_sec"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        row(key, b, c, true, " (informational)");
    }

    // Engine-sharding gates depend on the host. On one core the sharded
    // pass cannot win — barrier and window bookkeeping are pure overhead —
    // so the gate there is a cost ceiling relative to the sequential
    // engine. The raw-speed round made sequential event dispatch ~4×
    // faster while the per-window synchronisation tax is fixed, so the
    // ceiling is 3× (the pre-raw rounds used 1.05× against a much slower
    // sequential engine); absolute creep of the sharded pass itself is
    // separately pinned by the `sharded_ms` ±tolerance row above. The
    // paper-facing ≥1.5× claim is only enforced where it can hold: a
    // multi-core host running the full-scale workload (reduced-scale
    // windows are too short for the parallelism to amortise the barriers).
    let shard_base = json_number(baseline, "sharded_speedup");
    let shard_cur = Some((current.sharded_speedup * 1000.0).round() / 1000.0);
    if !same_host {
        row(
            "sharded_speedup",
            shard_base,
            shard_cur,
            true,
            " (informational: different host)",
        );
    } else if current.host_cores == 1 {
        let overhead = current.sharded_grid_ms as f64 / current.grid_sequential_ms.max(1) as f64;
        let ok = current.sharded_grid_ms as f64
            <= current.grid_sequential_ms as f64 * 3.0 + TIMING_GRACE_MS;
        row(
            "shard_overhead",
            Some(3.0),
            Some((overhead * 1000.0).round() / 1000.0),
            ok,
            " (sharded/sequential ceiling, 1-core host)",
        );
        row(
            "sharded_speedup",
            shard_base,
            shard_cur,
            true,
            " (informational: 1-core host)",
        );
    } else if current.host_cores >= 4 && current.scale == 1 {
        row(
            "sharded_speedup",
            shard_base,
            shard_cur,
            current.sharded_speedup >= 1.5,
            " (>= 1.5: multi-core host, full scale)",
        );
    } else {
        row(
            "sharded_speedup",
            shard_base,
            shard_cur,
            true,
            " (informational)",
        );
    }

    let as_num = |b: bool| if b { 1.0 } else { 0.0 };
    row(
        "byte_identical",
        Some(as_num(baseline.contains("\"byte_identical\": true"))),
        Some(as_num(current.byte_identical)),
        current.byte_identical,
        " (must be 1)",
    );
    row(
        "sharded_ident",
        Some(as_num(
            baseline.contains("\"sharded_byte_identical\": true"),
        )),
        Some(as_num(current.sharded_byte_identical)),
        current.sharded_byte_identical,
        " (must be 1)",
    );

    // Family block (schema /4). The deterministic federation fields must
    // match exactly when the baseline carries them (a pre-/4 baseline is
    // informational); the byte-identity and ≥30% memory-reduction gates
    // judge the *current* run alone — both are host-independent, so they
    // hold even against a foreign or legacy baseline.
    for key in [
        "family_origins",
        "family_requests",
        "family_state_bytes",
        "family_legacy_state_bytes",
    ] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        if b.is_some() {
            row(key, b, c, b == c, " (exact)");
        } else {
            row(key, b, c, true, " (informational: baseline pre-/4)");
        }
    }
    let (b, c) = (
        json_number(baseline, "family_wall_ms"),
        json_number(&cur, "family_wall_ms"),
    );
    match (same_host, b) {
        (true, Some(b_ms)) => {
            let within = c
                .is_some_and(|c_ms| (c_ms - b_ms).abs() <= (tolerance * b_ms).max(TIMING_GRACE_MS));
            row(
                "family_wall_ms",
                b,
                c,
                within,
                &format!(" (±{:.0}%)", tolerance * 100.0),
            );
        }
        (true, None) => row(
            "family_wall_ms",
            b,
            c,
            true,
            " (informational: baseline pre-/4)",
        ),
        (false, _) => row(
            "family_wall_ms",
            b,
            c,
            true,
            " (informational: different host)",
        ),
    }
    row(
        "family_ident",
        Some(as_num(baseline.contains("\"family_byte_identical\": true"))),
        Some(as_num(current.family_byte_identical)),
        current.family_byte_identical,
        " (must be 1)",
    );
    row(
        "family_mem_cut",
        Some(30.0),
        Some((current.family_memory_reduction_pct * 10.0).round() / 10.0),
        current.family_memory_reduction_pct >= 30.0,
        " (>= 30% state-bytes cut vs legacy layout)",
    );

    // Allocation-discipline gates (schema /5), judged on the current run
    // alone: steady-state event dispatch must recycle ≥95% of arena
    // allocations, and the decode probe's only owned copies must be the
    // retention copies (200 bodies entering a cache).
    row(
        "alloc_recycle",
        Some(95.0),
        Some((current.events_recycled_pct * 10.0).round() / 10.0),
        current.events_recycled_pct >= 95.0,
        " (>= 95% events recycled, current run)",
    );
    row(
        "decode_copies",
        Some(current.decode_retained as f64),
        Some(current.decode_copies as f64),
        current.decode_copies == current.decode_retained,
        " (== decode_retained, current run)",
    );
    for key in ["decode_messages", "decode_bytes", "decode_retained"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        if b.is_some() {
            row(key, b, c, b == c, " (exact)");
        } else {
            row(key, b, c, true, " (informational: baseline pre-/5)");
        }
    }

    // Serving-tier gates (schema /6). Dropped connections and stale
    // serves are defects regardless of host or baseline age, so those two
    // rows judge the current run alone. Workload shape is exact against
    // /6 baselines; the latency tail and wall time follow the same-host
    // timing rule like every host-clock measurement.
    row(
        "serve_dropped",
        Some(0.0),
        Some(current.serve_dropped as f64),
        current.serve_dropped == 0,
        " (== 0, current run)",
    );
    row(
        "serve_stale",
        Some(0.0),
        Some(current.serve_stale as f64),
        current.serve_stale == 0,
        " (== 0, current run)",
    );
    for key in ["serve_connections", "serve_requests"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        if b.is_some() {
            row(key, b, c, b == c, " (exact)");
        } else {
            row(key, b, c, true, " (informational: baseline pre-/6)");
        }
    }
    for key in ["serve_p99_us", "serve_wall_ms"] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        // The absolute grace is expressed in the field's own unit.
        let grace = if key.ends_with("_us") {
            TIMING_GRACE_MS * 1000.0
        } else {
            TIMING_GRACE_MS
        };
        match (same_host, b) {
            (true, Some(b_v)) => {
                let within = c.is_some_and(|c_v| (c_v - b_v).abs() <= (tolerance * b_v).max(grace));
                row(key, b, c, within, &format!(" (±{:.0}%)", tolerance * 100.0));
            }
            (true, None) => row(key, b, c, true, " (informational: baseline pre-/6)"),
            (false, _) => row(key, b, c, true, " (informational: different host)"),
        }
    }

    // Batched-proposer gates (schema /7), judged on the current run alone:
    // the storms must cost ≥30% fewer wire INVALIDATEs than per-write
    // fan-out, repeated writes must actually coalesce, the batching delay
    // must not worsen the write-completion tail, and the batched replay
    // must survive sharding byte-identically.
    row(
        "proposer_cut",
        Some(30.0),
        Some((current.proposer_reduction_pct * 10.0).round() / 10.0),
        current.proposer_reduction_pct >= 30.0,
        " (>= 30% wire INVALIDATE cut, current run)",
    );
    row(
        "proposer_merge",
        Some(1.0),
        Some((current.proposer_coalesce_ratio * 1000.0).round() / 1000.0),
        current.proposer_coalesce_ratio > 1.0,
        " (> 1 intents per delivered entry, current run)",
    );
    row(
        "proposer_p99",
        Some(current.proposer_per_write_p99_us as f64),
        Some(current.proposer_write_p99_us as f64),
        current.proposer_write_p99_us <= current.proposer_per_write_p99_us,
        " (<= per-write write-completion p99, current run)",
    );
    row(
        "proposer_ident",
        Some(as_num(
            baseline.contains("\"proposer_byte_identical\": true"),
        )),
        Some(as_num(current.proposer_byte_identical)),
        current.proposer_byte_identical,
        " (must be 1)",
    );
    for key in [
        "proposer_messages",
        "proposer_per_write_messages",
        "proposer_write_p50_us",
        "proposer_write_p99_us",
        "proposer_per_write_p99_us",
    ] {
        let (b, c) = (json_number(baseline, key), json_number(&cur, key));
        if b.is_some() {
            row(key, b, c, b == c, " (exact)");
        } else {
            row(key, b, c, true, " (informational: baseline pre-/7)");
        }
    }
    let (b, c) = (
        json_number(baseline, "proposer_wall_ms"),
        json_number(&cur, "proposer_wall_ms"),
    );
    match (same_host, b) {
        (true, Some(b_ms)) => {
            let within = c
                .is_some_and(|c_ms| (c_ms - b_ms).abs() <= (tolerance * b_ms).max(TIMING_GRACE_MS));
            row(
                "proposer_wall_ms",
                b,
                c,
                within,
                &format!(" (±{:.0}%)", tolerance * 100.0),
            );
        }
        (true, None) => row(
            "proposer_wall_ms",
            b,
            c,
            true,
            " (informational: baseline pre-/7)",
        ),
        (false, _) => row(
            "proposer_wall_ms",
            b,
            c,
            true,
            " (informational: different host)",
        ),
    }

    let tails_match = match (tails_block(baseline), tails_block(&cur)) {
        (Some(b), Some(c)) => b == c,
        _ => false,
    };
    let _ = writeln!(
        table,
        "latency_tails    {:>14} {:>14}  {} (exact, {} entries)",
        "-",
        "-",
        if tails_match { "ok" } else { "FAIL" },
        current.tails.len()
    );
    failed |= !tails_match;

    if failed {
        Err(table)
    } else {
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_tables_3_and_4() {
        let configs = grid_configs(100);
        assert_eq!(configs.len(), 18);
        // Table order: each experiment contributes one full trio.
        for block in configs.chunks(3) {
            for (cfg, kind) in block.iter().zip(ProtocolKind::PAPER_TRIO) {
                assert_eq!(cfg.protocol.kind, kind);
                assert_eq!(cfg.spec.name, block[0].spec.name);
            }
        }
        assert_eq!(configs[0].spec.name, "EPA");
        assert_eq!(configs[17].spec.name, "SDSC");
    }

    #[test]
    fn reduced_scale_run_measures_and_stays_identical() {
        let report = run(400, Some(2), 2);
        assert!(report.byte_identical, "parallel grid diverged");
        assert!(report.sharded_byte_identical, "sharded grid diverged");
        assert_eq!(report.grid_configs, 18);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.shards, 2);
        assert!(report.inner_requests > 0);
        assert!(report.inner_requests_per_sec > 0);
        // Allocation discipline shows up even at reduced scale: the arena
        // recycles, and the decode probe copies only at retention
        // boundaries (one 200 per distinct document, 304s thereafter).
        assert!(report.events_allocated > 0);
        assert!(report.events_recycled > 0);
        assert_eq!(report.decode_messages, report.inner_requests * 2);
        assert_eq!(report.decode_copies, report.decode_retained);
        assert!(report.decode_borrows > report.decode_copies);
        // Unique tails keys: the SDSC variants are told apart.
        let sdsc: Vec<_> = report
            .tails
            .iter()
            .filter(|t| t.trace.starts_with("SDSC("))
            .collect();
        assert_eq!(sdsc.len(), 6, "{:?}", report.tails);
        assert!(report.grid_sequential_ms >= 1 && report.grid_parallel_ms >= 1);
        assert!(report.sharded_grid_ms >= 1 && report.sharded_speedup > 0.0);
        // The family pass replays the flash-crowd federation at full
        // origin count even at reduced scale, stays byte-identical across
        // the 8-shard engine, and clears the memory-reduction acceptance
        // gate (deterministic model, so exact at any scale).
        assert_eq!(report.family_name, "flash-crowd");
        assert_eq!(report.family_origins, 64);
        assert_eq!(report.family_shards, FAMILY_SHARDS);
        assert!(
            report.family_byte_identical,
            "sharded family replay diverged"
        );
        assert!(report.family_requests > 0);
        assert!(
            report.family_state_bytes > 0
                && report.family_state_bytes < report.family_legacy_state_bytes
        );
        assert!(
            report.family_memory_reduction_pct >= 30.0,
            "memory reduction {:.1}% below the 30% gate",
            report.family_memory_reduction_pct
        );
        // The proposer pass replays the storms even at reduced scale:
        // batching can only remove wire messages, the batched flash-crowd
        // replay must survive sharding byte-identically, and the pass uses
        // the default count threshold. The ≥30% / coalesce / p99 gates are
        // asserted at CI scale by `check_against`, not here — a
        // 400×-reduced storm is too sparse to batch meaningfully.
        assert_eq!(report.proposer_batch_entries, 8);
        assert!(report.proposer_messages <= report.proposer_per_write_messages);
        assert!(report.proposer_coalesce_ratio >= 1.0);
        assert!(
            report.proposer_byte_identical,
            "sharded batched replay diverged"
        );
    }

    #[test]
    fn json_is_stable_and_carries_baselines() {
        let json = sample_report().to_json();
        assert!(json.contains("\"schema\": \"wcc-bench-trajectory/7\""));
        assert!(json.contains("\"proposer_batch_entries\": 8"));
        assert!(json.contains("\"proposer_messages\": 109"));
        assert!(json.contains("\"proposer_reduction_pct\": 88.5"));
        assert!(json.contains("\"proposer_coalesce_ratio\": 1.029"));
        assert!(json.contains("\"proposer_byte_identical\": true"));
        assert!(json.contains("\"serve_connections\": 2048"));
        assert!(json.contains("\"serve_dropped\": 0"));
        assert!(json.contains("\"serve_stale\": 0"));
        assert!(json.contains("\"serve_p99_us\": 32000"));
        assert!(json.contains("\"events_recycled_pct\": 99.6"));
        assert!(json.contains("\"decode_copies\": 1316"));
        assert!(json.contains("\"decode_retained\": 1316"));
        assert!(json.contains("\"family_requests_per_sec\": 355555"));
        assert!(json.contains(&format!(
            "\"pre_raw_inner_rps\": {PRE_RAW_INNER_REQUESTS_PER_SEC}"
        )));
        assert!(json.contains("\"family_name\": \"flash-crowd\""));
        assert!(json.contains("\"family_origins\": 64"));
        assert!(json.contains("\"family_byte_identical\": true"));
        assert!(json.contains("\"family_memory_reduction_pct\": 36.9"));
        assert!(json.contains("\"host_fingerprint\": \"x86_64/linux/8c/sample-cpu\""));
        assert!(json.contains("\"speedup\": 2.500"));
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"sharded_speedup\": 1.600"));
        assert!(json.contains("\"sharded_byte_identical\": true"));
        assert!(json.contains(&format!(
            "\"pre_shard_grid_ms\": {PRE_SHARD_GRID_SEQUENTIAL_MS}"
        )));
        assert!(json.contains(
            "{ \"trace\": \"EPA\", \"protocol\": \"adaptive-ttl\", \
             \"p50_us\": 1000, \"p90_us\": 2000, \"p99_us\": 150000 },"
        ));
        assert!(json.contains(&format!(
            "\"grid_sequential_ms\": {BASELINE_GRID_SEQUENTIAL_MS}"
        )));
        // Balanced braces, no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }") && !json.contains(",\n}"));
    }

    #[test]
    fn json_number_reads_unique_quoted_keys() {
        let json = sample_report().to_json();
        assert_eq!(json_number(&json, "scale"), Some(1.0));
        assert_eq!(json_number(&json, "configs"), Some(18.0));
        // inner_loop's "wall_ms", not the baseline's "inner_wall_ms".
        assert_eq!(json_number(&json, "wall_ms"), Some(150.0));
        // The sharded block keeps its own key names, so neither collides.
        assert_eq!(json_number(&json, "sharded_ms"), Some(1250.0));
        assert_eq!(json_number(&json, "shards"), Some(2.0));
        assert_eq!(json_number(&json, "requests_per_sec"), Some(271_053.0));
        // The family block's prefixed keys don't collide with the grid's.
        assert_eq!(json_number(&json, "family_requests"), Some(160_000.0));
        assert_eq!(json_number(&json, "family_shards"), Some(8.0));
        // alloc_stats keys: "events_recycled" must not swallow the "_pct"
        // key (the needle includes the closing quote), and the decode pair
        // stays distinct.
        assert_eq!(json_number(&json, "events_recycled"), Some(249_000.0));
        assert_eq!(json_number(&json, "events_recycled_pct"), Some(99.6));
        assert_eq!(json_number(&json, "decode_copies"), Some(1_316.0));
        // inner_loop's "requests_per_sec" wins over the family-prefixed one.
        assert_eq!(
            json_number(&json, "family_requests_per_sec"),
            Some(355_555.0)
        );
        assert_eq!(
            json_number(&json, "family_memory_reduction_pct"),
            Some(36.9)
        );
        // The serve block's prefixed keys stay distinct from inner_loop's
        // "requests" and "requests_per_sec".
        assert_eq!(json_number(&json, "serve_requests"), Some(16_384.0));
        assert_eq!(json_number(&json, "serve_requests_per_sec"), Some(3_900.0));
        assert_eq!(json_number(&json, "serve_p999_us"), Some(40_000.0));
        // The proposer block's prefixed keys stay distinct, including the
        // "proposer_write_p99_us" / "proposer_per_write_p99_us" pair.
        assert_eq!(json_number(&json, "proposer_messages"), Some(109.0));
        assert_eq!(
            json_number(&json, "proposer_per_write_messages"),
            Some(946.0)
        );
        assert_eq!(json_number(&json, "proposer_write_p99_us"), Some(64_096.0));
        assert_eq!(
            json_number(&json, "proposer_per_write_p99_us"),
            Some(125_600.0)
        );
        assert_eq!(json_number(&json, "no_such_key"), None);
    }

    #[test]
    fn check_against_passes_its_own_baseline_and_flags_regressions() {
        let report = sample_report();
        let baseline = report.to_json();
        check_against(&report, &baseline, 0.15).expect("self-comparison must pass");

        // Timing drift beyond tolerance + grace fails.
        let mut slow = report.clone();
        slow.grid_sequential_ms = report.grid_sequential_ms * 3;
        let err = check_against(&slow, &baseline, 0.15).unwrap_err();
        assert!(err.contains("sequential_ms"), "{err}");
        assert!(err.contains("FAIL"), "{err}");

        // Timing drift inside the absolute grace passes.
        let mut close = report.clone();
        close.inner_wall_ms += 80;
        check_against(&close, &baseline, 0.15).expect("grace window must absorb 80 ms");

        // Any simulated-latency drift fails, however small.
        let mut drift = report.clone();
        drift.tails[1].p99_us += 1;
        let err = check_against(&drift, &baseline, 0.15).unwrap_err();
        assert!(err.contains("latency_tails"), "{err}");

        // A divergent parallel pass fails outright.
        let mut split = report.clone();
        split.byte_identical = false;
        let err = check_against(&split, &baseline, 0.15).unwrap_err();
        assert!(err.contains("byte_identical"), "{err}");

        // So does a divergent sharded pass.
        let mut shard_split = report.clone();
        shard_split.sharded_byte_identical = false;
        let err = check_against(&shard_split, &baseline, 0.15).unwrap_err();
        assert!(err.contains("sharded_ident"), "{err}");

        // And a divergent family pass.
        let mut fam_split = report.clone();
        fam_split.family_byte_identical = false;
        let err = check_against(&fam_split, &baseline, 0.15).unwrap_err();
        assert!(err.contains("family_ident"), "{err}");

        // The memory-reduction gate is judged on the current run alone.
        let mut regressed = report.clone();
        regressed.family_memory_reduction_pct = 12.0;
        let err = check_against(&regressed, &baseline, 0.15).unwrap_err();
        assert!(err.contains("family_mem_cut"), "{err}");

        // Deterministic federation fields are exact.
        let mut reshaped = report.clone();
        reshaped.family_state_bytes += 1;
        let err = check_against(&reshaped, &baseline, 0.15).unwrap_err();
        assert!(err.contains("family_state_bytes"), "{err}");

        // The arena must keep recycling ≥95% of event allocations.
        let mut leaky = report.clone();
        leaky.events_recycled_pct = 80.0;
        let err = check_against(&leaky, &baseline, 0.15).unwrap_err();
        assert!(err.contains("alloc_recycle"), "{err}");

        // A decode copy outside a retention boundary fails.
        let mut copying = report.clone();
        copying.decode_copies = copying.decode_retained + 5;
        let err = check_against(&copying, &baseline, 0.15).unwrap_err();
        assert!(err.contains("decode_copies"), "{err}");

        // The deterministic decode-probe fields are exact.
        let mut reprobed = report.clone();
        reprobed.decode_bytes += 1;
        let err = check_against(&reprobed, &baseline, 0.15).unwrap_err();
        assert!(err.contains("decode_bytes"), "{err}");

        // Proposer gates: the message cut, the coalesce ratio, the p99
        // comparison and byte-identity are all judged on the current run.
        let mut chatty = report.clone();
        chatty.proposer_reduction_pct = 12.0;
        let err = check_against(&chatty, &baseline, 0.15).unwrap_err();
        assert!(err.contains("proposer_cut"), "{err}");
        let mut uncoalesced = report.clone();
        uncoalesced.proposer_coalesce_ratio = 1.0;
        let err = check_against(&uncoalesced, &baseline, 0.15).unwrap_err();
        assert!(err.contains("proposer_merge"), "{err}");
        let mut laggy = report.clone();
        laggy.proposer_write_p99_us = report.proposer_per_write_p99_us + 1;
        let err = check_against(&laggy, &baseline, 0.15).unwrap_err();
        assert!(err.contains("proposer_p99"), "{err}");
        let mut prop_split = report.clone();
        prop_split.proposer_byte_identical = false;
        let err = check_against(&prop_split, &baseline, 0.15).unwrap_err();
        assert!(err.contains("proposer_ident"), "{err}");
        // The deterministic message counts are exact against /7 baselines.
        let mut remessaged = report.clone();
        remessaged.proposer_messages += 1;
        remessaged.proposer_reduction_pct = 88.4;
        let err = check_against(&remessaged, &baseline, 0.15).unwrap_err();
        assert!(err.contains("proposer_messages"), "{err}");
    }

    #[test]
    fn proposer_gates_hold_against_pre_7_baselines() {
        let report = sample_report();
        // Strip the proposer block: a pre-/7 baseline. The exact message
        // and quantile rows go informational, but every current-run gate
        // still bites.
        let mut legacy = report.to_json();
        let start = legacy.find("  \"proposer\": {").unwrap();
        let end = start + legacy[start..].find("},\n").unwrap() + "},\n".len();
        legacy.replace_range(start..end, "");
        assert_eq!(json_number(&legacy, "proposer_messages"), None);
        let table = check_against(&report, &legacy, 0.15).expect("pre-/7 baselines must pass");
        assert!(table.contains("informational: baseline pre-/7"), "{table}");

        let mut chatty = report.clone();
        chatty.proposer_reduction_pct = 29.9;
        let err = check_against(&chatty, &legacy, 0.15).unwrap_err();
        assert!(err.contains("proposer_cut"), "{err}");
        let mut uncoalesced = report.clone();
        uncoalesced.proposer_coalesce_ratio = 0.99;
        let err = check_against(&uncoalesced, &legacy, 0.15).unwrap_err();
        assert!(err.contains("proposer_merge"), "{err}");
        let mut prop_split = report.clone();
        prop_split.proposer_byte_identical = false;
        let err = check_against(&prop_split, &legacy, 0.15).unwrap_err();
        assert!(err.contains("proposer_ident"), "{err}");
    }

    #[test]
    fn alloc_gates_hold_against_pre_5_baselines() {
        let report = sample_report();
        // Strip the alloc_stats block: a pre-/5 baseline. The exact decode
        // rows go informational, but both current-run gates still bite.
        let mut legacy = report.to_json();
        let start = legacy.find("  \"alloc_stats\": {").unwrap();
        let end = start + legacy[start..].find("},\n").unwrap() + "},\n".len();
        legacy.replace_range(start..end, "");
        assert_eq!(json_number(&legacy, "decode_messages"), None);
        let table = check_against(&report, &legacy, 0.15).expect("pre-/5 baselines must pass");
        assert!(table.contains("informational: baseline pre-/5"), "{table}");

        let mut leaky = report.clone();
        leaky.events_recycled_pct = 94.9;
        let err = check_against(&leaky, &legacy, 0.15).unwrap_err();
        assert!(err.contains("alloc_recycle"), "{err}");
        let mut copying = report.clone();
        copying.decode_copies += 1;
        let err = check_against(&copying, &legacy, 0.15).unwrap_err();
        assert!(err.contains("decode_copies"), "{err}");
    }

    #[test]
    fn serve_gates_hold_against_pre_6_baselines() {
        let report = sample_report();
        // Strip the serve block: a pre-/6 baseline. The exact workload
        // rows and the timing rows go informational, but the dropped- and
        // stale-connection gates still judge the current run.
        let mut legacy = report.to_json();
        let start = legacy.find("  \"serve\": {").unwrap();
        let end = start + legacy[start..].find("},\n").unwrap() + "},\n".len();
        legacy.replace_range(start..end, "");
        assert_eq!(json_number(&legacy, "serve_connections"), None);
        let table = check_against(&report, &legacy, 0.15).expect("pre-/6 baselines must pass");
        assert!(table.contains("informational: baseline pre-/6"), "{table}");

        let mut droppy = report.clone();
        droppy.serve_dropped = 3;
        let err = check_against(&droppy, &legacy, 0.15).unwrap_err();
        assert!(err.contains("serve_dropped"), "{err}");
        let mut stale = report.clone();
        stale.serve_stale = 1;
        let err = check_against(&stale, &legacy, 0.15).unwrap_err();
        assert!(err.contains("serve_stale"), "{err}");

        // Against a /6 baseline the workload shape is exact and the tail
        // is a same-host timing gate.
        let full = report.to_json();
        let mut reshaped = report.clone();
        reshaped.serve_connections += 1;
        let err = check_against(&reshaped, &full, 0.15).unwrap_err();
        assert!(err.contains("serve_connections"), "{err}");
        let mut slower = report.clone();
        slower.serve_p99_us = report.serve_p99_us * 10 + 200_000;
        let err = check_against(&slower, &full, 0.15).unwrap_err();
        assert!(err.contains("serve_p99_us"), "{err}");
    }

    #[test]
    fn grid_tail_keys_are_unique() {
        // Six experiments, five trace names: the SDSC lifetime variants
        // must come out labelled apart, or the tails rows collide.
        let labels = grid_trace_labels();
        assert_eq!(labels.len(), 6);
        let distinct: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 6, "{labels:?}");
        assert!(labels.contains(&"SDSC(57)".to_string()), "{labels:?}");
        assert!(labels.contains(&"SDSC(576)".to_string()), "{labels:?}");
    }

    #[test]
    fn family_gates_hold_against_legacy_and_foreign_baselines() {
        let report = sample_report();

        // A pre-/4 baseline (no family block at all) leaves the exact and
        // timing family rows informational...
        let mut legacy = report.to_json();
        let start = legacy.find("  \"family\": {").unwrap();
        let end = start + legacy[start..].find("},\n").unwrap() + "},\n".len();
        legacy.replace_range(start..end, "");
        assert_eq!(json_number(&legacy, "family_origins"), None);
        let table =
            check_against(&report, &legacy, 0.15).expect("pre-/4 baselines must still pass");
        assert!(table.contains("informational: baseline pre-/4"), "{table}");

        // ...but byte-identity and the 30% reduction stay mandatory.
        let mut fam_split = report.clone();
        fam_split.family_byte_identical = false;
        let err = check_against(&fam_split, &legacy, 0.15).unwrap_err();
        assert!(err.contains("family_ident"), "{err}");
        let mut regressed = report.clone();
        regressed.family_memory_reduction_pct = 29.9;
        let err = check_against(&regressed, &legacy, 0.15).unwrap_err();
        assert!(err.contains("family_mem_cut"), "{err}");

        // Foreign-host baselines skip family_wall_ms like every timing
        // field, while the reduction gate still bites.
        let mut foreign = report.clone();
        foreign.host_fingerprint = "arm64/linux/4c/other-cpu".to_string();
        let mut slow = report.clone();
        slow.family_wall_ms = report.family_wall_ms * 30;
        check_against(&slow, &foreign.to_json(), 0.15)
            .expect("foreign-host family timing must be informational");
        let err = check_against(&regressed, &foreign.to_json(), 0.15).unwrap_err();
        assert!(err.contains("family_mem_cut"), "{err}");
    }

    #[test]
    fn json_string_reads_the_fingerprint() {
        let json = sample_report().to_json();
        assert_eq!(
            json_string(&json, "host_fingerprint").as_deref(),
            Some("x86_64/linux/8c/sample-cpu")
        );
        assert_eq!(json_string(&json, "scale"), None); // a number, not a string
        assert_eq!(json_string(&json, "no_such_key"), None);
    }

    #[test]
    fn the_running_host_has_a_fingerprint() {
        let fp = host_fingerprint();
        // arch/os/<cores>c/<model> — four slash-separated parts minimum,
        // and nothing that would need JSON escaping.
        assert!(fp.matches('/').count() >= 3, "{fp}");
        assert!(!fp.contains('"') && !fp.contains('\\'), "{fp}");
    }

    #[test]
    fn foreign_host_baselines_skip_timing_gates_but_not_identity() {
        let report = sample_report();
        let mut foreign = report.clone();
        foreign.host_fingerprint = "arm64/linux/4c/other-cpu".to_string();
        let baseline = foreign.to_json();

        // A 3x timing regression against a foreign-host baseline passes —
        // wall-clock numbers from other hardware are not comparable — and
        // the skip is logged in the table.
        let mut slow = report.clone();
        slow.grid_sequential_ms = report.grid_sequential_ms * 3;
        slow.inner_wall_ms = report.inner_wall_ms * 3;
        slow.sharded_speedup = 0.4;
        let table = check_against(&slow, &baseline, 0.15)
            .expect("foreign-host timing must be informational");
        assert!(table.contains("host fingerprint"), "{table}");
        assert!(table.contains("informational: different host"), "{table}");

        // Determinism violations still fail regardless of the host.
        let mut split = report.clone();
        split.byte_identical = false;
        let err = check_against(&split, &baseline, 0.15).unwrap_err();
        assert!(err.contains("byte_identical"), "{err}");
        let mut drift = report.clone();
        drift.tails[0].p50_us += 1;
        let err = check_against(&drift, &baseline, 0.15).unwrap_err();
        assert!(err.contains("latency_tails"), "{err}");

        // A baseline with no fingerprint at all (pre-/3 schema) is treated
        // as foreign: timing informational, identity enforced.
        let legacy = baseline.replace(
            "  \"host_fingerprint\": \"arm64/linux/4c/other-cpu\",\n",
            "",
        );
        assert!(json_string(&legacy, "host_fingerprint").is_none());
        check_against(&slow, &legacy, 0.15).expect("legacy baselines skip timing gates");
    }

    #[test]
    fn shard_gates_follow_host_shape() {
        // The 8-core sample at full scale gates the ≥1.5× speedup.
        let report = sample_report();
        let baseline = report.to_json();
        let mut slow = report.clone();
        slow.sharded_speedup = 1.2;
        let err = check_against(&slow, &baseline, 0.15).unwrap_err();
        assert!(err.contains("sharded_speedup"), "{err}");

        // On one core the speedup is informational, but a sharded pass
        // costing more than 3× (plus grace) over sequential fails.
        let mut single = report.clone();
        single.host_cores = 1;
        single.sharded_grid_ms = single.grid_sequential_ms * 4;
        single.sharded_speedup = 0.25;
        let single_baseline = single.to_json();
        let err = check_against(&single, &single_baseline, 0.15).unwrap_err();
        assert!(err.contains("shard_overhead"), "{err}");

        // ... while an overhead inside the ceiling passes.
        let mut ok = report.clone();
        ok.host_cores = 1;
        ok.sharded_grid_ms = ok.grid_sequential_ms * 2;
        ok.sharded_speedup = 0.5;
        let ok_baseline = ok.to_json();
        check_against(&ok, &ok_baseline, 0.15).expect("2x overhead is inside the 1-core ceiling");

        // Reduced-scale multi-core runs never gate the speedup.
        let mut reduced = report.clone();
        reduced.scale = 20;
        reduced.sharded_speedup = 0.8;
        let reduced_baseline = reduced.to_json();
        check_against(&reduced, &reduced_baseline, 0.15)
            .expect("reduced-scale speedup is informational");
    }

    fn sample_report() -> TrajectoryReport {
        TrajectoryReport {
            scale: 1,
            jobs: 4,
            host_cores: 8,
            host_fingerprint: "x86_64/linux/8c/sample-cpu".to_string(),
            grid_configs: 18,
            grid_sequential_ms: 2000,
            grid_parallel_ms: 800,
            speedup: 2.5,
            byte_identical: true,
            shards: 2,
            sharded_grid_ms: 1250,
            sharded_speedup: 1.6,
            sharded_byte_identical: true,
            inner_requests: 40_658,
            inner_wall_ms: 150,
            inner_requests_per_sec: 271_053,
            events_allocated: 250_000,
            events_recycled: 249_000,
            events_recycled_pct: 99.6,
            events_peak_live: 120,
            decode_messages: 81_316,
            decode_bytes: 9_500_000,
            decode_borrows: 80_000,
            decode_copies: 1_316,
            decode_retained: 1_316,
            family_name: "flash-crowd",
            family_origins: 64,
            family_clients: 120_000,
            family_requests: 160_000,
            family_shards: 8,
            family_wall_ms: 900,
            family_requests_per_sec: 355_555,
            family_byte_identical: true,
            family_state_bytes: 7_700_000,
            family_legacy_state_bytes: 12_200_000,
            family_memory_reduction_pct: 36.9,
            family_peak_rss_kb: 250_000,
            serve_connections: 2048,
            serve_requests: 16_384,
            serve_dropped: 0,
            serve_stale: 0,
            serve_p50_us: 9_000,
            serve_p90_us: 18_000,
            serve_p99_us: 32_000,
            serve_p999_us: 40_000,
            serve_wall_ms: 4_200,
            serve_requests_per_sec: 3_900,
            proposer_batch_entries: 8,
            proposer_messages: 109,
            proposer_per_write_messages: 946,
            proposer_reduction_pct: 88.5,
            proposer_coalesce_ratio: 1.029,
            proposer_write_p50_us: 15_359,
            proposer_write_p99_us: 64_096,
            proposer_per_write_p99_us: 125_600,
            proposer_byte_identical: true,
            proposer_wall_ms: 700,
            tails: vec![
                TailEntry {
                    trace: "EPA".to_string(),
                    protocol: "adaptive-ttl",
                    p50_us: 1_000,
                    p90_us: 2_000,
                    p99_us: 150_000,
                },
                TailEntry {
                    trace: "EPA".to_string(),
                    protocol: "invalidation",
                    p50_us: 1_100,
                    p90_us: 2_200,
                    p99_us: 140_000,
                },
            ],
        }
    }
}
