//! Criterion micro-benchmarks of the building blocks: invalidation-table
//! operations, cache-store operations under both replacement policies, Zipf
//! sampling, wire-codec round trips, the Table 1 interpreter and the
//! simulator's event queue (two-level bucket queue vs. the plain binary
//! heap it replaced).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wcc_cache::{CacheStore, Freshness, ReplacementPolicy};
use wcc_core::analytical::{parse_stream, simulate};
use wcc_core::{InvalidationTable, ProtocolConfig, ProtocolKind};
use wcc_proto::{decode, encode, GetRequest, HttpMsg, RequestId};
use wcc_simnet::EventQueue;
use wcc_traces::Zipf;
use wcc_types::{ByteSize, ClientId, DocMeta, ServerId, SimDuration, SimTime, Url};

fn bench_invalidation_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("invalidation_table");
    group.bench_function("register_1k_take", |b| {
        b.iter(|| {
            let mut table = InvalidationTable::new();
            let url = Url::new(ServerId::new(0), 1);
            for i in 0..1_000u32 {
                table.register(url, ClientId::from_raw(i), SimTime::NEVER);
            }
            black_box(table.take_sites(url, SimTime::from_secs(1)))
        })
    });
    group.bench_function("stats_over_1k_docs", |b| {
        let mut table = InvalidationTable::new();
        for doc in 0..1_000u32 {
            for i in 0..8u32 {
                table.register(
                    Url::new(ServerId::new(0), doc),
                    ClientId::from_raw(i),
                    SimTime::NEVER,
                );
            }
        }
        b.iter(|| black_box(table.stats()))
    });
    group.bench_function("purge_expired_8k", |b| {
        b.iter(|| {
            let mut table = InvalidationTable::new();
            for doc in 0..1_000u32 {
                for i in 0..8u32 {
                    table.register(
                        Url::new(ServerId::new(0), doc),
                        ClientId::from_raw(i),
                        SimTime::from_secs((i as u64) * 100),
                    );
                }
            }
            black_box(table.purge_expired(SimTime::from_secs(350)))
        })
    });
    group.finish();
}

fn bench_cache_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_store");
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::ExpiredFirstLru] {
        group.bench_function(format!("churn_2k_{}", policy.name()), |b| {
            b.iter(|| {
                let mut cache = CacheStore::new(ByteSize::from_kib(512), policy);
                for i in 0..2_000u32 {
                    let key =
                        Url::new(ServerId::new(0), i % 400).scoped(ClientId::from_raw(i % 16));
                    let now = SimTime::from_secs(i as u64);
                    let meta = DocMeta::new(ByteSize::from_kib(8), SimTime::ZERO);
                    let fresh = Freshness {
                        ttl_expires: now + wcc_types::SimDuration::from_secs(100),
                        ..Freshness::default()
                    };
                    cache.insert(key, meta, now, fresh);
                    cache.touch(key, now);
                }
                black_box(cache.len())
            })
        });
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(4_096, 0.85);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("zipf_sample_4096", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = HttpMsg::Get(GetRequest {
        req: RequestId::new(42),
        url: Url::new(ServerId::new(0), 123),
        client: ClientId::from_raw(77),
        ims: Some(SimTime::from_secs(99)),
        issued_at: SimTime::from_secs(100),
        cache_hits: 3,
    });
    c.bench_function("wire_encode_get", |b| b.iter(|| black_box(encode(&msg))));
    let bytes = encode(&msg);
    c.bench_function("wire_decode_get", |b| {
        b.iter(|| {
            let mut cursor = bytes.as_slice();
            black_box(decode(&mut cursor).expect("valid"))
        })
    });
}

/// The schedule/pop surface both queue implementations expose to the
/// micro-benchmark's driver.
trait BenchQueue {
    fn schedule(&mut self, at: SimTime, payload: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

/// The engine's two-level bucket queue (near-future ring + overflow heap),
/// exactly as `Simulation` drives it.
impl BenchQueue for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, payload: u64) {
        EventQueue::schedule(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

/// The queue the bucket queue replaced: one `Reverse<(time, seq)>` binary
/// heap, the pre-optimisation engine verbatim.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl BenchQueue for HeapQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) {
        self.heap.push(Reverse((at, self.seq, payload)));
        self.seq += 1;
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap
            .pop()
            .map(|Reverse((at, _, payload))| (at, payload))
    }
}

/// One deterministic schedule/pop trace shaped like a replay: from each
/// popped instant, follow-up near-future deliveries (the LAN latency band)
/// plus an occasional far-future timer (TTL expiries, fault plans).
/// Returns a checksum so the whole loop stays observable.
fn drive_queue(q: &mut impl BenchQueue) -> u64 {
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    for i in 0..64 {
        q.schedule(SimTime::from_micros(step() % 4_000), i);
    }
    let mut checksum = 0u64;
    let mut popped = 0u64;
    while let Some((now, payload)) = q.pop() {
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(payload ^ now.as_micros());
        popped += 1;
        if popped >= 20_000 {
            break;
        }
        // Each event spawns follow-ups until the trace winds down.
        if popped < 12_000 {
            for _ in 0..2 {
                let delta = if step() % 50 == 0 {
                    SimDuration::from_micros(100_000 + step() % 1_000_000) // timer band
                } else {
                    SimDuration::from_micros(150 + step() % 2_000) // LAN band
                };
                q.schedule(now + delta, step());
            }
        }
    }
    checksum
}

fn bench_event_queue(c: &mut Criterion) {
    // Both implementations must walk the identical trace before timing
    // anything, or the comparison is meaningless.
    assert_eq!(
        drive_queue(&mut EventQueue::<u64>::new()),
        drive_queue(&mut HeapQueue::default()),
        "bucket queue and binary heap replayed different traces"
    );
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("bucket_queue_20k", |b| {
        b.iter(|| black_box(drive_queue(&mut EventQueue::<u64>::new())))
    });
    group.bench_function("binary_heap_20k", |b| {
        b.iter(|| black_box(drive_queue(&mut HeapQueue::default())))
    });
    group.finish();
}

fn bench_analytical(c: &mut Criterion) {
    let events = parse_stream(&"rrrmmrrrmr".repeat(50), 60);
    let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
    c.bench_function("analytical_simulate_500ev", |b| {
        b.iter(|| black_box(simulate(&cfg, &events)))
    });
}

criterion_group!(
    benches,
    bench_invalidation_table,
    bench_cache_store,
    bench_zipf,
    bench_codec,
    bench_event_queue,
    bench_analytical
);
criterion_main!(benches);
