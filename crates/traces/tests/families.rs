//! Statistical validation of the scenario-family generators.
//!
//! The unit tests inside `family.rs` check structure (sorted records,
//! origin homing, determinism); these tests check *distributions* at
//! federation scale — ≥10⁵ samples per measurement, so every assertion has
//! real statistical power. Seeds are fixed (and a small proptest varies
//! them), so the suite is deterministic: two consecutive runs see the
//! exact same samples.

use proptest::prelude::*;
use wcc_traces::family::{self, FamilyConfig, WorkloadFamily};
use wcc_traces::{synthetic, TraceSpec};

/// Least-squares slope of `ln(count)` against `ln(rank)` for 1-based ranks.
fn log_log_slope(counts: &[u64]) -> f64 {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| ((i as f64 + 1.0).ln(), (c as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Requests per document, sorted most-popular first.
fn doc_request_counts(records: &[wcc_traces::TraceRecord], num_docs: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_docs];
    for rec in records {
        counts[rec.url.doc() as usize] += 1;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts
}

#[test]
fn zipf_rank_frequency_slope_matches_doc_zipf() {
    // 2x10^5 samples over 1000 documents at s = 0.9: the log-log
    // rank-frequency line over the top 100 ranks must come out at slope
    // ~ -0.9. The tail ranks are excluded from the fit — sorting noisy
    // near-equal counts steepens the far tail, which is a measurement
    // artefact, not a generator bug.
    for seed in [1u64, 7] {
        let mut spec = TraceSpec::epa().scaled_down(1);
        spec.num_docs = 1_000;
        spec.total_requests = 200_000;
        spec.num_clients = 5_000;
        spec.doc_zipf = 0.9;
        let trace = synthetic::generate(&spec, seed);
        assert!(trace.records.len() >= 100_000, "need >= 1e5 samples");
        let counts = doc_request_counts(&trace.records, spec.num_docs as usize);
        let slope = log_log_slope(&counts[..100]);
        assert!(
            (slope + spec.doc_zipf).abs() < 0.1,
            "seed {seed}: rank-frequency slope {slope:.3}, want ~ -{}",
            spec.doc_zipf
        );
    }
}

#[test]
fn federation_origin_shares_follow_origin_zipf_slope() {
    // The city federation spreads 160k requests over 64 origins with
    // origin_zipf = 0.7; the per-origin request totals, ranked, must obey
    // the same power law.
    let cfg = FamilyConfig::city(WorkloadFamily::ZipfFederation);
    let workload = family::generate(&cfg, 11);
    assert!(workload.total_requests() >= 100_000, "need >= 1e5 samples");
    let mut shares: Vec<u64> = workload
        .workloads
        .iter()
        .map(|(t, _)| t.records.len() as u64)
        .collect();
    shares.sort_unstable_by(|a, b| b.cmp(a));
    let slope = log_log_slope(&shares);
    assert!(
        (slope + cfg.spec.origin_zipf).abs() < 0.12,
        "origin-share slope {slope:.3}, want ~ -{}",
        cfg.spec.origin_zipf
    );
}

/// Mean request rate of `records` inside vs outside `[start, start+len)`,
/// as a ratio (requests per unit time, so window length is normalised out).
fn burst_ratio(records: &[wcc_traces::TraceRecord], duration_us: u64, start: u64, len: u64) -> f64 {
    let inside = records
        .iter()
        .filter(|r| r.at.as_micros() >= start && r.at.as_micros() < start + len)
        .count() as f64;
    let outside = records.len() as f64 - inside;
    let inside_rate = inside / len as f64;
    let outside_rate = outside / (duration_us - len) as f64;
    inside_rate / outside_rate
}

#[test]
fn flash_crowd_burst_window_rate_dwarfs_baseline() {
    // 45% of the hot origin's requests are pulled into a window spanning
    // 5% of the trace, so its in-window request *rate* should run an
    // order of magnitude above its own baseline. The gate at 5x leaves
    // room for the diurnal modulation underneath.
    let cfg = FamilyConfig::city(WorkloadFamily::FlashCrowd);
    let workload = family::generate(&cfg, 13);
    assert!(workload.total_requests() >= 100_000, "need >= 1e5 samples");
    let duration_us = cfg.spec.duration.as_micros();
    let start = (duration_us as f64 * 0.35) as u64;
    let len = (duration_us as f64 * 0.05) as u64;
    let hot = &workload.workloads[0].0;
    let ratio = burst_ratio(&hot.records, duration_us, start, len);
    assert!(
        ratio >= 5.0,
        "hot-origin burst rate only {ratio:.1}x baseline"
    );
    // The cold origins keep their ordinary profile: no origin other than
    // the hot one should show anything like a burst in that window.
    for (trace, _) in &workload.workloads[1..] {
        let cold = burst_ratio(&trace.records, duration_us, start, len);
        assert!(
            cold < 3.0,
            "{}: cold origin bursts at {cold:.1}x",
            trace.name
        );
    }
}

#[test]
fn real_time_feed_diurnal_profile_matches_amplitude() {
    // The feed family runs at diurnal amplitude 0.85. Binning all
    // arrivals by hour of day and comparing each bucket's share against
    // the generator's sinusoidal weight w(h) = 1 + 0.85 sin(tau(h/24 - 0.4))
    // must agree to well under a percentage point absolute — 1.6x10^5
    // samples put the standard error per bucket near 0.06%.
    let cfg = FamilyConfig::city(WorkloadFamily::RealTimeFeed);
    let amp = cfg.spec.diurnal_amplitude;
    assert!((amp - 0.85).abs() < 1e-9);
    let workload = family::generate(&cfg, 17);
    assert!(workload.total_requests() >= 100_000, "need >= 1e5 samples");

    let hour_us = 3_600_000_000u64;
    let mut buckets = [0u64; 24];
    let mut total = 0u64;
    for (trace, _) in &workload.workloads {
        for rec in &trace.records {
            buckets[((rec.at.as_micros() / hour_us) % 24) as usize] += 1;
            total += 1;
        }
    }
    let weights: Vec<f64> = (0..24)
        .map(|h| 1.0 + amp * (std::f64::consts::TAU * (h as f64 / 24.0 - 0.40)).sin())
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    for (h, (&count, w)) in buckets.iter().zip(&weights).enumerate() {
        let share = count as f64 / total as f64;
        let expected = w / weight_sum;
        assert!(
            (share - expected).abs() < 0.005,
            "hour {h}: share {share:.4}, expected {expected:.4}"
        );
    }
    // Peak-to-trough ratio lands near (1 + amp) / (1 - amp) ~ 12.3.
    let peak = *buckets.iter().max().unwrap() as f64;
    let trough = *buckets.iter().min().unwrap() as f64;
    let want = (1.0 + amp) / (1.0 - amp);
    assert!(
        (peak / trough) > want * 0.6 && (peak / trough) < want * 1.6,
        "peak/trough {:.1}, want ~{want:.1}",
        peak / trough
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn burst_and_zipf_shapes_hold_across_seeds(seed in 0u64..1_000_000) {
        // The fixed-seed tests above pin exact measurements; this pass
        // re-checks the two coarsest shape properties under seed
        // variation at a reduced (but still 1e5-sample) scale.
        let cfg = FamilyConfig::city(WorkloadFamily::FlashCrowd);
        let workload = family::generate(&cfg, seed);
        let duration_us = cfg.spec.duration.as_micros();
        let start = (duration_us as f64 * 0.35) as u64;
        let len = (duration_us as f64 * 0.05) as u64;
        let hot = &workload.workloads[0].0;
        let ratio = burst_ratio(&hot.records, duration_us, start, len);
        prop_assert!(ratio >= 5.0, "seed {seed}: burst only {ratio:.1}x");

        let mut shares: Vec<u64> = workload
            .workloads
            .iter()
            .map(|(t, _)| t.records.len() as u64)
            .collect();
        shares.sort_unstable_by(|a, b| b.cmp(a));
        let slope = log_log_slope(&shares);
        prop_assert!(
            (slope + cfg.spec.origin_zipf).abs() < 0.15,
            "seed {seed}: origin-share slope {slope:.3}"
        );
    }
}
