//! The totally ordered event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, lane, lane sequence)` — see [`Rank`]. The
//! storage is a two-level bucket queue: a ring of one-microsecond buckets
//! covering the near future plus an overflow heap for everything beyond the
//! ring's horizon. Discrete-event schedules are dominated by short hops
//! (link latencies, CPU bursts), so almost every event lives its whole life
//! in the ring at O(1) amortised cost; far-future timers take one heap trip
//! and are pulled into the ring as the cursor approaches them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wcc_types::SimTime;

/// Width of the near-future ring, in one-microsecond buckets. Must comfortably
/// exceed the common scheduling horizon (LAN transfer times are below 2 ms)
/// so that ordinary message traffic never touches the overflow heap.
const RING_BUCKETS: u64 = 4096;

/// Occupancy-bitmap words covering the ring (one bit per bucket).
const RING_WORDS: usize = (RING_BUCKETS as usize) / 64;

/// The tie-breaking key of a scheduled event: events firing at the same
/// instant pop in `(lane, seq)` order.
///
/// Lane 0 is reserved for *external* events (pre-run injections and fault
/// plans, scheduled through [`EventQueue::schedule`]); node `n` schedules on
/// lane `n + 1` with a per-node sequence counter. Because every lane's
/// counter is owned by exactly one scheduling site, the full key is
/// reproducible no matter which thread or shard allocated it — the property
/// the sharded engine's byte-identity guarantee rests on (see
/// [`crate::shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Rank {
    pub(crate) lane: u32,
    pub(crate) seq: u64,
}

impl Rank {
    /// The external lane: pre-run injections and fault schedules. Sorts
    /// before any node lane at the same instant.
    pub(crate) const fn external(seq: u64) -> Rank {
        Rank { lane: 0, seq }
    }

    /// The lane of node `node` (lanes are the node id shifted up by one to
    /// keep lane 0 external).
    pub(crate) const fn node(node: u32, seq: u64) -> Rank {
        Rank {
            lane: node + 1,
            seq,
        }
    }
}

/// An overflow-heap entry; inverted `Ord` so the `BinaryHeap` max-heap pops
/// the earliest `(at, rank)` first.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    rank: Rank,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.rank == other.rank
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

/// A priority queue of simulation events ordered by `(time, lane, seq)`.
///
/// Events scheduled for the same instant on the same lane pop in insertion
/// order, and the full key never depends on hash ordering or on *when* an
/// event was inserted relative to other lanes, which makes the whole
/// simulation deterministic — sequentially and under sharded execution.
///
/// # Examples
///
/// ```
/// use wcc_simnet::EventQueue;
/// use wcc_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-too");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-too")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future ring: bucket `t % RING_BUCKETS` holds the events firing
    /// at microsecond `t`, for `t` in `[cursor, cursor + RING_BUCKETS)`.
    /// Each bucket is unsorted; pops scan it for the minimum key, which is
    /// cheap because same-microsecond occupancy is small.
    ring: Vec<Vec<(SimTime, Rank, E)>>,
    /// Occupancy bitmap over the ring: bit `b` of word `b / 64` is set iff
    /// bucket `b` is non-empty. Replaces the one-bucket-per-microsecond
    /// cursor walk in [`EventQueue::seek`] with a `trailing_zeros` scan —
    /// the event gaps in the replay traces average hundreds of microseconds,
    /// so the walk used to dominate the whole simulation's runtime.
    occupied: [u64; RING_WORDS],
    /// Events at or beyond the ring horizon, pulled into the ring lazily as
    /// the cursor advances.
    overflow: BinaryHeap<Scheduled<E>>,
    /// The earliest microsecond the ring can still hold events for. Only
    /// ever advances (simulation time is monotone); an event scheduled
    /// behind it (never done by the engine) is clamped into the cursor
    /// bucket and still pops first by key comparison.
    cursor: u64,
    /// Events currently in the ring.
    ring_len: usize,
    /// Total pending events (ring + overflow).
    len: usize,
    /// Sequence counter of the external lane (see [`Rank::external`]).
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut ring = Vec::with_capacity(RING_BUCKETS as usize);
        ring.resize_with(RING_BUCKETS as usize, Vec::new);
        EventQueue {
            ring,
            occupied: [0; RING_WORDS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            ring_len: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Marks ring bucket `slot` occupied.
    #[inline]
    fn mark(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] |= 1 << (slot % 64);
    }

    /// Clears ring bucket `slot`'s occupancy bit (bucket just became empty).
    #[inline]
    fn unmark(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] &= !(1 << (slot % 64));
    }

    /// Circular distance from bucket `start` to the nearest occupied bucket
    /// (0 when `start` itself is occupied). The ring must be non-empty.
    ///
    /// Every ring event lives in `[cursor, cursor + RING_BUCKETS)`, so the
    /// circular scan order from `cursor % RING_BUCKETS` *is* time order.
    fn next_occupied_delta(&self, start: u64) -> u64 {
        let word = (start / 64) as usize;
        let bit = (start % 64) as u32;
        let head = self.occupied[word] >> bit;
        if head != 0 {
            return u64::from(head.trailing_zeros());
        }
        for k in 1..=RING_WORDS {
            let w = self.occupied[(word + k) % RING_WORDS];
            if w != 0 {
                return u64::from(64 - bit) + ((k as u64) - 1) * 64 + u64::from(w.trailing_zeros());
            }
        }
        unreachable!("occupancy bitmap empty while ring_len > 0");
    }

    /// Schedules `payload` to fire at `at` on the external lane. Returns the
    /// event's external sequence number (unique, monotonically increasing),
    /// so same-instant external events pop in insertion order.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, Rank::external(seq), payload);
        seq
    }

    /// Schedules `payload` with a caller-assigned rank (the engine's
    /// per-node lanes).
    pub(crate) fn schedule_ranked(&mut self, at: SimTime, rank: Rank, payload: E) {
        self.insert(at, rank, payload);
    }

    fn insert(&mut self, at: SimTime, rank: Rank, payload: E) {
        self.len += 1;
        let t = at.as_micros();
        if t >= self.cursor.saturating_add(RING_BUCKETS) {
            self.overflow.push(Scheduled { at, rank, payload });
        } else {
            // Past-of-cursor events (clamped into the cursor bucket) still
            // pop first: the cursor bucket is always scanned before any
            // later one, and within a bucket the stored key decides.
            let slot = t.max(self.cursor) % RING_BUCKETS;
            self.ring[slot as usize].push((at, rank, payload));
            self.mark(slot);
            self.ring_len += 1;
        }
    }

    /// Pulls overflow events that now fall inside the ring window. Called
    /// before every ring scan so "ring before overflow" stays a strict time
    /// partition even after the cursor advances.
    fn refill(&mut self) {
        while let Some(head) = self.overflow.peek() {
            let t = head.at.as_micros();
            if t >= self.cursor.saturating_add(RING_BUCKETS) {
                break;
            }
            let s = self.overflow.pop().expect("peeked overflow entry");
            let slot = t % RING_BUCKETS;
            self.ring[slot as usize].push((s.at, s.rank, s.payload));
            self.mark(slot);
            self.ring_len += 1;
        }
    }

    /// Advances the cursor to the first non-empty bucket (one bitmap scan —
    /// empty stretches cost `trailing_zeros` word probes, not one step per
    /// microsecond) and returns its index, or `None` if the queue is empty.
    fn seek(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Skip the empty stretch in one hop instead of walking buckets.
            let head = self.overflow.peek().expect("len > 0 with empty ring");
            self.cursor = self.cursor.max(head.at.as_micros());
            self.refill();
        }
        if self.ring_len == 0 {
            // Only reachable when the head sits at the saturation edge of
            // the time axis (e.g. an event at SimTime::NEVER): pull it in
            // unconditionally so the scan below always terminates.
            let s = self.overflow.pop().expect("len > 0 with empty ring");
            let slot = self.cursor % RING_BUCKETS;
            self.ring[slot as usize].push((s.at, s.rank, s.payload));
            self.mark(slot);
            self.ring_len += 1;
        }
        let delta = self.next_occupied_delta(self.cursor % RING_BUCKETS);
        if delta > 0 {
            self.cursor += delta;
            // Crossing buckets can expose overflow entries that now fit the
            // window. One refill suffices: every overflow entry had
            // `t ≥ old cursor + RING_BUCKETS > new cursor` (the jump is less
            // than one full ring), so nothing refills at or before the
            // bucket the scan just chose.
            self.refill();
        }
        Some((self.cursor % RING_BUCKETS) as usize)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_bounded(SimTime::NEVER)
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `bound`; leaves the queue untouched otherwise. One call replaces the
    /// engine's former `peek_time` + `pop` pair per dispatched event.
    pub fn pop_bounded(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        let slot = self.seek()?;
        let bucket = &self.ring[slot];
        let mut best = 0;
        for (i, ev) in bucket.iter().enumerate().skip(1) {
            if (ev.0, ev.1) < (bucket[best].0, bucket[best].1) {
                best = i;
            }
        }
        if bucket[best].0 > bound {
            return None;
        }
        let (at, _, payload) = self.ring[slot].swap_remove(best);
        if self.ring[slot].is_empty() {
            self.unmark(slot as u64);
        }
        self.ring_len -= 1;
        self.len -= 1;
        Some((at, payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let slot = self.seek()?;
        self.ring[slot].iter().map(|ev| ev.0).min()
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drains every pending event, sorted by `(time, rank)`, with the keys
    /// intact. Used by the sharded engine to split a queue into per-shard
    /// queues (and to merge them back) without perturbing the total order.
    pub(crate) fn drain_ranked(&mut self) -> Vec<(SimTime, Rank, E)> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in &mut self.ring {
            out.append(bucket);
        }
        out.extend(
            std::mem::take(&mut self.overflow)
                .into_iter()
                .map(|s| (s.at, s.rank, s.payload)),
        );
        out.sort_by_key(|e| (e.0, e.1));
        self.occupied = [0; RING_WORDS];
        self.ring_len = 0;
        self.len = 0;
        out
    }

    /// The external-lane sequence counter (preserved across a shard
    /// split/merge so external keys stay unique).
    pub(crate) fn next_external_seq(&self) -> u64 {
        self.next_seq
    }

    /// Restores the external-lane sequence counter on a rebuilt queue.
    pub(crate) fn set_next_external_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_sequence() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(5), 'd');
        q.schedule(SimTime::from_secs(3), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn sequence_numbers_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::ZERO, ());
        let b = q.schedule(SimTime::ZERO, ());
        assert!(b > a);
    }

    #[test]
    fn large_interleaving_stays_sorted() {
        let mut q = EventQueue::new();
        // Insert times in a scrambled but deterministic pattern.
        for i in 0u64..1000 {
            q.schedule(SimTime::from_micros((i * 7919) % 503), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut first = true;
        while let Some((t, i)) = q.pop() {
            if !first {
                let same_time_in_order = t == last.0 && i > last.1;
                assert!(
                    t > last.0 || same_time_in_order,
                    "out of order: {t:?} after {last:?}"
                );
            }
            last = (t, i);
            first = false;
        }
    }

    #[test]
    fn node_lanes_order_after_external_and_by_lane() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_ranked(t, Rank::node(4, 0), "node4");
        q.schedule_ranked(t, Rank::node(0, 7), "node0");
        q.schedule(t, "external");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["external", "node0", "node4"]);
    }

    #[test]
    fn overflow_events_interleave_correctly_with_ring_events() {
        // Regression shape for the two-level design: an event parked in the
        // overflow heap must not be overtaken by a later ring event once the
        // cursor advances far enough for both to be "near future".
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(900), "early");
        q.schedule(SimTime::from_micros(RING_BUCKETS + 1_500), "overflow");
        assert_eq!(q.pop(), Some((SimTime::from_micros(900), "early")));
        // Scheduled *after* the pop moved the cursor: lands in the ring.
        q.schedule(SimTime::from_micros(RING_BUCKETS + 1_600), "ring");
        assert_eq!(
            q.pop(),
            Some((SimTime::from_micros(RING_BUCKETS + 1_500), "overflow"))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_micros(RING_BUCKETS + 1_600), "ring"))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_and_dense_bursts_mix() {
        let mut q = EventQueue::new();
        // A day-scale timer, a mid-range timer, and a dense burst.
        q.schedule(SimTime::from_secs(86_400), "day");
        q.schedule(SimTime::from_millis(50), "mid");
        for i in 0..100u64 {
            q.schedule(SimTime::from_micros(i % 7), "burst");
        }
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        assert_eq!(popped.len(), 102);
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "time-sorted");
        assert_eq!(popped.last(), Some(&SimTime::from_secs(86_400)));
    }

    #[test]
    fn empty_stretches_jump_rather_than_walk() {
        let mut q = EventQueue::new();
        // Events separated by hours of empty simulated time: pops must not
        // take time proportional to the gap.
        for h in 1..=5u64 {
            q.schedule(SimTime::from_secs(h * 3_600), h);
        }
        for h in 1..=5u64 {
            assert_eq!(q.pop(), Some((SimTime::from_secs(h * 3_600), h)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_bounded_respects_the_bound() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 'a');
        q.schedule(SimTime::from_secs(1), 'b');
        assert_eq!(q.pop_bounded(SimTime::from_micros(5)), None);
        assert_eq!(q.len(), 2, "a refused pop leaves the queue untouched");
        assert_eq!(
            q.pop_bounded(SimTime::from_micros(10)),
            Some((SimTime::from_micros(10), 'a'))
        );
        assert_eq!(q.pop_bounded(SimTime::from_micros(10)), None);
        assert_eq!(
            q.pop_bounded(SimTime::NEVER),
            Some((SimTime::from_secs(1), 'b'))
        );
        assert_eq!(q.pop_bounded(SimTime::NEVER), None);
    }

    #[test]
    fn pop_bounded_pops_saturation_edge_events() {
        // run_until_idle must drain events parked at SimTime::NEVER.
        let mut q = EventQueue::new();
        q.schedule(SimTime::NEVER, 'z');
        assert_eq!(q.pop_bounded(SimTime::NEVER), Some((SimTime::NEVER, 'z')));
    }

    #[test]
    fn occupancy_bitmap_tracks_interleaved_push_pop() {
        // Exercise word boundaries (bits 63/64) and re-marking a bucket that
        // was emptied, across several ring wraps.
        let mut q = EventQueue::new();
        for round in 0u64..3 {
            let base = round * RING_BUCKETS;
            for &off in &[63u64, 64, 65, 127, 128, 4095] {
                q.schedule(SimTime::from_micros(base + off), (round, off));
            }
            let mut got = Vec::new();
            while let Some((_, e)) = q.pop() {
                got.push(e.1);
            }
            assert_eq!(got, vec![63, 64, 65, 127, 128, 4095], "round {round}");
        }
    }

    #[test]
    fn drain_ranked_round_trips() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule_ranked(SimTime::from_secs(1), Rank::node(2, 0), 'a');
        q.schedule_ranked(SimTime::from_secs(2), Rank::node(1, 1), 'b');
        let drained = q.drain_ranked();
        assert!(q.is_empty());
        assert_eq!(
            drained.iter().map(|e| e.2).collect::<Vec<_>>(),
            vec!['a', 'b', 'c']
        );
        let mut rebuilt = EventQueue::new();
        for (at, rank, payload) in drained {
            rebuilt.schedule_ranked(at, rank, payload);
        }
        assert_eq!(rebuilt.pop(), Some((SimTime::from_secs(1), 'a')));
        assert_eq!(rebuilt.pop(), Some((SimTime::from_secs(2), 'b')));
        assert_eq!(rebuilt.pop(), Some((SimTime::from_secs(3), 'c')));
    }
}
