//! Observability primitives shared by the simulator, the replay harness and
//! the TCP prototype.
//!
//! Three pieces, all std-only and deterministic:
//!
//! * [`Histogram`] — a fixed-bucket log-linear latency histogram
//!   (microsecond-valued, mergeable, p50/p90/p99/p999 within a 6.25%
//!   relative-error bound). Replaces kept-sample vectors wherever latency
//!   distributions are reported.
//! * [`Tracer`] / [`TraceEvent`] — structured request/invalidation lifetime
//!   events keyed on sim time, recorded into per-node ring buffers and
//!   dumpable as JSONL (`wcc replay --trace-out`, reconstructed by
//!   `wcc trace`). Recording never feeds back into protocol state, so a
//!   traced replay is byte-identical to an untraced one.
//! * [`Registry`] — a named counter/gauge/histogram registry rendered in the
//!   Prometheus text exposition format (`GET /metrics` on the TCP prototype
//!   nodes; snapshot-printable from sim runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod trace;

pub use hist::Histogram;
pub use registry::{validate_exposition, Registry};
pub use trace::{
    from_jsonl, invalidation_span, merge_logs, to_jsonl, Phase, SpanKind, TraceEvent, Tracer,
};
