//! The simulation engine: owns the nodes, the clock and the event queue.

use crate::arena::{Arena, ArenaStats, Handle};
use crate::event::Rank;
use crate::metrics::NetStats;
use crate::net::{NetworkConfig, Reachability};
use crate::node::{Ctx, Node, TimerId};
use crate::EventQueue;
use std::any::Any;
use wcc_types::{FxHashSet, NodeId, SimDuration, SimTime};

/// Internal engine events.
#[derive(Debug)]
pub(crate) enum EngineEvent<M> {
    /// Deliver `msg` from `src` to `dst`.
    Deliver {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire timer `id` with `token` on `node`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Caller-chosen discriminant.
        token: u64,
        /// Cancellation handle.
        id: TimerId,
    },
    /// Apply a fault-plan action.
    Fault(FaultAction),
}

/// A scheduled change to the failure state of the network or a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    Crash(NodeId),
    Recover(NodeId),
    Sever(NodeId, NodeId),
    Heal(NodeId, NodeId),
}

/// Object-safe shim that lets the engine downcast nodes back to their
/// concrete types for inspection in tests and reports.
pub(crate) trait AnyNode<M>: Node<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Node<M> + Any> AnyNode<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct NodeState {
    pub(crate) busy_until: SimTime,
    pub(crate) busy_accum: SimDuration,
    /// The node's lane sequence counter: every event this node schedules
    /// (sends, timers, and engine-side busy deferrals *to* it) consumes one
    /// value, making the event's `(time, lane, seq)` key a pure function of
    /// the node's own history — the invariant sharded execution relies on.
    pub(crate) seq: u64,
}

/// Cross-shard routing state, present only while a [`Simulation`] runs as
/// one shard of a [`crate::shard::ShardedSimulation`].
///
/// `shard_of[n]` maps node `n` to its owning shard. Same-shard sends
/// short-circuit straight into the local queue/arena; sends to foreign nodes
/// are diverted into the per-destination-shard outbox (keys fully formed)
/// and flushed as one contiguous sorted run per window barrier, where the
/// destination merges the runs of all its senders in a single k-way pass.
pub(crate) struct ShardRoute<M> {
    pub(crate) shard_of: Vec<u32>,
    pub(crate) self_shard: u32,
    pub(crate) outboxes: Vec<Vec<(SimTime, Rank, EngineEvent<M>)>>,
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// Construction order fixes [`NodeId`]s: the first [`Simulation::add_node`]
/// gets `NodeId(0)`, and so on. See the crate-level docs for a full example.
pub struct Simulation<M> {
    pub(crate) nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    pub(crate) states: Vec<NodeState>,
    /// The queue holds [`Handle`]s into `arena`, so ring-bucket moves shuffle
    /// three words instead of full event payloads.
    pub(crate) queue: EventQueue<Handle>,
    /// In-flight event payloads, slots recycled generationally (see
    /// [`crate::arena`]).
    pub(crate) arena: Arena<EngineEvent<M>>,
    pub(crate) config: NetworkConfig,
    pub(crate) reach: Reachability,
    pub(crate) stats: NetStats,
    pub(crate) cancelled: FxHashSet<TimerId>,
    pub(crate) now: SimTime,
    pub(crate) started: bool,
    /// `Some` while this simulation runs as one shard of a sharded
    /// execution; `None` in ordinary sequential mode.
    pub(crate) route: Option<ShardRoute<M>>,
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation over the given network.
    pub fn new(config: NetworkConfig) -> Self {
        Simulation {
            // Construction-time; nodes are added before the run starts.
            nodes: Vec::new(),  // xtask-lint: allow(hot-loop-alloc)
            states: Vec::new(), // xtask-lint: allow(hot-loop-alloc)
            queue: EventQueue::new(),
            arena: Arena::new(),
            config,
            reach: Reachability::default(),
            stats: NetStats::default(),
            cancelled: FxHashSet::default(),
            now: SimTime::ZERO,
            started: false,
            route: None,
        }
    }

    /// Registers a node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started running.
    pub fn add_node<N: Node<M>>(&mut self, node: N) -> NodeId {
        assert!(
            !self.started,
            "cannot add nodes after the simulation started"
        );
        let id = NodeId::new(self.nodes.len() as u32);
        // One box per node at wiring time, never during dispatch.
        self.nodes.push(Some(Box::new(node))); // xtask-lint: allow(hot-loop-alloc)
        self.states.push(NodeState::default());
        id
    }

    /// The number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate network statistics (messages, bytes, drops).
    pub fn net_stats(&self) -> &NetStats {
        &self.stats
    }

    /// Total CPU time consumed by `node` via [`Ctx::consume`].
    pub fn busy_time(&self, node: NodeId) -> SimDuration {
        self.states[node.as_usize()].busy_accum
    }

    /// CPU utilisation of `node`: busy time over elapsed time (0 if the
    /// clock has not advanced).
    pub fn utilisation(&self, node: NodeId) -> f64 {
        if self.now == SimTime::ZERO {
            0.0
        } else {
            self.busy_time(node).as_secs_f64() / self.now.as_secs_f64()
        }
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type or mid-callback.
    pub fn node_ref<N: Node<M>>(&self, id: NodeId) -> &N {
        self.nodes[id.as_usize()]
            .as_ref()
            .expect("node is mid-callback")
            .as_any()
            .downcast_ref()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type or mid-callback.
    pub fn node_mut<N: Node<M>>(&mut self, id: NodeId) -> &mut N {
        self.nodes[id.as_usize()]
            .as_mut()
            .expect("node is mid-callback")
            .as_any_mut()
            .downcast_mut()
            .expect("node type mismatch")
    }

    /// Schedules `event` on the external lane, allocating its payload in the
    /// arena.
    fn schedule_external(&mut self, at: SimTime, event: EngineEvent<M>) {
        let handle = self.arena.alloc(event);
        self.queue.schedule(at, handle);
    }

    /// Schedules `event` with a fully formed rank (the shard split/merge and
    /// cross-shard exchange paths), allocating its payload in the arena.
    pub(crate) fn schedule_event(&mut self, at: SimTime, rank: Rank, event: EngineEvent<M>) {
        let handle = self.arena.alloc(event);
        self.queue.schedule_ranked(at, rank, handle);
    }

    /// Drains every pending event, keys intact, payloads taken back out of
    /// the arena (the shard split/merge paths).
    pub(crate) fn drain_events(&mut self) -> Vec<(SimTime, Rank, EngineEvent<M>)> {
        let arena = &mut self.arena;
        self.queue
            .drain_ranked()
            .into_iter()
            .map(|(at, rank, handle)| (at, rank, arena.take(handle)))
            .collect()
    }

    /// The event arena's allocation counters (recycle rate, peak depth).
    /// A side accessor, not a report field: sequential and sharded runs
    /// recycle through different arenas while producing byte-identical
    /// reports.
    pub fn alloc_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Schedules `node` to crash at `at`: it loses all messages and timers
    /// until recovered.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        self.schedule_external(at, EngineEvent::Fault(FaultAction::Crash(node)));
    }

    /// Schedules `node` to recover at `at` (its [`Node::on_recover`] hook
    /// runs then).
    pub fn schedule_recover(&mut self, node: NodeId, at: SimTime) {
        self.schedule_external(at, EngineEvent::Fault(FaultAction::Recover(node)));
    }

    /// Schedules a bidirectional partition between `a` and `b` over
    /// `[from, to)`.
    pub fn schedule_partition(&mut self, a: NodeId, b: NodeId, from: SimTime, to: SimTime) {
        self.schedule_external(from, EngineEvent::Fault(FaultAction::Sever(a, b)));
        self.schedule_external(to, EngineEvent::Fault(FaultAction::Heal(a, b)));
    }

    /// Injects a message into `dst` "from the outside" (source shows as
    /// `dst` itself). Useful to kick off ad-hoc test scenarios.
    pub fn inject(&mut self, dst: NodeId, msg: M, at: SimTime) {
        self.schedule_external(at, EngineEvent::Deliver { src: dst, dst, msg });
    }

    /// Runs every node's [`Node::on_start`] hook (once). Slots owned by
    /// other shards (`None`) are skipped — their owner runs the hook.
    pub(crate) fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_some() {
                self.with_node(NodeId::new(i as u32), |node, ctx| node.on_start(ctx));
            }
        }
    }

    /// Runs until the event queue is empty. Returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        self.run_until(SimTime::NEVER)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`; the clock then rests at `min(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.start();
        while let Some((at, handle)) = self.queue.pop_bounded(deadline) {
            debug_assert!(at >= self.now, "time moved backwards");
            self.now = at;
            let event = self.arena.take(handle);
            self.dispatch(event);
        }
        if deadline != SimTime::NEVER && deadline > self.now {
            self.now = deadline;
        }
        self.now
    }

    /// Runs every event with firing time *strictly before* `end`. The
    /// sharded engine's inner loop: within a window `[t, t + lookahead)` no
    /// cross-shard message can arrive, so this is safe to run concurrently
    /// with other shards' windows. Leaves the clock at the last event
    /// processed (the caller owns deadline semantics).
    pub(crate) fn run_window(&mut self, end: SimTime) {
        debug_assert!(self.started, "run_window before start()");
        // Strictly-before-`end` semantics via an inclusive bound one
        // microsecond earlier (window ends are ≥ 1 µs; see `window_end`).
        let bound = SimTime::from_micros(end.as_micros().saturating_sub(1));
        while let Some((at, handle)) = self.queue.pop_bounded(bound) {
            debug_assert!(at >= self.now, "time moved backwards");
            self.now = at;
            let event = self.arena.take(handle);
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: EngineEvent<M>) {
        match event {
            EngineEvent::Deliver { src, dst, msg } => {
                if self.reach.is_crashed(dst) {
                    self.stats.record_dropped();
                    return;
                }
                let state = &mut self.states[dst.as_usize()];
                if state.busy_until > self.now {
                    // Receiver is mid-CPU-burst: defer on the receiver's own
                    // lane, preserving FIFO order among its deferred
                    // deliveries via the lane sequence.
                    let rank = Rank::node(dst.index(), state.seq);
                    state.seq += 1;
                    let at = state.busy_until;
                    let handle = self.arena.alloc(EngineEvent::Deliver { src, dst, msg });
                    self.queue.schedule_ranked(at, rank, handle);
                    return;
                }
                self.with_node(dst, |node, ctx| node.on_message(src, msg, ctx));
            }
            EngineEvent::Timer { node, token, id } => {
                let tombstoned = !self.cancelled.is_empty() && self.cancelled.remove(&id);
                if tombstoned || self.reach.is_crashed(node) {
                    return;
                }
                self.with_node(node, |n, ctx| n.on_timer(token, ctx));
            }
            EngineEvent::Fault(action) => match action {
                FaultAction::Crash(n) => {
                    self.reach.crash(n);
                    let now = self.now;
                    if let Some(node) = self.nodes[n.as_usize()].as_mut() {
                        node.on_crash(now);
                    }
                }
                FaultAction::Recover(n) => {
                    self.reach.recover(n);
                    // Fault events are replicated to every shard to keep the
                    // reachability replicas in sync; only the owner runs the
                    // node's recovery hook.
                    if self.nodes[n.as_usize()].is_some() {
                        self.with_node(n, |node, ctx| node.on_recover(ctx));
                    }
                }
                FaultAction::Sever(a, b) => self.reach.sever(a, b),
                FaultAction::Heal(a, b) => self.reach.heal(a, b),
            },
        }
    }

    /// Temporarily removes `id`'s node, builds a [`Ctx`] over the rest of the
    /// engine, and runs `f`.
    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn AnyNode<M>, &mut Ctx<'_, M>)) {
        let mut node = self.nodes[id.as_usize()]
            .take()
            .expect("reentrant node callback");
        let state = &mut self.states[id.as_usize()];
        let mut ctx = Ctx {
            self_id: id,
            now: self.now,
            queue: &mut self.queue,
            arena: &mut self.arena,
            config: &self.config,
            reach: &self.reach,
            stats: &mut self.stats,
            cancelled: &mut self.cancelled,
            seq: &mut state.seq,
            busy_until: &mut state.busy_until,
            busy_accum: &mut state.busy_accum,
            route: self.route.as_mut(),
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.as_usize()] = Some(node);
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::ByteSize;

    /// Echoes every message back to its sender.
    struct Echo {
        seen: u32,
    }

    impl Node<u32> for Echo {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.seen += 1;
            if ctx.id() != from {
                // don't echo injected self-messages forever
                ctx.send(from, msg, ByteSize::from_bytes(64));
            }
        }
    }

    /// Sends `count` messages at start, counts echoes, records RTTs.
    struct Caller {
        peer: Option<NodeId>,
        count: u32,
        sent_at: SimTime,
        echoes: u32,
        last_rtt: SimDuration,
    }

    impl Node<u32> for Caller {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            self.sent_at = ctx.now();
            for i in 0..self.count {
                ctx.send(self.peer.unwrap(), i, ByteSize::from_bytes(64));
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.echoes += 1;
            self.last_rtt = ctx.now().saturating_since(self.sent_at);
        }
    }

    fn pair(count: u32) -> (Simulation<u32>, NodeId, NodeId) {
        let mut sim = Simulation::new(NetworkConfig::lan());
        let caller = sim.add_node(Caller {
            peer: None,
            count,
            sent_at: SimTime::ZERO,
            echoes: 0,
            last_rtt: SimDuration::ZERO,
        });
        let echo = sim.add_node(Echo { seen: 0 });
        sim.node_mut::<Caller>(caller).peer = Some(echo);
        (sim, caller, echo)
    }

    #[test]
    fn round_trip_counts_and_rtt() {
        let (mut sim, caller, echo) = pair(5);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Caller>(caller).echoes, 5);
        assert_eq!(sim.node_ref::<Echo>(echo).seen, 5);
        // 10 messages total on the wire.
        assert_eq!(sim.net_stats().messages, 10);
        // RTT at least two propagation latencies.
        assert!(sim.node_ref::<Caller>(caller).last_rtt >= SimDuration::from_micros(600));
    }

    #[test]
    fn crashed_destination_drops_messages() {
        let (mut sim, caller, echo) = pair(3);
        sim.schedule_crash(echo, SimTime::ZERO);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Caller>(caller).echoes, 0);
        assert_eq!(sim.node_ref::<Echo>(echo).seen, 0);
        assert_eq!(sim.net_stats().dropped, 3);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let (mut sim, caller, echo) = pair(2);
        // Partition only during the initial send window; heal afterwards and
        // re-inject via a fresh send from the caller through a timer.
        sim.schedule_partition(caller, echo, SimTime::ZERO, SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.node_ref::<Caller>(caller).echoes, 0);
        assert_eq!(sim.net_stats().dropped, 2);
    }

    #[test]
    fn recovery_hook_runs() {
        struct Flaky {
            crashed: bool,
            recovered: bool,
        }
        impl Node<u32> for Flaky {
            fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Ctx<'_, u32>) {}
            fn on_crash(&mut self, _now: SimTime) {
                self.crashed = true;
            }
            fn on_recover(&mut self, _ctx: &mut Ctx<'_, u32>) {
                self.recovered = true;
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        let n = sim.add_node(Flaky {
            crashed: false,
            recovered: false,
        });
        sim.schedule_crash(n, SimTime::from_secs(1));
        sim.schedule_recover(n, SimTime::from_secs(2));
        sim.run_until_idle();
        let node = sim.node_ref::<Flaky>(n);
        assert!(node.crashed);
        assert!(node.recovered);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        let _ = sim.add_node(Echo { seen: 0 });
        let end = sim.run_until(SimTime::from_secs(10));
        assert_eq!(end, SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn injected_message_arrives() {
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        let echo = sim.add_node(Echo { seen: 0 });
        sim.inject(echo, 42, SimTime::from_secs(1));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).seen, 1);
    }

    #[test]
    fn utilisation_reflects_consumed_cpu() {
        struct Burner;
        impl Node<u32> for Burner {
            fn on_message(&mut self, _f: NodeId, _m: u32, ctx: &mut Ctx<'_, u32>) {
                ctx.consume(SimDuration::from_secs(1));
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        let n = sim.add_node(Burner);
        sim.inject(n, 0, SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.busy_time(n), SimDuration::from_secs(1));
        assert!((sim.utilisation(n) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_nodes_after_start_panics() {
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        sim.run_until(SimTime::from_secs(1));
        sim.add_node(Echo { seen: 0 });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
        let n = sim.add_node(Echo { seen: 0 });
        let _ = sim.node_ref::<Burner>(n);
    }

    struct Burner;
    impl Node<u32> for Burner {
        fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Ctx<'_, u32>) {}
    }
}
