//! Quick timing probe: one full-size EPA replay under invalidation.
use wcc_core::ProtocolKind;
use wcc_replay::{run_experiment, ExperimentConfig};
use wcc_traces::TraceSpec;

fn main() {
    let start = std::time::Instant::now();
    let cfg = ExperimentConfig::builder(TraceSpec::epa())
        .protocol(ProtocolKind::Invalidation)
        .seed(42)
        .build();
    let report = run_experiment(&cfg);
    println!(
        "EPA invalidation: {} requests, {} msgs, {} bytes, hits {}, cpu {:.1}%, wall-sim {}, real {:?}",
        report.raw.requests,
        report.raw.total_messages,
        report.raw.total_bytes,
        report.raw.hits,
        report.raw.server_cpu * 100.0,
        report.raw.wall_duration,
        start.elapsed()
    );
}
