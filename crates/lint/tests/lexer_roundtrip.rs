//! Property test: lexing is lossless.
//!
//! The engine's whole design rests on one invariant — concatenating the text
//! of every token reproduces the input byte-for-byte, for *any* input,
//! including ill-formed Rust (unterminated strings, stray quotes, lone
//! backslashes). These properties fuzz that invariant with sources assembled
//! from adversarial fragments and with raw arbitrary ASCII.

use proptest::prelude::*;
use wcc_lint::lexer::{lex, TokenKind};

/// Fragments chosen to stress every lexer state transition: raw strings at
/// several hash depths, byte/C strings, nested comments, lifetimes next to
/// char literals, floats vs ranges vs method calls, raw identifiers.
const FRAGMENTS: &[&str] = &[
    "fn f() { x.unwrap(); }",
    "let s = \"quote \\\" inside\";",
    "let r = r#\"raw \" body\"#;",
    "let r2 = r##\"deeper \"# still\"##;",
    "let b = b\"bytes\\n\";",
    "let br = br#\"raw bytes\"#;",
    "let c = c\"cstr\";",
    "/* outer /* nested */ still comment */",
    "// line comment with 'a and \"text\"\n",
    "let c: char = 'x';",
    "let esc = '\\n';",
    "fn g<'a>(x: &'a str) -> &'a str { x }",
    "let _ = 1.0e-6 + 0x_ff + 0b10 + 1_000u64;",
    "let v = (0..10).map(|i| i.to_string());",
    "let r#match = 1;",
    "m!{ [a, b] => (c) }",
    "'\\u{1F600}'",
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated comment",
    "'",
    "\\ `",
    "#[cfg(test)]\nmod t { }",
    "let 🦀 = \"unicode idents are not idents here\";",
    "\n\t  \r\n",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24).prop_map(|picks| {
        picks
            .into_iter()
            .map(|i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn ascii_noise() -> impl Strategy<Value = String> {
    proptest::collection::vec(0x20u8..0x7f, 0..200)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect::<String>())
}

fn assert_roundtrip(src: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let tokens = lex(src);
    let rebuilt: String = tokens.iter().map(|t| &src[t.start..t.end]).collect();
    prop_assert_eq!(&rebuilt, src);
    // Offsets are a partition of the source: contiguous and in order.
    let mut cursor = 0;
    for t in &tokens {
        prop_assert_eq!(t.start, cursor);
        prop_assert!(t.end > t.start, "empty token at {}", t.start);
        cursor = t.end;
    }
    prop_assert_eq!(cursor, src.len());
    // Line numbers never decrease and match the newline count.
    let mut line = 1;
    for t in &tokens {
        prop_assert!(t.line >= line);
        line = t.line;
    }
    let newlines = src.bytes().filter(|&b| b == b'\n').count();
    prop_assert!(line <= newlines + 1);
    Ok(())
}

proptest! {
    #[test]
    fn fragment_soup_roundtrips(src in fragment_soup()) {
        assert_roundtrip(&src)?;
    }

    #[test]
    fn arbitrary_ascii_roundtrips(src in ascii_noise()) {
        assert_roundtrip(&src)?;
    }

    #[test]
    fn comments_and_strings_stay_single_tokens(src in fragment_soup()) {
        // A needle inside a string/comment token can never be split across
        // tokens — the rules rely on this to keep false positives at zero.
        for t in lex(&src) {
            if matches!(t.kind, TokenKind::Str | TokenKind::RawStr) {
                let text = &src[t.start..t.end];
                prop_assert!(!text.is_empty());
            }
        }
    }
}
