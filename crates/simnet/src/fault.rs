//! Declarative failure schedules.
//!
//! The paper's §4 ("Handling Failures") identifies three scenarios:
//! a proxy crash that misses invalidations, a server-site crash, and a
//! network partition between server and client. A [`FaultPlan`] is a
//! reusable description of such a schedule that can be applied to any
//! [`Simulation`] before it runs.

use crate::Simulation;
use wcc_types::{NodeId, SimTime};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlannedFault {
    Crash { node: NodeId, at: SimTime },
    Recover { node: NodeId, at: SimTime },
    Partition {
        a: NodeId,
        b: NodeId,
        from: SimTime,
        to: SimTime,
    },
}

/// A declarative schedule of crashes, recoveries and partitions.
///
/// # Examples
///
/// ```
/// use wcc_simnet::{FaultPlan, Simulation, NetworkConfig};
/// use wcc_types::{NodeId, SimTime};
///
/// let plan = FaultPlan::new()
///     .crash(NodeId::new(1), SimTime::from_secs(100))
///     .recover(NodeId::new(1), SimTime::from_secs(200))
///     .partition(
///         NodeId::new(0),
///         NodeId::new(2),
///         SimTime::from_secs(50),
///         SimTime::from_secs(80),
///     );
/// assert_eq!(plan.len(), 3);
///
/// let mut sim: Simulation<u32> = Simulation::new(NetworkConfig::lan());
/// # struct N; impl wcc_simnet::Node<u32> for N {
/// #   fn on_message(&mut self, _f: wcc_types::NodeId, _m: u32, _c: &mut wcc_simnet::Ctx<'_, u32>) {}
/// # }
/// # for _ in 0..3 { sim.add_node(N); }
/// plan.apply(&mut sim);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a node crash at `at`.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.faults.push(PlannedFault::Crash { node, at });
        self
    }

    /// Adds a node recovery at `at`.
    #[must_use]
    pub fn recover(mut self, node: NodeId, at: SimTime) -> Self {
        self.faults.push(PlannedFault::Recover { node, at });
        self
    }

    /// Adds a crash at `at` followed by recovery at `until`.
    #[must_use]
    pub fn outage(self, node: NodeId, at: SimTime, until: SimTime) -> Self {
        self.crash(node, at).recover(node, until)
    }

    /// Adds a bidirectional partition between `a` and `b` over `[from, to)`.
    #[must_use]
    pub fn partition(mut self, a: NodeId, b: NodeId, from: SimTime, to: SimTime) -> Self {
        self.faults.push(PlannedFault::Partition { a, b, from, to });
        self
    }

    /// The number of scheduled fault actions.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedules every fault onto `sim`.
    pub fn apply<M: 'static>(&self, sim: &mut Simulation<M>) {
        for fault in &self.faults {
            match *fault {
                PlannedFault::Crash { node, at } => sim.schedule_crash(node, at),
                PlannedFault::Recover { node, at } => sim.schedule_recover(node, at),
                PlannedFault::Partition { a, b, from, to } => {
                    sim.schedule_partition(a, b, from, to)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, NetworkConfig, Node};
    use wcc_types::ByteSize;

    struct Pinger {
        peer: Option<NodeId>,
        acked: u32,
    }

    impl Node<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            // Ping once a second for 5 seconds.
            for s in 1..=5 {
                ctx.set_timer(wcc_types::SimDuration::from_secs(s), s);
            }
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer.unwrap(), 0, ByteSize::from_bytes(10));
        }
        fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Ctx<'_, u32>) {
            self.acked += 1;
        }
    }

    struct Acker;
    impl Node<u32> for Acker {
        fn on_message(&mut self, from: NodeId, _m: u32, ctx: &mut Ctx<'_, u32>) {
            ctx.send(from, 1, ByteSize::from_bytes(10));
        }
    }

    #[test]
    fn outage_drops_only_pings_during_downtime() {
        let mut sim = Simulation::new(NetworkConfig::lan());
        let pinger = sim.add_node(Pinger {
            peer: None,
            acked: 0,
        });
        let acker = sim.add_node(Acker);
        sim.node_mut::<Pinger>(pinger).peer = Some(acker);
        // Acker down for seconds [1.5, 3.5): pings at t=2 and t=3 are lost.
        FaultPlan::new()
            .outage(acker, SimTime::from_millis(1_500), SimTime::from_millis(3_500))
            .apply(&mut sim);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Pinger>(pinger).acked, 3);
        assert_eq!(sim.net_stats().dropped, 2);
    }

    #[test]
    fn partition_plan_blocks_both_directions() {
        let mut sim = Simulation::new(NetworkConfig::lan());
        let pinger = sim.add_node(Pinger {
            peer: None,
            acked: 0,
        });
        let acker = sim.add_node(Acker);
        sim.node_mut::<Pinger>(pinger).peer = Some(acker);
        FaultPlan::new()
            .partition(
                pinger,
                acker,
                SimTime::from_millis(2_500),
                SimTime::from_millis(4_500),
            )
            .apply(&mut sim);
        sim.run_until_idle();
        // Pings at t=3 and t=4 blocked at send time.
        assert_eq!(sim.node_ref::<Pinger>(pinger).acked, 3);
    }

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new()
            .crash(NodeId::new(0), SimTime::ZERO)
            .recover(NodeId::new(0), SimTime::from_secs(1));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
