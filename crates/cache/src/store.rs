//! The byte-budgeted cache store and its replacement policies.

use std::collections::BTreeSet;
use wcc_types::{ByteSize, DocMeta, FxHashMap, ScopedUrl, ServerId, SimTime};

/// Which victim-selection discipline the store uses when over budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used entry.
    #[default]
    Lru,
    /// Harvest's discipline: evict entries whose TTL has already expired
    /// first (earliest expiry first), then fall back to LRU.
    ExpiredFirstLru,
}

impl ReplacementPolicy {
    /// A short human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::ExpiredFirstLru => "expired-first",
        }
    }
}

/// Consistency metadata attached to a cache entry. Which fields matter
/// depends on the active protocol:
///
/// * adaptive TTL uses `ttl_expires`;
/// * the lease protocols use `lease_expires`;
/// * all invalidation variants use `questionable` after failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Freshness {
    /// Instant at which the adaptive-TTL estimate expires; `SimTime::NEVER`
    /// when the protocol does not use TTLs.
    pub ttl_expires: SimTime,
    /// Instant at which the server's invalidation promise (lease) expires;
    /// `SimTime::NEVER` for the plain invalidation protocol (infinite
    /// lease), irrelevant for TTL/polling.
    pub lease_expires: SimTime,
    /// Set when the entry can no longer be trusted without revalidation
    /// (proxy recovered from a crash, or the origin sent a bulk
    /// `INVALIDATE <server>` after its own recovery).
    pub questionable: bool,
}

impl Default for Freshness {
    fn default() -> Self {
        Freshness {
            ttl_expires: SimTime::NEVER,
            lease_expires: SimTime::NEVER,
            questionable: false,
        }
    }
}

/// One cached document copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Size and `Last-Modified` validator of the cached version.
    pub meta: DocMeta,
    /// When the copy was fetched from the origin.
    pub fetched_at: SimTime,
    /// Consistency metadata.
    pub freshness: Freshness,
    /// Cache hits served locally since the last report to the origin —
    /// the paper's §7 hit-metering hook.
    pub unreported_hits: u64,
    /// Last access instant (maintained by [`CacheStore::touch`]).
    last_access: SimTime,
    /// Monotonic access sequence for LRU tie-breaking.
    access_seq: u64,
}

impl Entry {
    /// Last access instant.
    pub fn last_access(&self) -> SimTime {
        self.last_access
    }
}

/// Outcome of an [`CacheStore::insert`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was stored (possibly after evictions).
    Stored,
    /// The entry replaced an existing copy of the same key.
    Replaced,
    /// The document is larger than the whole cache and was not stored.
    TooLarge,
}

/// Counters the store maintains about its own operation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Of those, entries that were already TTL-expired when evicted.
    pub expired_evictions: u64,
    /// Inserts rejected because the document exceeds the cache capacity.
    pub rejected_too_large: u64,
}

/// A byte-budgeted map from [`ScopedUrl`] to [`Entry`].
///
/// # Examples
///
/// ```
/// use wcc_cache::{CacheStore, Freshness, ReplacementPolicy};
/// use wcc_types::{ByteSize, ClientId, DocMeta, ServerId, SimTime, Url};
///
/// let mut cache = CacheStore::new(ByteSize::from_kib(64), ReplacementPolicy::Lru);
/// let key = Url::new(ServerId::new(0), 1).scoped(ClientId::from_raw(7));
/// let meta = DocMeta::new(ByteSize::from_kib(16), SimTime::ZERO);
/// cache.insert(key, meta, SimTime::from_secs(1), Freshness::default());
/// assert!(cache.touch(key, SimTime::from_secs(2)).is_some());
/// assert_eq!(cache.used(), ByteSize::from_kib(16));
/// ```
#[derive(Debug)]
pub struct CacheStore {
    capacity: ByteSize,
    policy: ReplacementPolicy,
    entries: FxHashMap<ScopedUrl, Entry>,
    /// LRU index: ordered by (access_seq, key).
    lru: BTreeSet<(u64, ScopedUrl)>,
    /// Expiry index: ordered by (ttl_expires, key); only finite expiries.
    expiry: BTreeSet<(SimTime, ScopedUrl)>,
    used: ByteSize,
    next_seq: u64,
    stats: CacheStats,
}

impl CacheStore {
    /// Creates a store with the given byte capacity and policy.
    pub fn new(capacity: ByteSize, policy: ReplacementPolicy) -> Self {
        CacheStore {
            capacity,
            policy,
            entries: FxHashMap::default(),
            lru: BTreeSet::new(),
            expiry: BTreeSet::new(),
            used: ByteSize::ZERO,
            next_seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates an effectively unbounded store (the analytical model's
    /// "the cache at C always has space for D" assumption).
    pub fn unbounded(policy: ReplacementPolicy) -> Self {
        CacheStore::new(ByteSize::from_bytes(u64::MAX), policy)
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The store's operational counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key` *without* touching recency.
    pub fn peek(&self, key: ScopedUrl) -> Option<&Entry> {
        self.entries.get(&key)
    }

    /// Looks up `key`, recording an access at `now` for LRU purposes.
    pub fn touch(&mut self, key: ScopedUrl, now: SimTime) -> Option<&Entry> {
        let next_seq = self.next_seq;
        let entry = self.entries.get_mut(&key)?;
        self.lru.remove(&(entry.access_seq, key));
        entry.access_seq = next_seq;
        entry.last_access = now;
        self.next_seq += 1;
        self.lru.insert((entry.access_seq, key));
        self.entries.get(&key)
    }

    /// Records one locally served cache hit on `key` for later hit-meter
    /// reporting. No-op if absent.
    pub fn add_unreported_hit(&mut self, key: ScopedUrl) {
        self.add_unreported_hits(key, 1);
    }

    /// Adds `n` hits to `key`'s unreported count (a downstream cache's
    /// report being folded into this tier). No-op if absent.
    pub fn add_unreported_hits(&mut self, key: ScopedUrl, n: u64) {
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.unreported_hits += n;
        }
    }

    /// Drains `key`'s unreported hit count (the report is about to ride a
    /// request to the origin). Returns 0 if absent.
    pub fn take_unreported_hits(&mut self, key: ScopedUrl) -> u64 {
        self.entries
            .get_mut(&key)
            .map(|e| std::mem::take(&mut e.unreported_hits))
            .unwrap_or(0)
    }

    /// Mutable access to an entry's freshness metadata (does not touch
    /// recency). Keeps the expiry index consistent when `ttl_expires`
    /// changes.
    pub fn update_freshness(&mut self, key: ScopedUrl, f: impl FnOnce(&mut Freshness)) -> bool {
        let Some(entry) = self.entries.get_mut(&key) else {
            return false;
        };
        let old_ttl = entry.freshness.ttl_expires;
        f(&mut entry.freshness);
        let new_ttl = entry.freshness.ttl_expires;
        if old_ttl != new_ttl {
            if old_ttl != SimTime::NEVER {
                self.expiry.remove(&(old_ttl, key));
            }
            if new_ttl != SimTime::NEVER {
                self.expiry.insert((new_ttl, key));
            }
        }
        true
    }

    /// Replaces an entry's metadata in place (new version fetched), keeping
    /// byte accounting and indices consistent. Returns `false` if absent.
    pub fn replace_meta(&mut self, key: ScopedUrl, meta: DocMeta, now: SimTime) -> bool {
        if self.entries.contains_key(&key) {
            // Remove + insert keeps all the accounting in one code path.
            let freshness = self.entries[&key].freshness;
            let unreported = self.entries[&key].unreported_hits;
            self.remove(key);
            let stored = matches!(
                self.insert(key, meta, now, freshness),
                InsertOutcome::Stored | InsertOutcome::Replaced
            );
            if stored {
                if let Some(e) = self.entries.get_mut(&key) {
                    e.unreported_hits = unreported;
                }
            }
            stored
        } else {
            false
        }
    }

    /// Inserts (or replaces) an entry, evicting victims as needed.
    pub fn insert(
        &mut self,
        key: ScopedUrl,
        meta: DocMeta,
        now: SimTime,
        freshness: Freshness,
    ) -> InsertOutcome {
        if meta.size() > self.capacity {
            self.stats.rejected_too_large += 1;
            return InsertOutcome::TooLarge;
        }
        let replaced = self.remove(key).is_some();
        while self.used + meta.size() > self.capacity {
            if !self.evict_one(now) {
                break; // nothing left to evict (shouldn't happen: size fits)
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            meta,
            fetched_at: now,
            freshness,
            unreported_hits: 0,
            last_access: now,
            access_seq: seq,
        };
        self.lru.insert((seq, key));
        if freshness.ttl_expires != SimTime::NEVER {
            self.expiry.insert((freshness.ttl_expires, key));
        }
        self.used += meta.size();
        self.entries.insert(key, entry);
        if replaced {
            InsertOutcome::Replaced
        } else {
            InsertOutcome::Stored
        }
    }

    /// Removes and returns an entry (e.g. on receipt of an `INVALIDATE`).
    pub fn remove(&mut self, key: ScopedUrl) -> Option<Entry> {
        let entry = self.entries.remove(&key)?;
        self.lru.remove(&(entry.access_seq, key));
        if entry.freshness.ttl_expires != SimTime::NEVER {
            self.expiry.remove(&(entry.freshness.ttl_expires, key));
        }
        self.used -= entry.meta.size();
        Some(entry)
    }

    /// Marks every entry questionable — the paper's proxy-recovery action
    /// ("let the proxy mark all its cache entries as questionable when it
    /// recovers"). Returns how many entries were marked.
    pub fn mark_all_questionable(&mut self) -> usize {
        for entry in self.entries.values_mut() {
            entry.freshness.questionable = true;
        }
        self.entries.len()
    }

    /// Marks every entry from `server` questionable — the proxy-side effect
    /// of a bulk `INVALIDATE <server-addr>` after a server-site recovery.
    /// Returns how many entries were marked.
    pub fn mark_server_questionable(&mut self, server: ServerId) -> usize {
        let mut n = 0;
        for (key, entry) in self.entries.iter_mut() {
            if key.url().server() == server {
                entry.freshness.questionable = true;
                n += 1;
            }
        }
        n
    }

    /// Iterates over `(key, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ScopedUrl, &Entry)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Evicts one victim according to the policy. Returns `false` if empty.
    fn evict_one(&mut self, now: SimTime) -> bool {
        let victim = match self.policy {
            ReplacementPolicy::Lru => self.lru.iter().next().map(|&(_, k)| k),
            ReplacementPolicy::ExpiredFirstLru => {
                // An entry is "expired" if its TTL estimate has passed.
                let expired = self
                    .expiry
                    .iter()
                    .next()
                    .filter(|&&(exp, _)| exp <= now)
                    .map(|&(_, k)| k);
                expired.or_else(|| self.lru.iter().next().map(|&(_, k)| k))
            }
        };
        let Some(victim) = victim else {
            return false;
        };
        let was_expired = self
            .entries
            .get(&victim)
            .map(|e| e.freshness.ttl_expires <= now)
            .unwrap_or(false);
        self.remove(victim);
        self.stats.evictions += 1;
        if was_expired {
            self.stats.expired_evictions += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_types::{ClientId, Url};

    fn key(doc: u32) -> ScopedUrl {
        Url::new(ServerId::new(0), doc).scoped(ClientId::from_raw(1))
    }

    fn meta(kib: u64) -> DocMeta {
        DocMeta::new(ByteSize::from_kib(kib), SimTime::ZERO)
    }

    fn fresh_with_ttl(secs: u64) -> Freshness {
        Freshness {
            ttl_expires: SimTime::from_secs(secs),
            ..Freshness::default()
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut c = CacheStore::new(ByteSize::from_kib(100), ReplacementPolicy::Lru);
        assert!(c.is_empty());
        assert_eq!(
            c.insert(key(1), meta(10), SimTime::ZERO, Freshness::default()),
            InsertOutcome::Stored
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), ByteSize::from_kib(10));
        assert!(c.peek(key(1)).is_some());
        assert!(c.peek(key(2)).is_none());
        let removed = c.remove(key(1)).unwrap();
        assert_eq!(removed.meta, meta(10));
        assert_eq!(c.used(), ByteSize::ZERO);
        assert!(c.remove(key(1)).is_none());
    }

    #[test]
    fn replacing_same_key_does_not_double_count() {
        let mut c = CacheStore::new(ByteSize::from_kib(100), ReplacementPolicy::Lru);
        c.insert(key(1), meta(10), SimTime::ZERO, Freshness::default());
        assert_eq!(
            c.insert(
                key(1),
                meta(30),
                SimTime::from_secs(1),
                Freshness::default()
            ),
            InsertOutcome::Replaced
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), ByteSize::from_kib(30));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = CacheStore::new(ByteSize::from_kib(30), ReplacementPolicy::Lru);
        c.insert(
            key(1),
            meta(10),
            SimTime::from_secs(1),
            Freshness::default(),
        );
        c.insert(
            key(2),
            meta(10),
            SimTime::from_secs(2),
            Freshness::default(),
        );
        c.insert(
            key(3),
            meta(10),
            SimTime::from_secs(3),
            Freshness::default(),
        );
        // Touch key(1) so key(2) is now LRU.
        c.touch(key(1), SimTime::from_secs(4));
        c.insert(
            key(4),
            meta(10),
            SimTime::from_secs(5),
            Freshness::default(),
        );
        assert!(c.peek(key(1)).is_some());
        assert!(c.peek(key(2)).is_none(), "LRU victim should be key 2");
        assert!(c.peek(key(3)).is_some());
        assert!(c.peek(key(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn expired_first_prefers_expired_victims() {
        let mut c = CacheStore::new(ByteSize::from_kib(30), ReplacementPolicy::ExpiredFirstLru);
        // key(1) is oldest by LRU but has a far-future TTL; key(3) is the
        // most recently used but already expired.
        c.insert(
            key(1),
            meta(10),
            SimTime::from_secs(1),
            fresh_with_ttl(1_000_000),
        );
        c.insert(
            key(2),
            meta(10),
            SimTime::from_secs(2),
            fresh_with_ttl(2_000_000),
        );
        c.insert(key(3), meta(10), SimTime::from_secs(3), fresh_with_ttl(10));
        let now = SimTime::from_secs(100); // key(3)'s TTL has passed
        c.insert(key(4), meta(10), now, Freshness::default());
        assert!(c.peek(key(3)).is_none(), "expired entry should go first");
        assert!(c.peek(key(1)).is_some());
        assert!(c.peek(key(2)).is_some());
        assert_eq!(c.stats().expired_evictions, 1);
    }

    #[test]
    fn expired_first_falls_back_to_lru() {
        let mut c = CacheStore::new(ByteSize::from_kib(20), ReplacementPolicy::ExpiredFirstLru);
        c.insert(
            key(1),
            meta(10),
            SimTime::from_secs(1),
            fresh_with_ttl(1_000_000),
        );
        c.insert(
            key(2),
            meta(10),
            SimTime::from_secs(2),
            fresh_with_ttl(1_000_000),
        );
        c.insert(
            key(3),
            meta(10),
            SimTime::from_secs(3),
            Freshness::default(),
        );
        assert!(c.peek(key(1)).is_none(), "no expired entries → LRU victim");
    }

    #[test]
    fn oversized_documents_rejected() {
        let mut c = CacheStore::new(ByteSize::from_kib(5), ReplacementPolicy::Lru);
        assert_eq!(
            c.insert(key(1), meta(10), SimTime::ZERO, Freshness::default()),
            InsertOutcome::TooLarge
        );
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected_too_large, 1);
    }

    #[test]
    fn questionable_marking() {
        let mut c = CacheStore::unbounded(ReplacementPolicy::Lru);
        let other_server = Url::new(ServerId::new(9), 1).scoped(ClientId::from_raw(1));
        c.insert(key(1), meta(1), SimTime::ZERO, Freshness::default());
        c.insert(key(2), meta(1), SimTime::ZERO, Freshness::default());
        c.insert(other_server, meta(1), SimTime::ZERO, Freshness::default());
        assert_eq!(c.mark_server_questionable(ServerId::new(0)), 2);
        assert!(c.peek(key(1)).unwrap().freshness.questionable);
        assert!(!c.peek(other_server).unwrap().freshness.questionable);
        assert_eq!(c.mark_all_questionable(), 3);
        assert!(c.peek(other_server).unwrap().freshness.questionable);
    }

    #[test]
    fn update_freshness_keeps_expiry_index_consistent() {
        let mut c = CacheStore::new(ByteSize::from_kib(20), ReplacementPolicy::ExpiredFirstLru);
        c.insert(key(1), meta(10), SimTime::from_secs(1), fresh_with_ttl(10));
        // Refresh the TTL far into the future (a 304 revalidation).
        assert!(c.update_freshness(key(1), |f| f.ttl_expires = SimTime::from_secs(1_000_000)));
        c.insert(
            key(2),
            meta(10),
            SimTime::from_secs(2),
            fresh_with_ttl(1_000_000),
        );
        // At t=100 nothing is expired any more; eviction must be LRU.
        c.insert(
            key(3),
            meta(10),
            SimTime::from_secs(100),
            Freshness::default(),
        );
        assert!(c.peek(key(1)).is_none(), "LRU fallback evicts key 1");
        assert!(c.peek(key(2)).is_some());
        assert!(!c.update_freshness(key(99), |_| {}));
    }

    #[test]
    fn replace_meta_updates_size() {
        let mut c = CacheStore::new(ByteSize::from_kib(100), ReplacementPolicy::Lru);
        c.insert(key(1), meta(10), SimTime::ZERO, fresh_with_ttl(50));
        assert!(c.replace_meta(key(1), meta(40), SimTime::from_secs(1)));
        assert_eq!(c.used(), ByteSize::from_kib(40));
        // Freshness carried over.
        assert_eq!(
            c.peek(key(1)).unwrap().freshness.ttl_expires,
            SimTime::from_secs(50)
        );
        assert!(!c.replace_meta(key(9), meta(1), SimTime::ZERO));
    }

    #[test]
    fn touch_updates_recency_and_returns_entry() {
        let mut c = CacheStore::unbounded(ReplacementPolicy::Lru);
        c.insert(key(1), meta(1), SimTime::from_secs(1), Freshness::default());
        let e = c.touch(key(1), SimTime::from_secs(9)).unwrap();
        assert_eq!(e.last_access(), SimTime::from_secs(9));
        assert!(c.touch(key(2), SimTime::from_secs(9)).is_none());
    }

    #[test]
    fn eviction_loop_frees_enough_for_large_insert() {
        let mut c = CacheStore::new(ByteSize::from_kib(30), ReplacementPolicy::Lru);
        for d in 0..3 {
            c.insert(
                key(d),
                meta(10),
                SimTime::from_secs(d as u64),
                Freshness::default(),
            );
        }
        // A 25 KiB insert leaves only 5 KiB of budget for the old entries,
        // so all three 10 KiB entries must go.
        c.insert(
            key(9),
            meta(25),
            SimTime::from_secs(10),
            Freshness::default(),
        );
        assert_eq!(c.stats().evictions, 3);
        assert!(c.used() <= c.capacity());
        assert!(c.peek(key(9)).is_some());
        assert_eq!(c.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wcc_types::{ClientId, Url};

    #[derive(Debug, Clone)]
    enum Op {
        Insert { doc: u32, kib: u64, ttl_secs: u64 },
        Touch { doc: u32 },
        Remove { doc: u32 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..20, 1u64..40, 0u64..1000).prop_map(|(doc, kib, ttl_secs)| Op::Insert {
                doc,
                kib,
                ttl_secs
            }),
            (0u32..20).prop_map(|doc| Op::Touch { doc }),
            (0u32..20).prop_map(|doc| Op::Remove { doc }),
        ]
    }

    fn skey(doc: u32) -> ScopedUrl {
        Url::new(ServerId::new(0), doc).scoped(ClientId::from_raw(5))
    }

    proptest! {
        /// After any operation sequence: used == Σ entry sizes ≤ capacity,
        /// and both indices agree with the entry map.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec(op_strategy(), 1..200),
                                 policy in prop_oneof![Just(ReplacementPolicy::Lru),
                                                       Just(ReplacementPolicy::ExpiredFirstLru)]) {
            let capacity = ByteSize::from_kib(100);
            let mut c = CacheStore::new(capacity, policy);
            let mut now = SimTime::ZERO;
            for op in ops {
                now += wcc_types::SimDuration::from_secs(10);
                match op {
                    Op::Insert { doc, kib, ttl_secs } => {
                        let f = Freshness {
                            ttl_expires: SimTime::from_secs(ttl_secs),
                            ..Freshness::default()
                        };
                        c.insert(skey(doc), DocMeta::new(ByteSize::from_kib(kib), SimTime::ZERO), now, f);
                    }
                    Op::Touch { doc } => { c.touch(skey(doc), now); }
                    Op::Remove { doc } => { c.remove(skey(doc)); }
                }
                let sum: ByteSize = c.iter().map(|(_, e)| e.meta.size()).sum();
                prop_assert_eq!(c.used(), sum);
                prop_assert!(c.used() <= capacity);
                prop_assert_eq!(c.len(), c.iter().count());
            }
        }

        /// An entry that was just inserted and never evicted is retrievable,
        /// and `touch` never invents entries.
        #[test]
        fn touch_only_returns_present(docs in proptest::collection::vec(0u32..10, 1..50)) {
            let mut c = CacheStore::unbounded(ReplacementPolicy::Lru);
            let mut present = std::collections::HashSet::new();
            let mut now = SimTime::ZERO;
            for doc in docs {
                now += wcc_types::SimDuration::from_secs(1);
                if present.contains(&doc) {
                    prop_assert!(c.touch(skey(doc), now).is_some());
                    c.remove(skey(doc));
                    present.remove(&doc);
                } else {
                    prop_assert!(c.touch(skey(doc), now).is_none());
                    c.insert(skey(doc), DocMeta::new(ByteSize::from_kib(1), SimTime::ZERO), now, Freshness::default());
                    present.insert(doc);
                }
            }
        }
    }
}
