//! Integration tests for the §7 hit-metering merge.

use wcc_core::ProtocolKind;
use wcc_replay::experiment::{materialise, run_on};
use wcc_replay::ExperimentConfig;
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn run_cfg(protocol: wcc_core::ProtocolConfig) -> (u64, wcc_httpsim::RawReport) {
    let base = ExperimentConfig::builder(TraceSpec::epa().scaled_down(80))
        .mean_lifetime(SimDuration::from_days(5))
        .seed(101)
        .build();
    let (trace, mods) = materialise(&base);
    let mut cfg = base.clone();
    cfg.protocol = protocol;
    (trace.records.len() as u64, run_on(&cfg, &trace, &mods).raw)
}

fn run(kind: ProtocolKind) -> (u64, wcc_httpsim::RawReport) {
    run_cfg(wcc_core::ProtocolConfig::new(kind))
}

#[test]
fn metered_views_never_exceed_true_requests() {
    // Reports can be lost (evictions, end-of-run residue) but never
    // invented: metered ≤ actual, and metered ≥ server-visible.
    for kind in ProtocolKind::ALL {
        let (actual, r) = run(kind);
        let metered = r.metered_served + r.metered_reported;
        assert!(
            metered <= actual,
            "{kind}: metered {metered} > actual {actual}"
        );
        assert!(metered >= r.metered_served);
        // Retransmissions can inflate server-visible slightly; allow them.
        assert!(
            r.metered_served <= r.gets + r.ims,
            "{kind}: served {} vs wire {}",
            r.metered_served,
            r.gets + r.ims
        );
    }
}

#[test]
fn polling_needs_no_reports_and_misses_nothing() {
    let (actual, r) = run(ProtocolKind::PollEveryTime);
    assert_eq!(r.metered_reported, 0);
    assert_eq!(r.metered_served, actual + r.revalidation_races);
}

#[test]
fn validating_protocols_recover_most_views_through_reports() {
    // Protocols that periodically revalidate get frequent report
    // opportunities and recover most of the true count. (The lease must be
    // short enough to expire within the one-day trace.)
    let cases = [
        wcc_core::ProtocolConfig::new(ProtocolKind::AdaptiveTtl),
        wcc_core::ProtocolConfig::new(ProtocolKind::LeaseInvalidation)
            .with_lease(SimDuration::from_hours(2)),
    ];
    for cfg in cases {
        let kind = cfg.kind;
        let (actual, r) = run_cfg(cfg);
        let metered = r.metered_served + r.metered_reported;
        // The server alone undercounts…
        assert!(r.metered_served < actual, "{kind}");
        // …and recovery should beat 80% on this workload.
        assert!(
            metered as f64 > actual as f64 * 0.8,
            "{kind}: recovered only {metered}/{actual}"
        );
    }
    // Plain invalidation (infinite leases) only reports on invalidation
    // acks, so with low churn recovery is structurally worse — but reports
    // must still help.
    let (_, r) = run(ProtocolKind::Invalidation);
    let metered = r.metered_served + r.metered_reported;
    assert!(metered > r.metered_served, "acks should add reported hits");
}

#[test]
fn invalidation_reports_ride_the_acks() {
    let (_, r) = run(ProtocolKind::Invalidation);
    // Plain invalidation never revalidates, so every reported hit must have
    // arrived on an invalidation acknowledgement.
    assert_eq!(r.ims, 0);
    assert!(r.metered_reported > 0, "acks should carry hit reports");
}
