//! The trace-replay experiment harness.
//!
//! This crate turns the building blocks below it into the paper's
//! experiments:
//!
//! * [`ExperimentConfig`] / [`run_experiment`] — one protocol over one
//!   trace with one mean file lifetime (one column of Tables 3/4);
//! * [`run_trio`] — the adaptive-TTL / polling / invalidation comparison
//!   (one full block of Tables 3/4);
//! * [`parallel`] — the deterministic fan-out pool: batches of experiments
//!   run on worker threads (`--jobs N` / `WCC_JOBS`), reports returned in
//!   submission order, byte-identical to a sequential run;
//! * [`tables`] — formatting that mirrors the paper's table layout,
//!   including Table 5's invalidation-cost rows;
//! * [`failure`] — the §4 failure scenarios (proxy crash, server crash,
//!   network partition) with machine-checkable outcomes;
//! * [`two_tier_comparison`] — the §6 two-tier-lease evaluation.
//!
//! # Example
//!
//! ```
//! use wcc_replay::{run_experiment, ExperimentConfig};
//! use wcc_core::ProtocolKind;
//! use wcc_traces::TraceSpec;
//!
//! let cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(200))
//!     .protocol(ProtocolKind::Invalidation)
//!     .seed(1)
//!     .build();
//! let report = run_experiment(&cfg);
//! assert!(report.raw.finished);
//! assert_eq!(report.raw.final_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod failure;
pub mod parallel;
pub mod tables;

pub use experiment::{
    materialise, run_experiment, run_experiment_sharded, run_trio, two_tier_comparison,
    ExperimentConfig, ExperimentConfigBuilder, ReplayReport, TwoTierComparison,
};
pub use failure::{
    partition_scenario, proxy_crash_scenario, server_crash_scenario,
    server_crash_under_partition_scenario, FailureOutcome,
};
pub use parallel::{
    auto_shards, effective_jobs, effective_shards, host_cores, run_batch, run_trio_jobs,
};
pub use wcc_audit::{AuditReport, Violation};
