//! # webcache — strong cache consistency for the World-Wide Web
//!
//! A from-scratch Rust reproduction of **Liu & Cao, "Maintaining Strong
//! Cache Consistency in the World-Wide Web" (ICDCS 1997)**: the three
//! consistency protocols (adaptive TTL, polling-every-time, invalidation),
//! the lease-augmented and two-tier extensions, a Harvest-style simulated
//! deployment (origin server + accelerator + proxy caches), calibrated
//! synthetic versions of the five evaluation traces, a deterministic
//! discrete-event simulator to replay them, and a real threaded TCP
//! prototype exercising the same protocol state machines over sockets.
//!
//! This facade crate re-exports every sub-crate under a stable module path.
//! Start with [`replay`] to run a paper experiment, or [`core`] for the
//! protocol state machines themselves.
//!
//! ```
//! use webcache::replay::{ExperimentConfig, run_experiment};
//! use webcache::core::ProtocolKind;
//! use webcache::traces::TraceSpec;
//!
//! // A miniature EPA-style replay under the invalidation protocol.
//! let cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(100))
//!     .protocol(ProtocolKind::Invalidation)
//!     .seed(42)
//!     .build();
//! let report = run_experiment(&cfg);
//! assert_eq!(report.raw.final_violations, 0); // strong consistency held
//! ```

pub use wcc_bench as bench;
pub use wcc_cache as cache;
pub use wcc_core as core;
pub use wcc_fuzz as fuzz;
pub use wcc_httpsim as httpsim;
pub use wcc_net as net;
pub use wcc_obs as obs;
pub use wcc_proto as proto;
pub use wcc_reactor as reactor;
pub use wcc_replay as replay;
pub use wcc_simnet as simnet;
pub use wcc_traces as traces;
pub use wcc_types as types;
