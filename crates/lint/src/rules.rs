//! The needle rules, ported from the old substring engine onto token
//! sequences: each needle is a sequence of significant-token texts, so a
//! match can never start inside a string literal, comment, or char
//! literal, and `#[cfg(test)]` masking follows real item extents.

use crate::engine::SourceFile;
use crate::Diagnostic;

pub(crate) struct SeqRule {
    pub name: &'static str,
    /// Each needle is one token-text sequence; any match fires the rule.
    pub needles: &'static [&'static [&'static str]],
    pub message: &'static str,
    /// Whether the rule applies to this workspace-relative path at all.
    pub in_scope: fn(&str) -> bool,
    /// Whether this path is on the rule's explicit allowlist.
    pub allowed: fn(&str) -> bool,
    /// Whether the rule also inspects `#[cfg(test)]` code.
    pub include_tests: bool,
}

pub(crate) fn protocol_crate(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/proto/src/")
        || path.starts_with("crates/cache/src/")
}

fn hot_path_crate(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/httpsim/src/")
        || path.starts_with("crates/simnet/src/")
}

/// The event-dispatch and decode hot paths: the files whose steady state
/// the arena / zero-copy work keeps off the global allocator. Setup-time
/// allocations (constructors, per-run scaffolding) are waived in place —
/// the marker documents "init, not steady state" and the stale-waiver
/// audit keeps it honest.
fn hot_loop_file(path: &str) -> bool {
    matches!(
        path,
        "crates/simnet/src/event.rs"
            | "crates/simnet/src/sim.rs"
            | "crates/simnet/src/node.rs"
            | "crates/simnet/src/arena.rs"
            | "crates/simnet/src/shard.rs"
            | "crates/proto/src/zero.rs"
            | "crates/httpsim/src/proxy.rs"
            | "crates/httpsim/src/origin.rs"
            | "crates/reactor/src/sys.rs"
            | "crates/reactor/src/buf.rs"
            | "crates/net/src/evloop.rs"
    )
}

fn simulation_code(path: &str) -> bool {
    // Everything except the real-network crate runs under the simulated
    // clock; `crates/net` is the one place wall-time waiting is legitimate.
    (path.starts_with("crates/") && !path.starts_with("crates/net/")) || path.starts_with("src/")
}

pub(crate) const SEQ_RULES: &[SeqRule] = &[
    SeqRule {
        name: "wall-clock",
        needles: &[
            &["SystemTime", ":", ":", "now"],
            &["Instant", ":", ":", "now"],
        ],
        message: "ambient wall clock breaks replay determinism; use \
                  wcc_types::WallClock (crates/types/src/time.rs)",
        in_scope: |_| true,
        allowed: |path| {
            path == "crates/types/src/time.rs" || path == "crates/bench/src/trajectory.rs"
        },
        include_tests: false,
    },
    SeqRule {
        name: "hot-path-hasher",
        needles: &[
            &["HashMap", ":", ":", "new", "(", ")"],
            &["HashSet", ":", ":", "new", "(", ")"],
            &["collections", ":", ":", "HashMap"],
            &["collections", ":", ":", "HashSet"],
        ],
        message: "default SipHash maps are too slow for the replay hot \
                  path; use wcc_types::FxHashMap / FxHashSet (::default())",
        in_scope: hot_path_crate,
        allowed: |_| false,
        include_tests: false,
    },
    SeqRule {
        name: "unwrap",
        needles: &[&[".", "unwrap", "(", ")"], &[".", "expect", "("]],
        message: "protocol crates must not panic on recoverable states; \
                  return or propagate the error",
        in_scope: protocol_crate,
        allowed: |_| false,
        include_tests: false,
    },
    SeqRule {
        name: "sleep",
        needles: &[&["thread", ":", ":", "sleep"]],
        message: "simulation code must advance the discrete-event clock, \
                  not the OS scheduler",
        in_scope: simulation_code,
        allowed: |_| false,
        include_tests: false,
    },
    SeqRule {
        name: "todo",
        needles: &[&["todo", "!"], &["unimplemented", "!"]],
        message: "no unfinished code paths",
        in_scope: |_| true,
        allowed: |_| false,
        include_tests: true,
    },
    SeqRule {
        name: "url-path-alloc",
        needles: &[&[".", "path", "(", ")"]],
        message: "Url::path() allocates a String per call; format through \
                  Url::write_path / Url::path_display into an existing \
                  buffer instead",
        in_scope: |path| {
            path.starts_with("crates/httpsim/src/")
                || path.starts_with("crates/simnet/src/")
                || path.starts_with("crates/obs/src/")
                || path.starts_with("crates/proto/src/")
        },
        allowed: |_| false,
        include_tests: false,
    },
    SeqRule {
        name: "hot-loop-alloc",
        needles: &[
            &["Box", ":", ":", "new"],
            &["Vec", ":", ":", "new", "(", ")"],
            &[".", "to_string", "(", ")"],
            &["format", "!"],
        ],
        message: "event-dispatch and decode hot paths must not touch the \
                  global allocator in steady state; recycle through the \
                  arena, borrow from the receive buffer, or waive a \
                  setup-time allocation in place",
        in_scope: hot_loop_file,
        allowed: |_| false,
        include_tests: false,
    },
    SeqRule {
        name: "obs-registry",
        needles: &[&["AtomicU64"], &["AtomicUsize"]],
        message: "ad-hoc atomic counters bypass the observability layer; \
                  publish through wcc_obs::Registry (counters/gauges/\
                  histograms) so /metrics stays complete",
        in_scope: |path| {
            path.starts_with("crates/net/src/") || path.starts_with("crates/reactor/src/")
        },
        allowed: |_| false,
        include_tests: false,
    },
];

/// Every rule name the engine can emit (used to validate waivers).
pub(crate) fn known_rules() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = SEQ_RULES.iter().map(|r| r.name).collect();
    names.extend([
        crate::order::MAP_RULE,
        crate::order::INDEX_RULE,
        crate::wire::RULE,
        crate::STALE_WAIVER_RULE,
    ]);
    names
}

/// Runs every sequence rule over one file.
pub(crate) fn scan_seq_rules(file: &SourceFile<'_>) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    for rule in SEQ_RULES {
        if !(rule.in_scope)(file.path) || (rule.allowed)(file.path) {
            continue;
        }
        let mut last_line = 0;
        for k in 0..file.len() {
            if !rule.include_tests && file.masked_at(k) {
                continue;
            }
            if !rule.needles.iter().any(|n| file.seq_at(k, n)) {
                continue;
            }
            let line = file.line(k);
            if line == last_line {
                continue; // one finding per rule per line, like the old engine
            }
            last_line = line;
            findings.push(Diagnostic {
                path: file.path.to_string(),
                line,
                rule: rule.name,
                message: rule.message.to_string(),
            });
        }
    }
    findings
}
