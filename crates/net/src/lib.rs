//! Real-TCP prototype of the consistency protocols.
//!
//! Where `wcc-httpsim` replays traces through a discrete-event model of the
//! paper's testbed, this crate runs the *same protocol state machines*
//! ([`wcc_core::ProxyPolicy`] / [`wcc_core::ServerConsistency`]) over actual
//! `std::net` sockets with the text codec from [`wcc_proto::wire`] — the
//! analogue of the paper's Harvest prototype, runnable on loopback.
//!
//! * [`NetOrigin`] — origin server + accelerator: serves `GET`/IMS, accepts
//!   `NOTIFY` check-ins, and pushes `INVALIDATE`s to proxies over
//!   proxy-initiated persistent channels (firewall-friendly, per the
//!   paper's §7 remark);
//! * [`NetProxy`] — a caching proxy with a blocking [`NetProxy::fetch`] API
//!   for browsers (tests and examples) to call;
//! * [`NetParent`] — the hierarchy's parent tier: children connect to it as
//!   if it were an origin, and it proxies misses upstream;
//! * [`check_in`] — the modifier's check-in utility.
//!
//! Logical (trace) time is supplied by the caller on every operation, so
//! tests are deterministic; the sockets provide real concurrency, real
//! partial failures (dropped connections) and real wire encoding.
//!
//! # Example
//!
//! ```no_run
//! use wcc_core::{ProtocolConfig, ProtocolKind};
//! use wcc_net::{check_in, NetOrigin, NetProxy, OriginConfig};
//! use wcc_types::{ByteSize, ClientId, ServerId, SimTime, Url};
//!
//! let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
//! let origin = NetOrigin::spawn(OriginConfig {
//!     server: ServerId::new(0),
//!     doc_sizes: vec![ByteSize::from_kib(8); 16],
//!     protocol: cfg.clone(),
//!     doc_scale: 100,
//!     inval_batch: None,
//! })?;
//! let proxy = NetProxy::spawn(origin.addr(), &cfg, 0, 1, ByteSize::from_mib(64))?;
//!
//! let url = Url::new(ServerId::new(0), 3);
//! let client = ClientId::from_raw(7);
//! let first = proxy.fetch(client, url, SimTime::from_secs(1))?;
//! assert!(!first.had_entry);
//!
//! // The document changes; the write completes once the proxy acked.
//! check_in(origin.addr(), url, SimTime::from_secs(10))?;
//! assert!(origin.wait_writes_complete(std::time::Duration::from_secs(2)));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evloop;
mod origin;
mod parent;
mod proxy;
mod scrape;
mod upstream;

pub use origin::{check_in, NetOrigin, OriginConfig, OriginSnapshot};
pub use parent::{NetParent, NetParentCounters};
pub use proxy::{FetchKind, FetchOutcome, NetProxy, NetProxyCounters};
pub use scrape::scrape;
