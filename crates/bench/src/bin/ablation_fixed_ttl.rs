//! Ablation A5: the fixed-TTL baseline (Worrell's comparison point, §2).
//!
//! A single TTL for all documents either revalidates constantly (short TTL)
//! or serves stale documents freely (long TTL); adaptive TTL interpolates,
//! which is why the paper adopts it as the weak-consistency champion —
//! "studies have shown adaptive TTL performs best". This sweep makes that
//! dominance measurable, with invalidation as the strong-consistency anchor.

use wcc_bench::{parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::experiment::{materialise, run_on};
use wcc_replay::{effective_jobs, parallel, ExperimentConfig, ReplayReport};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn main() {
    let scale = parse_scale(std::env::args());
    println!("=== Ablation A5: fixed-TTL sweep vs adaptive TTL vs invalidation (SASK, scale 1/{scale}) ===\n");
    let base = ExperimentConfig::builder(TraceSpec::sask().scaled_down(scale))
        .mean_lifetime(SimDuration::from_days(2)) // brisk churn
        .seed(TABLE_SEED)
        .build();
    let (trace, mods) = materialise(&base);
    println!(
        "{:<20}{:>12}{:>12}{:>14}{:>12}",
        "protocol", "messages", "IMS", "stale hits", "transfers"
    );
    let fixed = [
        ("fixed-ttl 10m", SimDuration::from_mins(10)),
        ("fixed-ttl 1h", SimDuration::from_hours(1)),
        ("fixed-ttl 1d", SimDuration::from_days(1)),
        ("fixed-ttl 8d", SimDuration::from_days(8)),
    ];
    // All six replays (four fixed TTLs plus the two anchors) share the
    // workload and fan out together.
    let mut labelled: Vec<(String, ExperimentConfig)> = fixed
        .iter()
        .map(|&(label, ttl)| {
            let mut cfg = base.clone();
            cfg.protocol = ProtocolConfig::new(ProtocolKind::FixedTtl).with_fixed_ttl(ttl);
            (label.to_string(), cfg)
        })
        .collect();
    for kind in [ProtocolKind::AdaptiveTtl, ProtocolKind::Invalidation] {
        let mut cfg = base.clone();
        cfg.protocol = ProtocolConfig::new(kind);
        labelled.push((kind.name().to_string(), cfg));
    }
    let jobs = effective_jobs(parse_jobs(std::env::args()));
    let reports: Vec<ReplayReport> =
        parallel::map_indexed(&labelled, jobs, |(_, cfg)| run_on(cfg, &trace, &mods));
    for ((label, _), r) in labelled.iter().zip(&reports) {
        println!(
            "{:<20}{:>12}{:>12}{:>14}{:>12}",
            label, r.raw.total_messages, r.raw.ims, r.raw.stale_hits, r.raw.replies_200
        );
    }
    println!(
        "\nExpected shape: short fixed TTLs pay validations for little gain;\n\
         long fixed TTLs buy silence with thousands of stale hits; adaptive\n\
         TTL sits on the efficient frontier (few stale hits, moderate IMS).\n\
         Invalidation is the only point with zero staleness; at this sweep's\n\
         deliberately brisk churn (2-day lifetimes) it pays invalidation\n\
         traffic for that guarantee — §3's crossover — while at the paper's\n\
         measured lifetimes (14–50 days, Tables 3/4) it is outright cheapest."
    );
}
