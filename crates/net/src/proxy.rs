//! The TCP caching proxy.

use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wcc_cache::{CacheStore, ReplacementPolicy};
use wcc_core::{ProtocolConfig, ProxyAction, ProxyPolicy};
use wcc_obs::{Histogram, Registry};
use wcc_proto::{
    encode, FrameReader, GetRequest, HttpMsg, HttpMsgRef, ReplyStatusRef, RequestId, WireError,
};
use wcc_types::{ByteSize, ClientId, DocMeta, SimTime, Url, WallClock};

/// How a [`NetProxy::fetch`] was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Served straight from the cache, no origin contact.
    CacheHit,
    /// Validated with `If-Modified-Since`; origin said `304`.
    Validated,
    /// Transferred from the origin (`200`).
    Fetched,
}

/// The result of one fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// How the request was satisfied.
    pub kind: FetchKind,
    /// Whether a cached entry existed when the request arrived.
    pub had_entry: bool,
    /// Metadata of the delivered version.
    pub meta: DocMeta,
}

/// Counters maintained by the proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetProxyCounters {
    /// Fetches served.
    pub requests: u64,
    /// Fetches that found a cached entry.
    pub hits: u64,
    /// Plain `GET`s sent upstream.
    pub gets_sent: u64,
    /// `If-Modified-Since` requests sent upstream.
    pub ims_sent: u64,
    /// `200` replies received.
    pub replies_200: u64,
    /// `304` replies received.
    pub replies_304: u64,
    /// `INVALIDATE`s received on the push channel.
    pub invalidations_received: u64,
    /// Bulk `INVALIDATE <server>`s received.
    pub bulk_invalidations_received: u64,
    /// Piggybacked invalidations received (PSI).
    pub piggybacked_received: u64,
}

struct ProxyState {
    policy: Mutex<(ProxyPolicy, CacheStore, RequestId)>,
    counters: Mutex<NetProxyCounters>,
    /// Wall-time latency of whole [`NetProxy::fetch`] calls (hits included).
    fetch_latency: Mutex<Histogram>,
    shutdown: AtomicBool,
}

impl ProxyState {
    /// Renders the proxy's registry as Prometheus text exposition.
    fn render_metrics(&self) -> String {
        let node = [("node", "proxy")];
        let c = *self.counters.lock();
        let mut r = Registry::default();
        r.set_counter("wcc_requests_total", "Fetches served.", &node, c.requests);
        r.set_counter(
            "wcc_hits_total",
            "Fetches that found a cached entry.",
            &node,
            c.hits,
        );
        r.set_counter(
            "wcc_misses_total",
            "Fetches that found no cached entry.",
            &node,
            c.requests - c.hits,
        );
        r.set_counter(
            "wcc_gets_sent_total",
            "Plain GETs sent upstream.",
            &node,
            c.gets_sent,
        );
        r.set_counter(
            "wcc_ims_sent_total",
            "If-Modified-Since requests sent upstream.",
            &node,
            c.ims_sent,
        );
        r.set_counter(
            "wcc_replies_200_total",
            "200 replies received.",
            &node,
            c.replies_200,
        );
        r.set_counter(
            "wcc_replies_304_total",
            "304 replies received.",
            &node,
            c.replies_304,
        );
        r.set_counter(
            "wcc_invalidations_total",
            "INVALIDATEs received on the push channel.",
            &node,
            c.invalidations_received,
        );
        r.set_counter(
            "wcc_bulk_invalidations_total",
            "Bulk INVALIDATE <server> messages received.",
            &node,
            c.bulk_invalidations_received,
        );
        r.set_counter(
            "wcc_piggybacked_total",
            "Piggybacked invalidations received (PSI).",
            &node,
            c.piggybacked_received,
        );
        r.set_gauge(
            "wcc_cached_entries",
            "Entries currently cached.",
            &node,
            self.policy.lock().1.len() as u64,
        );
        r.set_histogram(
            "wcc_fetch_latency_seconds",
            "Wall-time fetch latency, cache hits included.",
            &node,
            &self.fetch_latency.lock(),
        );
        r.render()
    }
}

/// A running caching proxy. Shuts down its invalidation listener on drop.
pub struct NetProxy {
    origin: SocketAddr,
    metrics_addr: SocketAddr,
    state: Arc<ProxyState>,
    inval_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetProxy")
            .field("origin", &self.origin)
            .finish()
    }
}

impl NetProxy {
    /// Connects to `origin`, registers the invalidation push channel for
    /// `partition` of `partitions`, and returns the running proxy.
    ///
    /// # Errors
    ///
    /// Returns any socket error from the registration handshake.
    pub fn spawn(
        origin: SocketAddr,
        cfg: &ProtocolConfig,
        partition: u32,
        partitions: u32,
        capacity: ByteSize,
    ) -> std::io::Result<NetProxy> {
        let state = Arc::new(ProxyState {
            policy: Mutex::new((
                ProxyPolicy::new(cfg),
                CacheStore::new(capacity, ReplacementPolicy::ExpiredFirstLru),
                RequestId::default(),
            )),
            counters: Mutex::new(NetProxyCounters::default()),
            fetch_latency: Mutex::new(Histogram::default()),
            shutdown: AtomicBool::new(false),
        });

        // Metrics endpoint: the proxy makes only outbound connections for
        // protocol traffic, so scrapes get their own loopback listener.
        let metrics_listener = TcpListener::bind("127.0.0.1:0")?;
        let metrics_addr = metrics_listener.local_addr()?;
        let metrics_state = Arc::clone(&state);
        let metrics_thread = std::thread::spawn(move || {
            for stream in metrics_listener.incoming() {
                if metrics_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = serve_metrics(&metrics_state, stream);
            }
        });

        // Invalidation channel: proxy-initiated persistent connection.
        let mut channel = TcpStream::connect(origin)?;
        channel.set_read_timeout(Some(Duration::from_millis(50)))?;
        channel.write_all(&encode(&HttpMsg::Hello {
            partition,
            partitions,
        }))?;
        channel.flush()?;

        let listener_state = Arc::clone(&state);
        let inval_thread = std::thread::spawn(move || {
            let mut writer = match channel.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            // Zero-copy frame reader: invalidations are decoded straight
            // from the channel buffer; nothing on this path retains bytes,
            // so no message is ever copied out.
            let mut reader = FrameReader::new(channel);
            loop {
                if listener_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match reader.next_msg() {
                    Ok(HttpMsgRef::Invalidate { url, client }) => {
                        let deleted_hits = {
                            let mut guard = listener_state.policy.lock();
                            let (policy, cache, _) = &mut *guard;
                            policy.on_invalidate(url, client, cache)
                        };
                        listener_state.counters.lock().invalidations_received += 1;
                        let ack = HttpMsg::InvalAck {
                            url,
                            client,
                            cache_hits: deleted_hits.unwrap_or(0),
                        };
                        if writer.write_all(&encode(&ack)).is_err() {
                            break;
                        }
                        let _ = writer.flush();
                    }
                    Ok(HttpMsgRef::InvalidateServer { server }) => {
                        {
                            let mut guard = listener_state.policy.lock();
                            let (policy, cache, _) = &mut *guard;
                            policy.on_invalidate_server(server, cache);
                        }
                        listener_state.counters.lock().bulk_invalidations_received += 1;
                        let ack = HttpMsg::InvalidateServerAck { server };
                        if writer.write_all(&encode(&ack)).is_err() {
                            break;
                        }
                        let _ = writer.flush();
                    }
                    Ok(
                        HttpMsgRef::Get(_)
                        | HttpMsgRef::Reply(_)
                        | HttpMsgRef::InvalAck { .. }
                        | HttpMsgRef::InvalidateServerAck { .. }
                        | HttpMsgRef::Hello { .. }
                        | HttpMsgRef::MetricsGet
                        | HttpMsgRef::Notify { .. },
                    ) => break, // protocol violation
                    Err(WireError::Closed) => break,
                    Err(WireError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(NetProxy {
            origin,
            metrics_addr,
            state,
            inval_thread: Some(inval_thread),
            metrics_thread: Some(metrics_thread),
        })
    }

    /// Current counters.
    pub fn counters(&self) -> NetProxyCounters {
        *self.state.counters.lock()
    }

    /// The loopback address answering `GET /metrics` for this proxy.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The current Prometheus text exposition — the same body `GET
    /// /metrics` on [`NetProxy::metrics_addr`] returns.
    pub fn metrics_text(&self) -> String {
        self.state.render_metrics()
    }

    /// Serves one browser request for `url` on behalf of `client`, at
    /// logical time `now`.
    ///
    /// # Errors
    ///
    /// Returns socket errors from the upstream fetch; cache hits are
    /// infallible.
    pub fn fetch(&self, client: ClientId, url: Url, now: SimTime) -> std::io::Result<FetchOutcome> {
        let clock = WallClock::start();
        let outcome = self.fetch_inner(client, url, now);
        self.state
            .fetch_latency
            .lock()
            .record(clock.elapsed().as_micros());
        outcome
    }

    fn fetch_inner(
        &self,
        client: ClientId,
        url: Url,
        now: SimTime,
    ) -> std::io::Result<FetchOutcome> {
        let key = url.scoped(client);
        let mut guard = self.state.policy.lock();
        let (policy, cache, next_req) = &mut *guard;
        self.state.counters.lock().requests += 1;
        let disposition = policy.on_request(key, now, cache);
        if disposition.had_entry {
            self.state.counters.lock().hits += 1;
        }
        let report_hits = disposition.report_hits;
        let mut ims = match disposition.action {
            ProxyAction::ServeFromCache => {
                let meta = cache.peek(key).expect("hit implies entry").meta;
                return Ok(FetchOutcome {
                    kind: FetchKind::CacheHit,
                    had_entry: true,
                    meta,
                });
            }
            ProxyAction::SendGet { ims } => ims,
        };

        // Up to one retry for the 304-races-eviction corner.
        for _attempt in 0..2 {
            let req = *next_req;
            *next_req = next_req.next();
            {
                let mut c = self.state.counters.lock();
                if ims.is_some() {
                    c.ims_sent += 1;
                } else {
                    c.gets_sent += 1;
                }
            }
            let get = HttpMsg::Get(GetRequest {
                req,
                url,
                client,
                ims,
                issued_at: now,
                cache_hits: report_hits,
            });
            let mut stream = TcpStream::connect(self.origin)?;
            stream.write_all(&encode(&get))?;
            stream.flush()?;
            // Zero-copy decode: the proxy retains only document *metadata*
            // (the cache stores no payloads), so the reply body is consumed
            // as a borrow of the receive buffer and never copied out.
            let mut reader = FrameReader::new(stream);
            let reply = reader
                .next_msg()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let HttpMsgRef::Reply(reply) = reply else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "expected a reply",
                ));
            };
            policy.on_volume_grant(key, reply.volume_lease);
            let piggyback = reply.piggyback_urls();
            if !piggyback.is_empty() {
                policy.on_piggyback(&piggyback, client, cache);
                self.state.counters.lock().piggybacked_received += piggyback.len() as u64;
            }
            match reply.status {
                ReplyStatusRef::Ok { meta, .. } => {
                    self.state.counters.lock().replies_200 += 1;
                    policy.on_reply_200(key, meta, reply.lease, now, cache);
                    return Ok(FetchOutcome {
                        kind: FetchKind::Fetched,
                        had_entry: disposition.had_entry,
                        meta,
                    });
                }
                ReplyStatusRef::NotModified => {
                    if policy.on_reply_304(key, reply.lease, now, cache) {
                        self.state.counters.lock().replies_304 += 1;
                        let meta = cache.peek(key).expect("validated entry").meta;
                        return Ok(FetchOutcome {
                            kind: FetchKind::Validated,
                            had_entry: disposition.had_entry,
                            meta,
                        });
                    }
                    // Entry evicted mid-validation: retry as a plain GET.
                    ims = None;
                }
            }
        }
        Err(std::io::Error::other("revalidation race did not resolve"))
    }

    /// Number of entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.state.policy.lock().1.len()
    }
}

impl Drop for NetProxy {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.inval_thread.take() {
            let _ = t.join();
        }
        // Wake the metrics accept loop so it observes the shutdown flag.
        let _ = TcpStream::connect(self.metrics_addr);
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
    }
}

/// Answers one scrape connection (anything else is dropped silently).
fn serve_metrics(state: &Arc<ProxyState>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);
    if matches!(reader.next_msg(), Ok(HttpMsgRef::MetricsGet)) {
        writer.write_all(&crate::scrape::metrics_response(&state.render_metrics()))?;
        writer.flush()?;
    }
    Ok(())
}
