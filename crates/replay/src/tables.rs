//! Formatting that mirrors the paper's tables.

use crate::experiment::ReplayReport;
use std::fmt::Write as _;
use wcc_simnet::Summary;
use wcc_types::SimDuration;

fn fmt_quantile(s: &Summary, q: f64) -> String {
    s.quantile(q)
        .map(|d| format!("{:.1} ms", d.as_secs_f64() * 1e3))
        .unwrap_or_else(|| "-".to_string())
}

fn fmt_latency(s: &Summary) -> (String, String, String) {
    let f = |d: Option<SimDuration>| match d {
        Some(d) => format!("{:.1} ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    };
    (f(s.mean()), f(s.min()), f(s.max()))
}

/// Renders one block of Tables 3/4: the three protocols side by side for
/// one trace replay.
///
/// Row names follow the paper exactly, with two additional audit rows
/// (stale hits measured exactly rather than estimated, and the hit ratio).
///
/// # Panics
///
/// Panics if `trio` is empty.
pub fn format_trio_block(trio: &[ReplayReport]) -> String {
    assert!(!trio.is_empty(), "need at least one report");
    let head = &trio[0];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Trace {}, {} requests, {} files modified (mean lifetime {})",
        head.trace, head.raw.requests, head.files_modified, head.mean_lifetime
    );
    let _ = write!(out, "{:<22}", "");
    for r in trio {
        let _ = write!(out, "{:>18}", r.protocol.name());
    }
    let _ = writeln!(out);

    let mut row = |name: &str, f: &dyn Fn(&ReplayReport) -> String| {
        let _ = write!(out, "{name:<22}");
        for r in trio {
            let _ = write!(out, "{:>18}", f(r));
        }
        let _ = writeln!(out);
    };

    row("Hits", &|r| r.raw.hits.to_string());
    row("GET Requests", &|r| r.raw.gets.to_string());
    row("If-Modified-Since", &|r| r.raw.ims.to_string());
    row("Reply 200", &|r| r.raw.replies_200.to_string());
    row("Reply 304", &|r| r.raw.replies_304.to_string());
    row("Invalidations", &|r| r.raw.invalidations.to_string());
    row("Total Messages", &|r| r.raw.total_messages.to_string());
    row("Messages Bytes", &|r| r.raw.total_bytes.to_string());
    row("Avg. Latency", &|r| fmt_latency(&r.raw.latency).0);
    row("Min Latency", &|r| fmt_latency(&r.raw.latency).1);
    row("Max Latency", &|r| fmt_latency(&r.raw.latency).2);
    row("p50 Latency", &|r| fmt_quantile(&r.raw.latency, 0.5));
    row("p90 Latency", &|r| fmt_quantile(&r.raw.latency, 0.9));
    row("p99 Latency", &|r| fmt_quantile(&r.raw.latency, 0.99));
    row("p99.9 Latency", &|r| fmt_quantile(&r.raw.latency, 0.999));
    row("Server CPU", &|r| {
        format!("{:.1}%", r.raw.server_cpu * 100.0)
    });
    row("Disk RW/s", &|r| {
        format!(
            "{:.2};{:.2}",
            r.raw.disk_reads_per_sec, r.raw.disk_writes_per_sec
        )
    });
    row("Stale hits (exact)", &|r| r.raw.stale_hits.to_string());
    row("Hit ratio", &|r| {
        format!("{:.1}%", r.raw.hit_ratio() * 100.0)
    });
    out
}

/// Renders a replay's measurements as a Prometheus text exposition — the
/// same registry format the TCP prototype serves on `GET /metrics`, so sim
/// results and prototype scrapes can be diffed or ingested by one pipeline.
pub fn prometheus_snapshot(report: &ReplayReport) -> String {
    let r = &report.raw;
    let protocol = report.protocol.name();
    let labels = [("protocol", protocol), ("trace", report.trace.as_str())];
    let mut reg = wcc_obs::Registry::default();
    reg.set_counter(
        "wcc_requests_total",
        "Client requests replayed.",
        &labels,
        r.requests,
    );
    reg.set_counter(
        "wcc_hits_total",
        "Requests served from a proxy cache.",
        &labels,
        r.hits,
    );
    reg.set_counter(
        "wcc_gets_total",
        "Plain GETs sent to origins.",
        &labels,
        r.gets,
    );
    reg.set_counter(
        "wcc_ims_total",
        "If-Modified-Since requests sent to origins.",
        &labels,
        r.ims,
    );
    reg.set_counter(
        "wcc_replies_200_total",
        "200 replies.",
        &labels,
        r.replies_200,
    );
    reg.set_counter(
        "wcc_replies_304_total",
        "304 replies.",
        &labels,
        r.replies_304,
    );
    reg.set_counter(
        "wcc_invalidations_total",
        "INVALIDATE messages sent.",
        &labels,
        r.invalidations,
    );
    reg.set_counter(
        "wcc_messages_total",
        "All protocol messages.",
        &labels,
        r.total_messages,
    );
    reg.set_counter(
        "wcc_message_bytes_total",
        "Accounted bytes of all protocol messages.",
        &labels,
        r.total_bytes.as_u64(),
    );
    reg.set_counter(
        "wcc_stale_hits_total",
        "Cache hits that served a stale version (exact audit count).",
        &labels,
        r.stale_hits,
    );
    reg.set_gauge(
        "wcc_sitelist_entries",
        "Site-list entries at end of replay.",
        &labels,
        r.sitelist.total_entries,
    );
    reg.set_gauge(
        "wcc_sitelist_storage_bytes",
        "Estimated site-list memory at end of replay.",
        &labels,
        r.sitelist.storage.as_u64(),
    );
    reg.set_histogram(
        "wcc_request_latency_seconds",
        "Client-observed request latency (simulated time).",
        &labels,
        r.latency.histogram(),
    );
    reg.set_histogram(
        "wcc_invalidation_time_seconds",
        "Write-to-completion invalidation time (simulated time).",
        &labels,
        r.inval_time.histogram(),
    );
    reg.render()
}

/// Renders one column of Table 5 (invalidation costs) from an invalidation
/// replay.
pub fn format_table5_column(report: &ReplayReport) -> String {
    let (avg_list, max_list) = report.raw.modified_list_stats();
    let inval = &report.raw.inval_time;
    let fmt_ms = |d: Option<SimDuration>| match d {
        Some(d) => format!("{:.1} ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    };
    format!(
        "{name} ({mods} files modified)\n\
         Storage              {storage}\n\
         Avg. SiteList        {avg_list:.1}\n\
         Max. SiteList        {max_list}\n\
         Avg. Invalidation Time {avg_t}\n\
         p99 Invalidation Time {p99_t}\n\
         Max. Invalidation Time {max_t}\n\
         Site-list entries (end) {entries}\n",
        name = report.trace,
        mods = report.files_modified,
        storage = report.raw.sitelist.storage,
        avg_list = avg_list,
        max_list = max_list,
        avg_t = fmt_ms(inval.mean()),
        p99_t = fmt_ms(inval.p99()),
        max_t = fmt_ms(inval.max()),
        entries = report.raw.sitelist.total_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_trio, ExperimentConfig};
    use wcc_traces::TraceSpec;

    #[test]
    fn trio_block_contains_all_rows_and_columns() {
        let trio = run_trio(
            &ExperimentConfig::builder(TraceSpec::epa().scaled_down(400))
                .seed(2)
                .build(),
        );
        let block = format_trio_block(&trio);
        for needle in [
            "Hits",
            "GET Requests",
            "If-Modified-Since",
            "Reply 200",
            "Reply 304",
            "Invalidations",
            "Total Messages",
            "Messages Bytes",
            "Avg. Latency",
            "p50 Latency",
            "p90 Latency",
            "p99 Latency",
            "p99.9 Latency",
            "Server CPU",
            "Disk RW/s",
            "adaptive-ttl",
            "poll-every-time",
            "invalidation",
        ] {
            assert!(block.contains(needle), "missing row {needle}:\n{block}");
        }
    }

    #[test]
    fn table5_column_mentions_storage_and_times() {
        let trio = run_trio(
            &ExperimentConfig::builder(TraceSpec::sdsc().scaled_down(400))
                .seed(2)
                .build(),
        );
        let inval = &trio[2];
        let col = format_table5_column(inval);
        assert!(col.contains("Storage"));
        assert!(col.contains("Invalidation Time"));
        assert!(col.contains("SDSC"));
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn empty_trio_panics() {
        format_trio_block(&[]);
    }

    #[test]
    fn prometheus_snapshot_is_valid_exposition() {
        let trio = run_trio(
            &ExperimentConfig::builder(TraceSpec::epa().scaled_down(400))
                .seed(2)
                .build(),
        );
        for report in &trio {
            let text = prometheus_snapshot(report);
            wcc_obs::validate_exposition(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", report.protocol));
            assert!(text.contains("wcc_request_latency_seconds_bucket"));
            assert!(text.contains(&format!("protocol=\"{}\"", report.protocol.name())));
        }
    }
}
