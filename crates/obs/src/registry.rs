//! A metrics registry rendered in the Prometheus text exposition format
//! (version 0.0.4), plus a strict-enough validator used by the tests.
//!
//! The registry is a snapshot store, not a live instrument: callers own
//! their counters (protocol state stays where it is) and publish values
//! into the registry right before rendering. That keeps the hot paths free
//! of shared atomics and makes renders deterministic — series are keyed in
//! a `BTreeMap`, so output order never depends on insertion order.

use crate::hist::Histogram;
use core::fmt::Write as _;
use std::collections::BTreeMap;

#[derive(Clone)]
enum Value {
    Single(u64),
    Hist {
        /// `(exclusive upper bound µs, cumulative count)`.
        buckets: Vec<(u64, u64)>,
        sum_us: u64,
        count: u64,
    },
}

#[derive(Clone)]
struct Family {
    help: &'static str,
    kind: &'static str,
    /// label-string (e.g. `{node="proxy0"}` or empty) → value.
    series: BTreeMap<String, Value>,
}

/// A named counter/gauge/histogram snapshot store.
///
/// # Examples
///
/// ```
/// use wcc_obs::Registry;
///
/// let mut r = Registry::default();
/// r.set_counter("wcc_cache_hits_total", "Cache hits.", &[], 7);
/// let text = r.render();
/// assert!(text.contains("# TYPE wcc_cache_hits_total counter"));
/// assert!(text.contains("wcc_cache_hits_total 7"));
/// wcc_obs::validate_exposition(&text).unwrap();
/// ```
#[derive(Default, Clone)]
pub struct Registry {
    families: BTreeMap<&'static str, Family>,
}

fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

/// Splices extra labels (e.g. `le`) into a rendered label string.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &labels[..labels.len() - 1])
    }
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

impl Registry {
    fn family(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: &'static str,
    ) -> &mut Family {
        self.families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        })
    }

    /// Publishes a monotonically increasing counter value.
    pub fn set_counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        self.family(name, help, "counter")
            .series
            .insert(label_string(labels), Value::Single(value));
    }

    /// Publishes a point-in-time gauge value.
    pub fn set_gauge(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        self.family(name, help, "gauge")
            .series
            .insert(label_string(labels), Value::Single(value));
    }

    /// Publishes a latency histogram (µs-valued; rendered in seconds).
    pub fn set_histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        hist: &Histogram,
    ) {
        self.family(name, help, "histogram").series.insert(
            label_string(labels),
            Value::Hist {
                buckets: hist.cumulative_buckets(),
                sum_us: hist.sum(),
                count: hist.count(),
            },
        );
    }

    /// Renders the whole registry as Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (labels, value) in &family.series {
                match value {
                    Value::Single(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Value::Hist {
                        buckets,
                        sum_us,
                        count,
                    } => {
                        for (ub_us, cum) in buckets {
                            let le = with_label(labels, "le", &format!("{}", seconds(*ub_us)));
                            let _ = writeln!(out, "{name}_bucket{le} {cum}");
                        }
                        let inf = with_label(labels, "le", "+Inf");
                        let _ = writeln!(out, "{name}_bucket{inf} {count}");
                        let _ = writeln!(out, "{name}_sum{labels} {}", seconds(*sum_us));
                        let _ = writeln!(out, "{name}_count{labels} {count}");
                    }
                }
            }
        }
        out
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_body(body: &str) -> bool {
    // k="v" pairs, comma-separated; values contain no raw quotes here.
    body.split(',').all(|pair| {
        let Some((k, v)) = pair.split_once('=') else {
            return false;
        };
        valid_metric_name(k) && v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
    })
}

/// Checks that `text` is well-formed Prometheus text exposition: every
/// sample line parses, every sample's family has a preceding `# TYPE`, and
/// every histogram's `+Inf` bucket equals its `_count`. Returns the first
/// problem found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut inf_buckets: BTreeMap<String, f64> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line}", no + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(err("bad metric name in TYPE"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(err("unknown TYPE"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(err("bad metric name in HELP"));
                    }
                }
                _ => return Err(err("unknown comment keyword")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').ok_or_else(|| err("no value"))?;
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(err("unparseable value"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unclosed labels"))?;
                if !valid_label_body(body) {
                    return Err(err("bad label syntax"));
                }
                (n, Some(body))
            }
            None => (series, None),
        };
        if !valid_metric_name(name) {
            return Err(err("bad metric name"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(err("sample with no preceding # TYPE"));
        }
        // Track histogram +Inf vs _count consistency, keyed by the series'
        // non-le labels.
        if types.get(family).map(String::as_str) == Some("histogram") {
            let base_labels: String = labels
                .unwrap_or("")
                .split(',')
                .filter(|pair| !pair.starts_with("le="))
                .collect::<Vec<_>>()
                .join(",");
            let key = format!("{family}{{{base_labels}}}");
            let parsed = value.parse::<f64>().unwrap_or(f64::INFINITY);
            if name.ends_with("_bucket") && labels.is_some_and(|l| l.contains("le=\"+Inf\"")) {
                inf_buckets.insert(key, parsed);
            } else if name.ends_with("_count") {
                counts.insert(key, parsed);
            }
        }
    }
    for (key, count) in &counts {
        match inf_buckets.get(key) {
            Some(inf) if inf == count => {}
            Some(_) => return Err(format!("{key}: +Inf bucket != _count")),
            None => return Err(format!("{key}: histogram without +Inf bucket")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::default();
        r.set_counter("wcc_hits_total", "Cache hits.", &[("node", "proxy0")], 12);
        r.set_counter("wcc_hits_total", "Cache hits.", &[("node", "proxy1")], 3);
        r.set_gauge("wcc_sitelist_entries", "Live site-list entries.", &[], 44);
        let mut h = Histogram::default();
        for us in [900u64, 1_100, 250_000] {
            h.record(us);
        }
        r.set_histogram("wcc_latency_seconds", "Request latency.", &[], &h);
        r
    }

    #[test]
    fn render_is_valid_and_deterministic() {
        let r = sample_registry();
        let text = r.render();
        validate_exposition(&text).unwrap();
        assert_eq!(text, sample_registry().render());
        assert!(text.contains("# TYPE wcc_hits_total counter"));
        assert!(text.contains("wcc_hits_total{node=\"proxy0\"} 12"));
        assert!(text.contains("wcc_hits_total{node=\"proxy1\"} 3"));
        assert!(text.contains("wcc_sitelist_entries 44"));
        assert!(text.contains("wcc_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wcc_latency_seconds_count 3"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_seconds() {
        let mut h = Histogram::default();
        h.record(1_000_000); // exactly 1 s
        let mut r = Registry::default();
        r.set_histogram("lat", "x", &[], &h);
        let text = r.render();
        // 1 s lands in the [1.015..., 1.048...) µs-range bucket; its bound
        // renders in seconds.
        let bucket_line = text
            .lines()
            .find(|l| l.starts_with("lat_bucket{le=\"1."))
            .unwrap();
        assert!(bucket_line.ends_with(" 1"), "{bucket_line}");
        assert!(text.contains("lat_sum 1"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        for bad in [
            "wcc_hits_total 7\n",                                    // no TYPE
            "# TYPE wcc_hits_total counter\nwcc_hits_total seven\n", // bad value
            "# TYPE m counter\nm{k=\"v\" 1\n",                       // unclosed labels
            "# TYPE m counter\nm{k=v} 1\n",                          // unquoted label value
            "# TYPE 9bad counter\n",                                 // bad name
            "# WAT m counter\n",                                     // unknown keyword
        ] {
            assert!(validate_exposition(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn validator_requires_inf_bucket_matching_count() {
        let mismatched = "\
# TYPE lat histogram
lat_bucket{le=\"+Inf\"} 2
lat_sum 1
lat_count 3
";
        assert!(validate_exposition(mismatched).is_err());
        let missing = "\
# TYPE lat histogram
lat_sum 1
lat_count 3
";
        assert!(validate_exposition(missing).is_err());
    }

    #[test]
    fn labels_render_sorted() {
        let mut r = Registry::default();
        r.set_counter("m", "x", &[("z", "1"), ("a", "2")], 5);
        assert!(r.render().contains("m{a=\"2\",z=\"1\"} 5"));
    }
}
