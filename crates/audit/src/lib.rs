//! Static verification of the strong-consistency invariants.
//!
//! Two engines, both passive:
//!
//! * [`audit`] — the **protocol auditor**: replays a recorded
//!   [`AuditEvent`](wcc_types::AuditEvent) stream (emitted by the replay
//!   harness when [`DeploymentOptions::audit`] is set) and checks the
//!   paper's invariants — staleness-freedom, write completion, site-list
//!   conservation and lease safety — reporting each violation together with
//!   the offending event subsequence.
//! * [`lint`] — the **repo lint engine**: the token-level analyzer from
//!   `wcc-lint` (re-exported here so `wcc_audit::lint::scan_tree` keeps
//!   working), enforcing deny-by-default hygiene rules — no ambient wall
//!   clocks, no `unwrap` in protocol crates, no unordered map iteration
//!   reaching replay-visible output, exhaustive wire-enum dispatch —
//!   driven by the `xtask-lint` binary.
//!
//! [`DeploymentOptions::audit`]: https://docs.rs/wcc-httpsim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wcc_lint as lint;
mod protocol;

pub use protocol::{audit, AuditReport, Check, Expectations, Violation};
