//! A deterministic Zipf sampler over `1..=n` ranks.
//!
//! Web document popularity is famously Zipf-like; the generator uses this
//! both for document choice and for client activity. Implemented with a
//! precomputed CDF and binary search — exact, allocation-free sampling, and
//! no dependency beyond `rand`.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ (k+1)^-s`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wcc_traces::Zipf;
///
/// let zipf = Zipf::new(100, 0.9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; larger `s` skews
    /// mass toward low ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// The number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has exactly one rank (degenerate).
    pub fn is_empty(&self) -> bool {
        false // by construction n > 0; method exists to pair with len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_in_range_and_deterministic() {
        let z = Zipf::new(10, 0.8);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            let y = z.sample(&mut b);
            assert_eq!(x, y);
            assert!(x < 10);
        }
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 19] {
            let emp = counts[k] as f64 / n as f64;
            let expected = z.pmf(k);
            assert!(
                (emp - expected).abs() < 0.01 + expected * 0.1,
                "rank {k}: emp {emp} vs pmf {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
