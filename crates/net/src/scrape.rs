//! The `/metrics` endpoint's raw-HTTP plumbing, shared by every node.
//!
//! The reply deliberately stays outside the [`wcc_proto`] vocabulary: a
//! scrape is observability traffic, answered with one plain `HTTP/1.0`
//! response and a closed connection, exactly what a generic Prometheus
//! scraper (or `curl --http1.0`) expects.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use wcc_proto::{encode, HttpMsg};

/// Prometheus text exposition format version advertised in `Content-Type`.
pub(crate) const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Wraps a rendered exposition in a one-shot `HTTP/1.0 200` response.
pub(crate) fn metrics_response(body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(b"HTTP/1.0 200 OK\r\n");
    let _ = write!(out, "Content-Type: {EXPOSITION_CONTENT_TYPE}\r\n");
    let _ = write!(out, "Content-Length: {}\r\n\r\n", body.len());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Fetches the Prometheus exposition from the node listening at `addr`
/// (an origin/parent service port, or a proxy's
/// [`metrics_addr`](crate::NetProxy::metrics_addr)) and returns the body.
///
/// # Errors
///
/// Returns socket errors, or `InvalidData` if the reply is not a well-formed
/// HTTP response.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&encode(&HttpMsg::MetricsGet))?;
    stream.flush()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "missing header terminator")
    })?;
    if !head.starts_with("HTTP/1.0 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected status: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_parseable_http() {
        let body = "# HELP x y\n# TYPE x counter\nx 1\n";
        let bytes = metrics_response(body);
        let text = String::from_utf8(bytes).unwrap();
        let (head, got) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert_eq!(got, body);
    }
}
