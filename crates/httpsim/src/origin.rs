//! The pseudo-server: origin Web server + Harvest accelerator in one node.

use crate::cost::CostModel;
use crate::deployment::{ChangeDetection, InvalSendMode};
use crate::proposer::Proposer;
use crate::SimMsg;
use wcc_core::{HitMeter, ServerConsistency};
use wcc_obs::{invalidation_span, Phase, SpanKind, Tracer};
use wcc_proto::{BatchEntry, CoordMsg, GetRequest, HttpMsg, Message, Reply, ReplyStatus};
use wcc_simnet::{Ctx, Node, Summary};
use wcc_types::{
    AuditEvent, Body, ByteSize, ClientId, DocMeta, FxHashMap, InvalBatchConfig, NodeId, ServerId,
    SimDuration, SimTime, Url,
};

/// Timer token for the recovery bulk-invalidation retry loop. Per-document
/// retry timers use the document index (a `u32`) widened to `u64`, so the
/// maximum value can never collide.
const BULK_RETRY_TOKEN: u64 = u64::MAX;

/// Timer token for the batched proposer's age-bound flush. Like
/// [`BULK_RETRY_TOKEN`], far outside the `u32` document-index range.
const BATCH_FLUSH_TOKEN: u64 = u64::MAX - 1;

/// Counters the origin maintains for the report (Tables 3–5 inputs).
#[derive(Debug, Default, Clone)]
pub struct OriginCounters {
    /// Plain `GET` requests received.
    pub gets: u64,
    /// `If-Modified-Since` requests received.
    pub ims: u64,
    /// `200` replies sent.
    pub replies_200: u64,
    /// `304` replies sent.
    pub replies_304: u64,
    /// `INVALIDATE <url>` messages sent (including retries).
    pub invalidations_sent: u64,
    /// Of those, retransmissions.
    pub invalidation_retries: u64,
    /// Bulk `INVALIDATE <server>` messages sent after recovery.
    pub bulk_invalidations: u64,
    /// Invalidation acknowledgements received.
    pub acks: u64,
    /// Modifier check-ins processed.
    pub notifies: u64,
    /// Disk reads (accelerator memory-cache misses).
    pub disk_reads: u64,
    /// Disk writes (request log + new-site recovery-list appends).
    pub disk_writes: u64,
    /// Wire `InvalidateBatch` messages sent by the proposer.
    pub inval_batches: u64,
    /// `(document, client)` entries carried inside those batches. The wire
    /// message count is `invalidations_sent - batched_entries +
    /// inval_batches` — identical to `invalidations_sent` when batching is
    /// off.
    pub batched_entries: u64,
    /// Bytes of protocol messages sent by the server (excludes acks,
    /// notifies and coordinator traffic, matching the paper's accounting).
    pub bytes_sent: ByteSize,
    /// Invalidation fan-outs abandoned after the retry budget.
    pub gave_up: u64,
    /// Modifications detected lazily by the browser-based mechanism.
    pub deferred_detections: u64,
}

/// A tiny LRU of documents held in the accelerator's main-memory cache
/// (its original purpose: "keeping a main memory cache of URL documents").
#[derive(Debug)]
struct MemCache {
    budget: u64,
    used: u64,
    seq: u64,
    entries: FxHashMap<u32, (u64, u64)>, // doc -> (last-use seq, scaled size)
    order: std::collections::BTreeSet<(u64, u32)>,
}

impl MemCache {
    fn new(budget: ByteSize) -> Self {
        MemCache {
            budget: budget.as_u64(),
            used: 0,
            seq: 0,
            entries: FxHashMap::default(),
            order: std::collections::BTreeSet::new(),
        }
    }

    /// Returns `true` on a hit; on a miss, admits the document (evicting
    /// LRU entries as needed).
    fn access(&mut self, doc: u32, scaled_size: u64) -> bool {
        self.seq += 1;
        if let Some((old_seq, _)) = self.entries.get_mut(&doc).map(|e| (e.0, e.1)) {
            self.order.remove(&(old_seq, doc));
            self.order.insert((self.seq, doc));
            self.entries.get_mut(&doc).expect("present").0 = self.seq;
            return true;
        }
        if scaled_size > self.budget {
            return false; // uncacheable; always a disk read
        }
        while self.used + scaled_size > self.budget {
            let &(victim_seq, victim_doc) = self
                .order
                .iter()
                .next()
                .expect("over budget implies nonempty");
            self.order.remove(&(victim_seq, victim_doc));
            let (_, sz) = self.entries.remove(&victim_doc).expect("indexed");
            self.used -= sz;
        }
        self.entries.insert(doc, (self.seq, scaled_size));
        self.order.insert((self.seq, doc));
        self.used += scaled_size;
        false
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }
}

/// The pseudo-server node.
///
/// Wired up by [`Deployment`](crate::Deployment); not usually constructed
/// directly.
#[derive(Debug)]
pub struct OriginNode {
    server: ServerId,
    consistency: ServerConsistency,
    doc_sizes: Vec<ByteSize>,
    /// Current trace-time mtimes.
    versions: Vec<SimTime>,
    /// (doc, trace time) touch log — the staleness oracle's ground truth.
    touch_log: Vec<(u32, SimTime)>,
    mem_cache: MemCache,
    costs: CostModel,
    /// Proxy node for each partition index.
    pub(crate) proxies: Vec<NodeId>,
    send_mode: InvalSendMode,
    detection: ChangeDetection,
    /// Versions the accelerator has already invalidated for (browser-based
    /// detection compares against this on each request).
    acked_versions: Vec<SimTime>,
    pub(crate) sender: Option<NodeId>,
    coordinator: Option<NodeId>,
    retry_interval: SimDuration,
    max_retries: u32,
    retry_counts: FxHashMap<u32, u32>,
    /// Proxy nodes that have not yet acknowledged the recovery-time bulk
    /// `INVALIDATE <server-addr>`; re-sent on a timer until empty. A
    /// partition at recovery time would otherwise swallow the bulk message
    /// and leave those proxies promising freshness for documents modified
    /// during the outage.
    recovery_unacked: Vec<NodeId>,
    recovery_attempts: u32,
    prev_window_end: SimTime,
    /// The batched invalidation proposer (None: classic per-write fan-out).
    proposer: Option<Proposer>,
    /// Trace time each in-flight write's fan-out opened, for the
    /// write-completion summary. Earliest write wins when a coalesced
    /// round spans several modifications of the same document.
    write_open: FxHashMap<Url, SimTime>,
    /// Wall time from a write's first fan-out to its last ack.
    pub(crate) write_completion: Summary,
    /// Wall time spent sending each modification's full invalidation batch
    /// (synchronous mode; the decoupled sender keeps its own).
    pub(crate) inval_time: Summary,
    /// §7 hit metering: server-side tally of served requests plus hits
    /// reported by the caches.
    pub(crate) meter: HitMeter,
    pub(crate) counters: OriginCounters,
    /// Audit-event log, recorded only when the deployment enables auditing.
    audit: Option<Vec<AuditEvent>>,
    /// Span recorder (disabled unless the deployment enables tracing;
    /// recording never feeds back into protocol state).
    pub(crate) tracer: Tracer,
}

impl OriginNode {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring DeploymentOptions
    pub(crate) fn new(
        server: ServerId,
        consistency: ServerConsistency,
        doc_sizes: Vec<ByteSize>,
        costs: CostModel,
        send_mode: InvalSendMode,
        detection: ChangeDetection,
        mem_cache_budget: ByteSize,
        retry_interval: SimDuration,
        max_retries: u32,
        inval_batch: Option<InvalBatchConfig>,
    ) -> Self {
        let n = doc_sizes.len();
        OriginNode {
            server,
            consistency,
            doc_sizes,
            versions: vec![SimTime::ZERO; n],
            // Construction-time scaffolding, not per-event work.
            touch_log: Vec::new(), // xtask-lint: allow(hot-loop-alloc)
            mem_cache: MemCache::new(mem_cache_budget),
            costs,
            proxies: Vec::new(), // xtask-lint: allow(hot-loop-alloc)
            send_mode,
            detection,
            acked_versions: vec![SimTime::ZERO; n],
            sender: None,
            coordinator: None,
            retry_interval,
            max_retries,
            retry_counts: FxHashMap::default(),
            recovery_unacked: Vec::new(), // xtask-lint: allow(hot-loop-alloc)
            recovery_attempts: 0,
            prev_window_end: SimTime::ZERO,
            proposer: inval_batch.map(Proposer::new),
            write_open: FxHashMap::default(),
            write_completion: Summary::default(),
            inval_time: Summary::default(),
            meter: HitMeter::new(),
            counters: OriginCounters::default(),
            audit: None,
            tracer: Tracer::disabled(),
        }
    }

    /// The span recorder (for trace-log collection).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub(crate) fn set_coordinator(&mut self, coord: NodeId) {
        self.coordinator = Some(coord);
    }

    pub(crate) fn enable_audit(&mut self) {
        self.audit = Some(Vec::new()); // xtask-lint: allow(hot-loop-alloc)
    }

    /// The audit-event log (empty slice when auditing is disabled).
    pub fn audit_log(&self) -> &[AuditEvent] {
        self.audit.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, ev: AuditEvent) {
        if let Some(log) = self.audit.as_mut() {
            log.push(ev);
        }
    }

    /// Runs `on_modify` and records the fan-out decision: `fresh` is what
    /// the site list contributed this time, `resent` the still-unacked
    /// leftovers from earlier fan-outs that ride along.
    fn audited_modify(&mut self, url: Url, version: SimTime, now: SimTime) -> Vec<ClientId> {
        let pending_before = if self.audit.is_some() {
            self.consistency.pending_for(url)
        } else {
            // Audit-only path; an empty Vec performs no allocation.
            Vec::new() // xtask-lint: allow(hot-loop-alloc)
        };
        let recipients = self.consistency.on_modify(url, version);
        if self.audit.is_some() {
            let (mut fresh, mut resent) = (Vec::new(), Vec::new()); // xtask-lint: allow(hot-loop-alloc)
            for &c in &recipients {
                if pending_before.binary_search(&c).is_ok() {
                    resent.push(c);
                } else {
                    fresh.push(c);
                }
            }
            self.record(AuditEvent::ModifyFanout {
                url,
                version,
                fresh,
                resent,
                at: now,
            });
        }
        recipients
    }

    /// The server-side protocol state (site lists, pending invalidations).
    pub fn consistency(&self) -> &ServerConsistency {
        &self.consistency
    }

    /// Origin counters.
    pub fn counters(&self) -> &OriginCounters {
        &self.counters
    }

    /// Wall time per synchronous invalidation batch.
    pub fn inval_time(&self) -> &Summary {
        &self.inval_time
    }

    /// The §7 hit meter.
    pub fn meter(&self) -> &HitMeter {
        &self.meter
    }

    /// The touch log: `(doc, trace time)` pairs, in order. This is the
    /// staleness oracle the replay harness audits serves against.
    pub fn touch_log(&self) -> &[(u32, SimTime)] {
        &self.touch_log
    }

    fn current_meta(&self, doc: u32) -> DocMeta {
        DocMeta::new(self.doc_sizes[doc as usize], self.versions[doc as usize])
    }

    fn proxy_of(&self, client: ClientId) -> NodeId {
        *client.assigned(&self.proxies)
    }

    /// The batched proposer (None when batching is off).
    pub fn proposer(&self) -> Option<&Proposer> {
        self.proposer.as_ref()
    }

    /// The write-completion latency summary (first fan-out to last ack).
    pub fn write_completion(&self) -> &Summary {
        &self.write_completion
    }

    fn handle_get(&mut self, from: NodeId, get: GetRequest, ctx: &mut Ctx<'_, SimMsg>) {
        ctx.consume(self.costs.request_parse + self.costs.log_write_cpu);
        self.counters.disk_writes += 1; // request log append
                                        // Browser-based change detection: a request for this document makes
                                        // the accelerator compare the file's mtime against the version it
                                        // last invalidated for, and fan out first if they differ.
        if self.detection == ChangeDetection::BrowserBased {
            let doc = get.url.doc() as usize;
            if self.versions[doc] > self.acked_versions[doc] {
                self.acked_versions[doc] = self.versions[doc];
                let at = self.versions[doc];
                let recipients = self.audited_modify(get.url, at, ctx.now());
                self.counters.deferred_detections += 1;
                self.fan_out(get.url, recipients, false, ctx);
            }
        }
        if get.is_ims() {
            self.counters.ims += 1;
        } else {
            self.counters.gets += 1;
        }
        self.tracer.record(
            ctx.now(),
            SpanKind::Request,
            get.req.get(),
            Phase::Origin,
            get.url,
            Some(get.client),
            Some(get.req.get()),
        );
        let doc = get.url.doc();
        let meta = self.current_meta(doc);
        self.meter.record_request(get.url);
        self.meter.record_report(get.url, get.cache_hits);
        let grant = self
            .consistency
            .on_get(get.url, get.client, get.ims, meta, get.issued_at);
        if grant.new_site_disk_write {
            self.counters.disk_writes += 1; // persistent ever-seen list
            ctx.consume(self.costs.log_write_cpu);
        }
        if let (true, Some(lease)) = (grant.register, grant.lease) {
            self.record(AuditEvent::Register {
                url: get.url,
                client: get.client,
                lease,
                at: ctx.now(),
            });
        }
        let status = if grant.send_body {
            let scaled = meta.size().as_u64() / self.costs.doc_scale.max(1);
            if !self.mem_cache.access(doc, scaled) {
                self.counters.disk_reads += 1;
                ctx.consume(self.costs.disk_read_cpu);
            }
            ctx.consume(self.costs.serve_200_cpu(meta.size()));
            self.counters.replies_200 += 1;
            ReplyStatus::Ok(Body::synthetic(meta, self.costs.doc_scale))
        } else {
            ctx.consume(self.costs.serve_304);
            self.counters.replies_304 += 1;
            ReplyStatus::NotModified
        };
        let reply = HttpMsg::Reply(Reply {
            req: get.req,
            url: get.url,
            client: get.client,
            status,
            lease: grant.lease,
            piggyback: grant.piggyback,
            volume_lease: grant.volume_lease,
        });
        let size = reply.wire_size();
        self.counters.bytes_sent += size;
        ctx.send(from, SimMsg::Net(Message::Http(reply)), size);
    }

    /// Sends (or dispatches) `INVALIDATE <url>` to `recipients`; in
    /// synchronous mode this occupies the server's CPU for the whole batch —
    /// the paper's request-stall phenomenon.
    fn fan_out(
        &mut self,
        url: Url,
        recipients: Vec<ClientId>,
        retry: bool,
        ctx: &mut Ctx<'_, SimMsg>,
    ) {
        if recipients.is_empty() {
            return;
        }
        if !retry {
            // Open the write-completion clock at the first fresh fan-out;
            // coalesced rounds keep the earliest write's start.
            self.write_open.entry(url).or_insert(ctx.now());
        }
        // Fresh fan-out with the proposer active: enqueue instead of
        // sending, and flush when a count/byte threshold trips. The age
        // timer (armed on the empty→non-empty transition) bounds how long
        // a small queue can wait. Retries keep the classic per-client path
        // — they target copies a previous flush already announced.
        if !retry && self.proposer.is_some() {
            let proposer = self.proposer.as_mut().expect("checked above");
            let mut opened = false;
            for &client in &recipients {
                opened |= proposer.enqueue(url, client);
            }
            let max_age = proposer.config().max_age;
            let flush = proposer.should_flush();
            if opened {
                ctx.set_timer(max_age, BATCH_FLUSH_TOKEN);
            }
            if flush {
                self.flush_batches(ctx);
            }
            return;
        }
        if self.audit.is_some() {
            for &client in &recipients {
                self.record(AuditEvent::InvalidateSend {
                    url,
                    client,
                    retry,
                    at: ctx.now(),
                });
            }
        }
        if self.tracer.is_enabled() {
            let span = invalidation_span(url, self.versions[url.doc() as usize]);
            for &client in &recipients {
                self.tracer.record(
                    ctx.now(),
                    SpanKind::Invalidation,
                    span,
                    Phase::Invalidate,
                    url,
                    Some(client),
                    None,
                );
            }
        }
        let n = recipients.len() as u64;
        match self.send_mode {
            InvalSendMode::Synchronous => {
                for client in recipients {
                    let msg = HttpMsg::Invalidate { url, client };
                    let size = msg.wire_size();
                    self.counters.bytes_sent += size;
                    ctx.consume(self.costs.inval_send);
                    ctx.send(self.proxy_of(client), SimMsg::Net(Message::Http(msg)), size);
                }
                self.inval_time
                    .observe(self.costs.inval_send.saturating_mul(n));
            }
            InvalSendMode::Decoupled => {
                let sender = self.sender.expect("decoupled mode requires a sender node");
                ctx.send(
                    sender,
                    SimMsg::Dispatch {
                        url,
                        clients: recipients,
                    },
                    ByteSize::ZERO,
                );
            }
        }
        self.counters.invalidations_sent += n;
        if retry {
            self.counters.invalidation_retries += n;
        }
        // Await acks; retry if they do not arrive.
        ctx.set_timer(self.retry_interval, url.doc() as u64);
    }

    /// Drains the proposer and fans the queue out as one
    /// `InvalidateBatch` per proxy that has entries. Audit `InvalidateSend`
    /// events are recorded here — at send time — so the auditor's pending
    /// table matches the wire, and retry timers are armed per flushed
    /// document for exactly the same reason.
    fn flush_batches(&mut self, ctx: &mut Ctx<'_, SimMsg>) {
        let Some(proposer) = self.proposer.as_mut() else {
            return;
        };
        if proposer.is_empty() {
            return;
        }
        let rounds = proposer.drain();
        if self.audit.is_some() {
            for (url, clients) in &rounds {
                for &client in clients {
                    self.record(AuditEvent::InvalidateSend {
                        url: *url,
                        client,
                        retry: false,
                        at: ctx.now(),
                    });
                }
            }
        }
        if self.tracer.is_enabled() {
            for (url, clients) in &rounds {
                let span = invalidation_span(*url, self.versions[url.doc() as usize]);
                for &client in clients {
                    self.tracer.record(
                        ctx.now(),
                        SpanKind::Invalidation,
                        span,
                        Phase::Invalidate,
                        *url,
                        Some(client),
                        None,
                    );
                }
            }
        }
        // Group the drained entries by destination proxy. Partition order
        // and the proposer's sorted drain keep this deterministic.
        let parts = self.proxies.len() as u32;
        let mut per_proxy: Vec<Vec<BatchEntry>> = vec![Vec::new(); parts as usize]; // xtask-lint: allow(hot-loop-alloc)
        let mut total = 0u64;
        for (url, clients) in &rounds {
            for &client in clients {
                per_proxy[client.partition(parts) as usize].push(BatchEntry { url: *url, client });
                total += 1;
            }
        }
        let mut spent = SimDuration::ZERO;
        for (idx, entries) in per_proxy.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let n = entries.len();
            let msg = HttpMsg::InvalidateBatch {
                server: self.server,
                entries,
            };
            let size = msg.wire_size();
            self.counters.bytes_sent += size;
            self.counters.inval_batches += 1;
            self.counters.batched_entries += n as u64;
            // One connection setup per batch, then the per-entry marginal
            // cost — the amortisation the proposer exists for.
            let cost =
                self.costs.inval_send + self.costs.inval_batch_entry.saturating_mul(n as u64);
            ctx.consume(cost);
            spent += cost;
            ctx.send(self.proxies[idx], SimMsg::Net(Message::Http(msg)), size);
            self.proposer
                .as_mut()
                .expect("flushing implies a proposer")
                .note_batch(n);
        }
        self.counters.invalidations_sent += total;
        self.inval_time.observe(spent);
        for (url, _) in &rounds {
            ctx.set_timer(self.retry_interval, url.doc() as u64);
        }
    }

    /// One invalidation acknowledgement: protocol state, metering, audit,
    /// tracing and the write-completion clock. Shared by the per-copy
    /// `InvalAck` and each entry of an `InvalidateBatchAck`.
    fn apply_inval_ack(
        &mut self,
        url: Url,
        client: ClientId,
        cache_hits: u64,
        ctx: &mut Ctx<'_, SimMsg>,
    ) {
        self.counters.acks += 1;
        self.meter.record_report(url, cache_hits);
        self.consistency.on_inval_ack(url, client);
        if self.tracer.is_enabled() {
            let span = invalidation_span(url, self.versions[url.doc() as usize]);
            self.tracer.record(
                ctx.now(),
                SpanKind::Invalidation,
                span,
                Phase::Ack,
                url,
                Some(client),
                None,
            );
            if self.consistency.pending_for(url).is_empty() {
                // Every live site acked: the write is complete.
                self.tracer.record(
                    ctx.now(),
                    SpanKind::Invalidation,
                    span,
                    Phase::Quorum,
                    url,
                    None,
                    None,
                );
            }
        }
        self.record(AuditEvent::InvalidateAck {
            url,
            client,
            at: ctx.now(),
        });
        if !self.consistency.has_pending(url) {
            if let Some(t0) = self.write_open.remove(&url) {
                self.write_completion
                    .observe(ctx.now().saturating_since(t0));
            }
        }
    }

    /// Sends the recovery bulk `INVALIDATE <server-addr>` to every proxy
    /// still in [`Self::recovery_unacked`].
    fn send_bulk_invalidations(&mut self, ctx: &mut Ctx<'_, SimMsg>) {
        for i in 0..self.recovery_unacked.len() {
            let proxy = self.recovery_unacked[i];
            let msg = HttpMsg::InvalidateServer {
                server: self.server,
            };
            let size = msg.wire_size();
            self.counters.bulk_invalidations += 1;
            self.counters.bytes_sent += size;
            ctx.consume(self.costs.inval_send);
            ctx.send(proxy, SimMsg::Net(Message::Http(msg)), size);
        }
    }

    /// Bulk-invalidation retry tick: re-send to proxies that have not
    /// acked, up to the same retry budget as per-document invalidations.
    fn retry_bulk_invalidations(&mut self, ctx: &mut Ctx<'_, SimMsg>) {
        if self.recovery_unacked.is_empty() {
            return;
        }
        self.recovery_attempts += 1;
        if self.recovery_attempts > self.max_retries {
            // Same accounting as an abandoned per-document fan-out: these
            // sites may keep serving promised-fresh copies the recovery
            // should have voided.
            self.counters.gave_up += self.recovery_unacked.len() as u64;
            self.recovery_unacked.clear();
            return;
        }
        self.send_bulk_invalidations(ctx);
        ctx.set_timer(self.retry_interval, BULK_RETRY_TOKEN);
    }

    fn handle_notify(&mut self, url: Url, at: SimTime, ctx: &mut Ctx<'_, SimMsg>) {
        ctx.consume(self.costs.notify_cpu);
        self.counters.notifies += 1;
        let doc = url.doc();
        self.versions[doc as usize] = self.versions[doc as usize].max(at);
        self.touch_log.push((doc, at));
        self.tracer.record(
            ctx.now(),
            SpanKind::Invalidation,
            invalidation_span(url, self.versions[doc as usize]),
            Phase::Write,
            url,
            None,
            None,
        );
        self.record(AuditEvent::Touch {
            url,
            version: at,
            at: ctx.now(),
        });
        if self.detection == ChangeDetection::BrowserBased {
            // The touch updates the filesystem mtime but nobody tells the
            // accelerator; detection waits for the next request.
            return;
        }
        self.acked_versions[doc as usize] = self.versions[doc as usize];
        let recipients = self.audited_modify(url, at, ctx.now());
        self.fan_out(url, recipients, false, ctx);
    }
}

impl Node<SimMsg> for OriginNode {
    fn on_message(&mut self, from: NodeId, msg: SimMsg, ctx: &mut Ctx<'_, SimMsg>) {
        match msg {
            SimMsg::Net(Message::Http(HttpMsg::Get(get))) => self.handle_get(from, get, ctx),
            SimMsg::Net(Message::Http(HttpMsg::Notify { url, at })) => {
                self.handle_notify(url, at, ctx)
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalAck {
                url,
                client,
                cache_hits,
            })) => {
                ctx.consume(self.costs.ack_cpu);
                self.apply_inval_ack(url, client, cache_hits, ctx);
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalidateBatchAck { server, entries })) => {
                debug_assert_eq!(server, self.server);
                // One parse per wire message; per-copy protocol work per
                // entry, exactly as if each ack had arrived on its own.
                ctx.consume(self.costs.ack_cpu);
                for entry in entries {
                    self.apply_inval_ack(entry.url, entry.client, entry.cache_hits, ctx);
                }
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalidateServerAck { server })) => {
                debug_assert_eq!(server, self.server);
                ctx.consume(self.costs.ack_cpu);
                self.counters.acks += 1;
                self.recovery_unacked.retain(|&p| p != from);
            }
            SimMsg::Net(Message::Coord(CoordMsg::StepStart { step, window_end })) => {
                // Window boundary: safe point for lease GC (everything that
                // expired before the window began can go).
                let before = self.prev_window_end;
                let purged = self.consistency.purge_expired_leases(before);
                self.record(AuditEvent::PurgeExpired {
                    server: self.server,
                    before,
                    purged,
                    at: ctx.now(),
                });
                self.prev_window_end = window_end;
                if let Some(coord) = self.coordinator {
                    ctx.send(
                        coord,
                        SimMsg::Net(Message::Coord(CoordMsg::StepDone { step })),
                        Message::Coord(CoordMsg::StepDone { step }).wire_size(),
                    );
                }
            }
            // Origins never receive these; spelled out (no `_`) so a new
            // wire variant is a compile error and a lint finding here
            // rather than a silently ignored message.
            other @ (SimMsg::Net(Message::Http(
                HttpMsg::Reply(_)
                | HttpMsg::Invalidate { .. }
                | HttpMsg::InvalidateBatch { .. }
                | HttpMsg::InvalidateServer { .. }
                | HttpMsg::Hello { .. }
                | HttpMsg::MetricsGet,
            ))
            | SimMsg::Net(Message::Coord(CoordMsg::StepDone { .. }))
            | SimMsg::Dispatch { .. }) => {
                debug_assert!(false, "origin got unexpected message {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, SimMsg>) {
        if token == BULK_RETRY_TOKEN {
            self.retry_bulk_invalidations(ctx);
            return;
        }
        if token == BATCH_FLUSH_TOKEN {
            // Age-bound flush. A timer armed before an earlier
            // threshold-trip flush drains whatever re-accumulated since —
            // flushing early is always legal, and keeping the rule
            // unconditional keeps replays deterministic.
            self.flush_batches(ctx);
            return;
        }
        // Retry timer for one document's pending invalidations. Volume
        // leases first drop pending entries whose volume has expired — the
        // bounded-write-completion rule.
        let dropped = self.consistency.expire_pending(self.prev_window_end);
        if dropped > 0 {
            self.record(AuditEvent::PendingExpired {
                server: self.server,
                dropped,
                at: ctx.now(),
            });
        }
        let doc = token as u32;
        let url = Url::new(self.server, doc);
        let mut pending = self.consistency.pending_for(url);
        // Copies still queued in the proposer have not been sent yet —
        // retrying them would target sites the auditor (correctly) does
        // not consider awaiting an INVALIDATE. Their flush arms a fresh
        // retry timer, so skipping them here loses nothing.
        if let Some(proposer) = self.proposer.as_ref() {
            pending.retain(|&c| !proposer.queued(url, c));
        }
        if pending.is_empty() {
            self.retry_counts.remove(&doc);
            return;
        }
        let attempts = self.retry_counts.entry(doc).or_insert(0);
        *attempts += 1;
        if *attempts > self.max_retries {
            self.counters.gave_up += pending.len() as u64;
            self.retry_counts.remove(&doc);
            self.record(AuditEvent::GaveUp {
                url,
                abandoned: pending,
                at: ctx.now(),
            });
            // The write will never complete; drop its open clock.
            self.write_open.remove(&url);
            return;
        }
        self.fan_out(url, pending, true, ctx);
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Main-memory state dies; the request log, documents and the
        // ever-seen site list are on disk and survive.
        self.mem_cache.clear();
        self.recovery_unacked.clear();
        self.recovery_attempts = 0;
        if let Some(proposer) = self.proposer.as_mut() {
            proposer.clear();
        }
        self.write_open.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, SimMsg>) {
        let sites = self.consistency.on_server_recover();
        // Recorded even with no sites to notify: the volatile site lists
        // and the pending set were discarded either way.
        self.record(AuditEvent::ServerRecovered {
            server: self.server,
            at: ctx.now(),
        });
        if sites.is_empty() {
            return;
        }
        // One bulk INVALIDATE <server-addr> per proxy site (each proxy
        // hosts many real clients; the message marks every copy from this
        // server questionable). Delivery must be reliable — a concurrent
        // partition or proxy crash would otherwise swallow the one message
        // that voids stale freshness promises — so recipients ack and the
        // unacked remainder is retried on a timer.
        self.recovery_unacked = self.proxies.clone();
        self.recovery_attempts = 0;
        self.send_bulk_invalidations(ctx);
        ctx.set_timer(self.retry_interval, BULK_RETRY_TOKEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_cache_lru_eviction() {
        let mut mc = MemCache::new(ByteSize::from_bytes(100));
        assert!(!mc.access(1, 40)); // miss, admitted
        assert!(!mc.access(2, 40)); // miss, admitted
        assert!(mc.access(1, 40)); // hit, refreshes recency
        assert!(!mc.access(3, 40)); // miss: evicts doc 2 (LRU)
        assert!(mc.access(1, 40));
        assert!(!mc.access(2, 40)); // doc 2 was evicted
    }

    #[test]
    fn mem_cache_rejects_oversized() {
        let mut mc = MemCache::new(ByteSize::from_bytes(10));
        assert!(!mc.access(1, 50));
        assert!(!mc.access(1, 50), "oversized is never admitted");
        assert_eq!(mc.used, 0);
    }

    #[test]
    fn mem_cache_clear() {
        let mut mc = MemCache::new(ByteSize::from_bytes(100));
        mc.access(1, 10);
        mc.clear();
        assert!(!mc.access(1, 10), "cleared cache misses again");
    }
}
