//! Cross-validation: the DES deployment and the real-TCP prototype run the
//! same protocol state machines, so an identical request sequence (no
//! modifications, one proxy) must produce identical protocol counters.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{Deployment, DeploymentOptions};
use wcc_net::{NetOrigin, NetProxy, OriginConfig};
use wcc_traces::{synthetic, ModSchedule, TraceSpec};
use wcc_types::ByteSize;

fn crosscheck(kind: ProtocolKind) {
    let spec = TraceSpec::sdsc().scaled_down(150);
    let trace = synthetic::generate(&spec, 13);
    let mods = ModSchedule::none(spec.num_docs);
    let cfg = ProtocolConfig::new(kind);

    // Simulator, one pseudo-client.
    let mut options = DeploymentOptions::default();
    options.num_proxies = 1;
    let mut deployment = Deployment::build(&trace, &mods, &cfg, options);
    deployment.run();
    let sim = deployment.collect();

    // Real TCP, one proxy, same sequential request order.
    let origin = NetOrigin::spawn(OriginConfig {
        server: trace.server,
        doc_sizes: trace.doc_sizes.clone(),
        protocol: cfg.clone(),
        doc_scale: 100,
        inval_batch: None,
    })
    .expect("origin");
    let proxy = NetProxy::spawn(origin.addr(), &cfg, 0, 1, ByteSize::from_gib(4)).expect("proxy");
    std::thread::sleep(std::time::Duration::from_millis(50));
    for rec in &trace.records {
        proxy
            .fetch(rec.client, rec.url, rec.at)
            .expect("fetch over loopback");
    }
    let net = proxy.counters();
    let snap = origin.snapshot();

    assert_eq!(net.requests, sim.requests, "{kind}: requests");
    assert_eq!(net.hits, sim.hits, "{kind}: hits");
    assert_eq!(net.gets_sent, sim.gets, "{kind}: GETs");
    assert_eq!(net.ims_sent, sim.ims, "{kind}: IMS");
    assert_eq!(net.replies_200, sim.replies_200, "{kind}: 200s");
    assert_eq!(net.replies_304, sim.replies_304, "{kind}: 304s");
    assert_eq!(
        snap.sitelist.total_entries, sim.sitelist.total_entries,
        "{kind}: site lists"
    );
}

#[test]
fn adaptive_ttl_counters_agree() {
    crosscheck(ProtocolKind::AdaptiveTtl);
}

#[test]
fn polling_counters_agree() {
    crosscheck(ProtocolKind::PollEveryTime);
}

#[test]
fn invalidation_counters_agree() {
    crosscheck(ProtocolKind::Invalidation);
}

#[test]
fn two_tier_counters_agree() {
    crosscheck(ProtocolKind::TwoTierLease);
}
