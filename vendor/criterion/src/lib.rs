//! Offline vendor shim for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`, the `criterion_group!`/`criterion_main!` macros) backed by a
//! plain `std::time::Instant` timing loop. No statistics, no plots — each
//! bench runs a warm-up pass plus `sample_size` timed iterations and prints
//! the mean per-iteration wall time.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a bench within a group (`group/label/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A bench named by a function label plus a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A bench named by the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone bench outside any group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benches sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a bench identified by `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs a bench that borrows a setup value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Timing handle handed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: one iteration, also used to pick a per-sample iteration
    // count that keeps each sample around a millisecond.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {label:<50} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

/// Declares a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran >= 2, "warm-up plus samples should call the closure");
    }
}
