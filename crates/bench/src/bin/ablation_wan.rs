//! Ablation A4: the paper's Internet extrapolation (§5.2).
//!
//! "How would the relative comparison of the response times change in the
//! real Internet? … we expect polling-every-time to have a much worse
//! average response time in real life. Conversely, invalidation will have
//! similar or even lower response time than adaptive TTL, as long as
//! sending invalidations is decoupled from handling regular HTTP requests."
//!
//! This binary swaps the LAN link model for a WAN profile (≈40 ms one-way,
//! 1.5 Mb/s) with a decoupled invalidation sender, and reports the latency
//! comparison the paper predicted but could not run.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_httpsim::{DeploymentOptions, InvalSendMode};
use wcc_replay::{run_trio, ExperimentConfig};
use wcc_simnet::NetworkConfig;
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn fmt_ms(d: Option<SimDuration>) -> String {
    d.map_or("-".into(), |d| format!("{:.1} ms", d.as_secs_f64() * 1e3))
}

fn main() {
    let scale = parse_scale(std::env::args()).max(4);
    println!("=== Ablation A4: WAN latency extrapolation (EPA, scale 1/{scale}) ===\n");
    for (label, network) in [
        ("LAN (testbed)", NetworkConfig::lan()),
        ("WAN (Internet)", NetworkConfig::wan()),
    ] {
        let mut options = DeploymentOptions::default();
        options.network = network;
        options.send_mode = InvalSendMode::Decoupled;
        let cfg = ExperimentConfig::builder(TraceSpec::epa().scaled_down(scale))
            .seed(TABLE_SEED)
            .options(options)
            .build();
        let trio = run_trio(&cfg);
        println!("--- {label} ---");
        println!(
            "{:<16}{:>14}{:>14}{:>14}",
            "", "avg latency", "min latency", "max latency"
        );
        for r in &trio {
            println!(
                "{:<16}{:>14}{:>14}{:>14}",
                r.protocol.name(),
                fmt_ms(r.raw.latency.mean()),
                fmt_ms(r.raw.latency.min()),
                fmt_ms(r.raw.latency.max()),
            );
        }
        let (ttl, poll, inval) = (&trio[0].raw, &trio[1].raw, &trio[2].raw);
        println!(
            "polling avg is {:.2}x invalidation's; invalidation vs TTL: {:+.1}%\n",
            poll.latency.mean().map_or(0.0, |d| d.as_secs_f64())
                / inval.latency.mean().map_or(1.0, |d| d.as_secs_f64()),
            100.0
                * (inval.latency.mean().map_or(0.0, |d| d.as_secs_f64())
                    / ttl.latency.mean().map_or(1.0, |d| d.as_secs_f64())
                    - 1.0),
        );
    }
    println!(
        "Expected shape: on the WAN, polling's average balloons (every hit\n\
         pays a WAN round trip) while decoupled invalidation tracks adaptive\n\
         TTL — the §5.2 extrapolation, confirmed."
    );
}
