//! Self-pipe signal handling for the `wcc serve` daemon.
//!
//! The handler does the only async-signal-safe thing available: a raw
//! one-byte `write` of the signal number into a non-blocking pipe. The
//! read end is normal poller input, so SIGTERM/SIGINT/SIGHUP become
//! events in the same loop that serves connections — no dedicated
//! signal thread, no `thread::sleep` polling.

use std::io::{self, PipeReader, PipeWriter, Read as _};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicI32, Ordering};

use crate::sys::{set_nonblocking, Interest, Poller};

/// Terminal-hangup signal number; `wcc serve` treats it as config reload.
pub const SIGHUP: i32 = 1;
/// Interrupt (Ctrl-C); graceful shutdown.
pub const SIGINT: i32 = 2;
/// Uncatchable kill — only ever *sent* (the soak harness crashes a child
/// daemon with it to exercise §5 recovery).
pub const SIGKILL: i32 = 9;
/// Termination request; graceful shutdown.
pub const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const SIG_ERR: usize = usize::MAX;

/// Write end of the self-pipe, published for the handler. `-1` until
/// [`Signals::install`] runs.
static PIPE_TX: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_signal(sig: i32) {
    let fd = PIPE_TX.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = [sig as u8];
        // SAFETY: raw write(2) is async-signal-safe; the fd is the
        // non-blocking pipe installed below (a full pipe just drops the
        // byte, and a dropped byte coalesces with the ones already
        // queued — the reader drains everything pending anyway).
        unsafe {
            write(fd, byte.as_ptr(), 1);
        }
    }
}

/// Installed process-signal receiver. At most one per process.
#[derive(Debug)]
pub struct Signals {
    rx: PipeReader,
    /// Keeps the write end alive for the handler; the raw fd is what
    /// `PIPE_TX` publishes.
    _tx: PipeWriter,
}

impl Signals {
    /// Installs handlers for `which` (e.g. `&[SIGTERM, SIGINT, SIGHUP]`)
    /// and returns the receiving side.
    ///
    /// # Errors
    ///
    /// Fails if called twice in one process, or on pipe/handler
    /// installation failure.
    pub fn install(which: &[i32]) -> io::Result<Signals> {
        let (rx, tx) = io::pipe()?;
        set_nonblocking(rx.as_raw_fd())?;
        set_nonblocking(tx.as_raw_fd())?;
        if PIPE_TX
            .compare_exchange(-1, tx.as_raw_fd(), Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "signal pipe already installed in this process",
            ));
        }
        for &sig in which {
            // SAFETY: installing a handler that only touches
            // async-signal-safe state (an atomic load and a raw write).
            let prev = unsafe { signal(sig, on_signal as *const () as usize) };
            if prev == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(Signals { rx, _tx: tx })
    }

    /// Registers the pipe's read end under `token` so signal arrival
    /// wakes [`Poller::wait`].
    pub fn register(&self, poller: &mut Poller, token: u64) -> io::Result<()> {
        poller.add(self.rx.as_raw_fd(), token, Interest::READ)
    }

    /// Drains one pending signal, if any.
    pub fn try_recv(&self) -> Option<i32> {
        let mut byte = [0u8; 1];
        match (&self.rx).read(&mut byte) {
            Ok(1) => Some(i32::from(byte[0])),
            _ => None,
        }
    }
}

/// Sends `sig` to `pid` (the soak/restart harness's lever on child
/// daemons).
///
/// # Errors
///
/// Propagates `kill(2)` failure (no such process, permission).
pub fn send_signal(pid: i32, sig: i32) -> io::Result<()> {
    // SAFETY: plain syscall, no pointers involved.
    let rc = unsafe { kill(pid, sig) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn signal_round_trip_through_poller() {
        // One process-global install shared by the whole test binary.
        let signals = Signals::install(&[SIGHUP]).expect("install");
        let mut poller = Poller::new().expect("poller");
        signals.register(&mut poller, 99).expect("register");

        assert!(signals.try_recv().is_none());
        send_signal(std::process::id() as i32, SIGHUP).expect("kill");

        let mut events = Vec::new();
        let mut seen = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            if events.iter().any(|e| e.token == 99 && e.readable) {
                seen = true;
                break;
            }
        }
        assert!(seen, "signal never reached the poller");
        assert_eq!(signals.try_recv(), Some(SIGHUP));
        assert!(signals.try_recv().is_none());

        // Second install in the same process must refuse.
        let err = Signals::install(&[SIGHUP]).expect_err("double install");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }
}
