//! Greedy scenario minimisation.
//!
//! Given a failing [`Scenario`], repeatedly tries structurally smaller
//! variants and keeps any that still fail with the **same**
//! [`FailureKind`](crate::check::FailureKind) — the classic test-case
//! reduction loop. Candidate moves, roughly most-valuable first:
//!
//! * drop one fault-plan entry (or all of them at once),
//! * halve the request count, document population and client population,
//! * remove the post-write read steering,
//! * halve the proxy count.
//!
//! Every candidate costs a full oracle evaluation (several replays), so the
//! search is bounded by an explicit evaluation budget rather than running
//! to a guaranteed fixpoint.

use crate::check::{check, CheckOptions, FuzzFailure};
use crate::scenario::Scenario;

/// Default cap on oracle evaluations spent shrinking one failure.
pub const DEFAULT_SHRINK_BUDGET: usize = 72;

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The smallest still-failing scenario found.
    pub scenario: Scenario,
    /// The failure the shrunk scenario reproduces (same kind as the
    /// original; detail may differ).
    pub failure: FuzzFailure,
    /// Greedy rounds completed (each round restarts the candidate list).
    pub rounds: usize,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Minimises `start`, which must fail `check` with `failure`'s kind under
/// `opts`. Returns the smallest variant (possibly `start` itself) that
/// still fails the same way, within `budget` oracle evaluations.
pub fn shrink(
    start: &Scenario,
    failure: &FuzzFailure,
    opts: &CheckOptions,
    budget: usize,
) -> Shrunk {
    let mut best = start.clone();
    let mut best_failure = failure.clone();
    let mut evaluations = 0usize;
    let mut rounds = 0usize;

    'outer: loop {
        rounds += 1;
        let mut improved = false;
        for candidate in candidates(&best) {
            if evaluations >= budget {
                break 'outer;
            }
            evaluations += 1;
            if let Err(f) = check(&candidate, opts) {
                if f.kind == best_failure.kind {
                    best = candidate;
                    best_failure = f;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }

    Shrunk {
        scenario: best,
        failure: best_failure,
        rounds,
        evaluations,
    }
}

/// Structurally smaller variants of `s`, in preference order.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Faults carry the most diagnostic weight: try removing each entry,
    // then the whole plan at once.
    for i in 0..s.faults.len() {
        let mut c = s.clone();
        c.faults.remove(i);
        out.push(c);
    }
    if s.faults.len() > 1 {
        let mut c = s.clone();
        c.faults.clear();
        out.push(c);
    }

    // Workload size, halved with floors that keep the replay meaningful.
    if s.spec.total_requests > 20 {
        let mut c = s.clone();
        c.spec.total_requests = (s.spec.total_requests / 2).max(20);
        out.push(c);
    }
    if s.spec.num_docs > 2 {
        let mut c = s.clone();
        c.spec.num_docs = (s.spec.num_docs / 2).max(2);
        out.push(c);
    }
    if s.spec.num_clients > 1 {
        let mut c = s.clone();
        c.spec.num_clients = (s.spec.num_clients / 2).max(1);
        out.push(c);
    }

    // A family scenario that still fails as a classic single-origin replay
    // is a much smaller repro.
    if s.family.is_some() {
        let mut c = s.clone();
        c.family = None;
        c.spec.num_origins = 1;
        c.spec.origin_zipf = 0.0;
        out.push(c);
    }

    // Simplify the deployment.
    if s.interest.is_some() {
        let mut c = s.clone();
        c.interest = None;
        out.push(c);
    }
    if s.options.num_proxies > 1 {
        let mut c = s.clone();
        c.options.num_proxies = (s.options.num_proxies / 2).max(1);
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FaultSpec;

    #[test]
    fn candidates_shrink_every_axis() {
        let mut s = Scenario::generate(7);
        s.faults = vec![
            FaultSpec::OriginOutage { from: 0.2, to: 0.3 },
            FaultSpec::Partition {
                proxy: 0,
                from: 0.4,
                to: 0.5,
            },
        ];
        s.spec.total_requests = 100;
        s.spec.num_docs = 10;
        s.spec.num_clients = 8;
        s.options.num_proxies = 4;
        let cs = candidates(&s);
        // 2 single-fault drops + clear-all + 3 workload halvings +
        // interest (maybe) + proxy halving.
        assert!(cs.len() >= 7, "only {} candidates", cs.len());
        assert!(cs.iter().any(|c| c.faults.is_empty()));
        assert!(cs.iter().any(|c| c.spec.total_requests == 50));
        assert!(cs.iter().any(|c| c.options.num_proxies == 2));
        // Floors hold.
        let mut tiny = s.clone();
        tiny.faults.clear();
        tiny.spec.total_requests = 20;
        tiny.spec.num_docs = 2;
        tiny.spec.num_clients = 1;
        tiny.interest = None;
        tiny.options.num_proxies = 1;
        assert!(candidates(&tiny).is_empty());
    }
}
