//! Property test: merging histograms is exactly equivalent to building one
//! histogram from the concatenated samples — every bucket, the exact
//! count/sum/min/max, and therefore every quantile.

use proptest::prelude::*;
use wcc_obs::Histogram;

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));

        let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = build(&concatenated);

        prop_assert_eq!(&merged, &direct);
        // Debug form compares every bucket too (belt and braces for the
        // byte-identity comparisons the replay tests rely on).
        prop_assert_eq!(format!("{merged:?}"), format!("{direct:?}"));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(
        samples in proptest::collection::vec(0u64..10_000_000, 1..60),
    ) {
        let h = build(&samples);
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        let qs: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        prop_assert!(qs.iter().all(|&v| (min..=max).contains(&v)));
    }
}
