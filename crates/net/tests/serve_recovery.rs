//! §5 crash-recovery and wire-robustness tests of the serving tier.
//!
//! The first test kills the origin mid-run and restarts it on the same
//! port in recovery mode, asserting the proxy's invalidation channel is
//! rebuilt and no stale copy survives. The second drives the proxy's
//! client port with two pipelined `GET`s deliberately split across many
//! tiny writes, checking the reactor reassembles frames across reads.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_net::{check_in, FetchKind, NetOrigin, NetProxy, OriginConfig};
use wcc_proto::wire::encode;
use wcc_proto::zero::{FrameReader, HttpMsgRef};
use wcc_proto::{GetRequest, HttpMsg, RequestId};
use wcc_types::{ByteSize, ClientId, ServerId, SimTime, Url};

fn origin_config(cfg: &ProtocolConfig) -> OriginConfig {
    OriginConfig {
        server: ServerId::new(0),
        doc_sizes: vec![ByteSize::from_kib(8); 32],
        protocol: cfg.clone(),
        doc_scale: 100,
        inval_batch: None,
    }
}

fn url(doc: u32) -> Url {
    Url::new(ServerId::new(0), doc)
}

#[test]
fn origin_restart_recovers_site_lists_without_stale_serves() {
    let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
    let origin = NetOrigin::spawn(origin_config(&cfg)).expect("origin spawn");
    let addr = origin.addr();
    let proxy = NetProxy::spawn(addr, &cfg, 0, 1, ByteSize::from_mib(64)).expect("proxy spawn");
    std::thread::sleep(Duration::from_millis(50));
    let c = ClientId::from_raw(7);

    // Populate the cache, so there is a copy that could go stale.
    let first = proxy.fetch(c, url(3), SimTime::from_secs(1)).unwrap();
    assert_eq!(first.kind, FetchKind::Fetched);
    assert_eq!(
        proxy.fetch(c, url(3), SimTime::from_secs(2)).unwrap().kind,
        FetchKind::CacheHit
    );

    // Crash: the in-memory site lists die with the origin. Restart on the
    // same port with `recovering = true` — the §5 protocol must broadcast
    // INVALIDATE <server> and hold until every proxy partition acks.
    drop(origin);
    let origin = NetOrigin::spawn_at(addr, origin_config(&cfg), true).expect("origin restart");
    assert!(
        origin.wait_recovery_complete(Duration::from_secs(10)),
        "restart recovery did not complete"
    );
    assert!(
        origin
            .metrics_text()
            .contains("wcc_recovery_complete{node=\"origin\"} 1"),
        "recovery gauge not set"
    );

    // The bulk invalidation marked the cached copy questionable: the next
    // fetch must revalidate at the origin rather than serve blind.
    let refetch = proxy.fetch(c, url(3), SimTime::from_secs(3)).unwrap();
    assert!(
        refetch.kind == FetchKind::Fetched || refetch.had_entry,
        "post-recovery fetch bypassed revalidation: {refetch:?}"
    );

    // A write after recovery flows through the rebuilt site lists ...
    check_in(addr, url(3), SimTime::from_secs(50)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while origin.snapshot().notifies == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        origin.wait_writes_complete(Duration::from_secs(5)),
        "post-recovery invalidation was not acknowledged"
    );

    // ... and the very next fetch returns the new version: zero staleness.
    let fresh = proxy.fetch(c, url(3), SimTime::from_secs(60)).unwrap();
    assert_eq!(fresh.kind, FetchKind::Fetched);
    assert_eq!(fresh.meta.last_modified(), SimTime::from_secs(50));
}

#[test]
fn pipelined_gets_split_across_reads_reply_in_order() {
    let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
    let origin = NetOrigin::spawn(origin_config(&cfg)).expect("origin spawn");
    let proxy =
        NetProxy::spawn(origin.addr(), &cfg, 0, 1, ByteSize::from_mib(64)).expect("proxy spawn");
    std::thread::sleep(Duration::from_millis(50));

    let c = ClientId::from_raw(11);
    let req1 = RequestId::default().next();
    let req2 = req1.next();
    let get = |req, doc| {
        encode(&HttpMsg::Get(GetRequest {
            req,
            url: url(doc),
            client: c,
            ims: None,
            issued_at: SimTime::from_secs(1),
            cache_hits: 0,
        }))
    };
    let mut wire = get(req1, 5);
    wire.extend_from_slice(&get(req2, 6));

    // Dribble both frames out in 3-byte slices so the server sees partial
    // headers, split length prefixes, and a frame boundary mid-read.
    let mut stream = TcpStream::connect(proxy.client_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for chunk in wire.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    for (want_req, want_doc) in [(req1, 5u32), (req2, 6u32)] {
        match reader.next_msg().expect("reply frame") {
            HttpMsgRef::Reply(r) => {
                assert_eq!(r.req, want_req, "replies out of order");
                assert_eq!(r.url, url(want_doc));
            }
            other => panic!("expected Reply, got {other:?}"),
        }
    }
    drop(reader);
    drop(proxy);
    drop(origin);
}
