//! Table 4: replay results for NASA (7-day lifetime) and SDSC with two
//! lifetimes (25 days → 57 modifications; 2.5 days → 576), three protocols
//! each.

use wcc_bench::{experiment_label, paper_experiments, parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::tables::format_trio_block;
use wcc_replay::{run_batch, ExperimentConfig};

/// Paper reference rows that survive in the extracted text.
const PAPER: [(&str, &str, f64, f64, f64); 3] = [
    ("NASA", "1.26/1.26/1.27 GB", 32.6, 36.1, 34.4),
    ("SDSC(57)", "263 MB (all three)", 34.1, 35.6, 32.7),
    ("SDSC(576)", "263/263/264 MB", 33.6, 36.7, 34.7),
];

fn main() {
    let scale = parse_scale(std::env::args());
    let jobs = parse_jobs(std::env::args());
    println!("=== Table 4: NASA and SDSC replays (seed {TABLE_SEED}, scale 1/{scale}) ===\n");
    // The whole 3-trace x 3-protocol grid fans out at once; reports come
    // back in submission order, so chunks of three are one trio each.
    let experiments: Vec<_> = paper_experiments().into_iter().skip(3).collect();
    let configs: Vec<ExperimentConfig> = experiments
        .iter()
        .flat_map(|(spec, lifetime, _)| {
            ProtocolKind::PAPER_TRIO.map(|kind| {
                let mut cfg = ExperimentConfig::builder(spec.clone().scaled_down(scale))
                    .mean_lifetime(*lifetime)
                    .seed(TABLE_SEED)
                    .build();
                cfg.protocol = ProtocolConfig::new(kind);
                cfg
            })
        })
        .collect();
    let reports = run_batch(&configs, jobs);
    for ((spec, lifetime, _), trio) in experiments.iter().zip(reports.chunks(3)) {
        let label = experiment_label(spec, *lifetime);
        println!("--- {label} ---");
        println!("{}", format_trio_block(trio));
    }
    println!("Paper reference (rows preserved in the source text):");
    for (trace, bytes, ttl, poll, inval) in PAPER {
        println!(
            "  {trace:<10} bytes {bytes:<20} server CPU {ttl}% / {poll}% / {inval}% (ttl/poll/inval)"
        );
    }
}
