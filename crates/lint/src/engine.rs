//! The token-tree view the rules run on: one parsed [`SourceFile`] per
//! input, with delimiter pairing, nesting depth, the significant-token
//! index (whitespace and comments skipped), and `#[cfg(test)]` masking by
//! actual item extent rather than by line heuristics.

use crate::lexer::{self, Delim, Token, TokenKind};

/// A lexed source file plus the derived structure the rules need.
pub(crate) struct SourceFile<'s> {
    /// Workspace-relative path with forward slashes.
    pub path: &'s str,
    pub src: &'s str,
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of significant tokens: everything except
    /// whitespace and comments.
    pub sig: Vec<usize>,
    /// For each token index: the token index of its partner delimiter, if
    /// this token is a properly paired `Open`/`Close`.
    pub partner: Vec<Option<usize>>,
    /// For each token index: delimiter nesting depth. An `Open` and its
    /// `Close` share the depth *outside* the group they delimit.
    pub depth: Vec<usize>,
    /// For each token index: true when the token belongs to a
    /// `#[cfg(test)]` item (attribute included).
    pub masked: Vec<bool>,
    /// For each token index of a significant token: its position in `sig`.
    sig_pos: Vec<usize>,
}

impl<'s> SourceFile<'s> {
    pub fn parse(path: &'s str, src: &'s str) -> Self {
        let tokens = lexer::lex(src);
        let mut sig = Vec::with_capacity(tokens.len());
        let mut sig_pos = vec![usize::MAX; tokens.len()];
        for (i, t) in tokens.iter().enumerate() {
            if !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            ) {
                sig_pos[i] = sig.len();
                sig.push(i);
            }
        }
        let (partner, depth) = pair_delims(&tokens);
        let mut file = SourceFile {
            path,
            src,
            tokens,
            sig,
            partner,
            depth,
            masked: Vec::new(),
            sig_pos,
        };
        file.masked = file.compute_mask();
        file
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Text of the `k`-th significant token ("" past the end).
    pub fn s(&self, k: usize) -> &'s str {
        match self.sig.get(k) {
            Some(&i) => self.tokens[i].text(self.src),
            None => "",
        }
    }

    /// Kind of the `k`-th significant token.
    pub fn kind(&self, k: usize) -> Option<TokenKind> {
        self.sig.get(k).map(|&i| self.tokens[i].kind)
    }

    /// 1-based line of the `k`-th significant token.
    pub fn line(&self, k: usize) -> usize {
        self.sig.get(k).map_or(0, |&i| self.tokens[i].line)
    }

    /// Delimiter depth of the `k`-th significant token.
    pub fn depth_at(&self, k: usize) -> usize {
        self.sig.get(k).map_or(0, |&i| self.depth[i])
    }

    /// True when the `k`-th significant token is inside `#[cfg(test)]`.
    pub fn masked_at(&self, k: usize) -> bool {
        self.sig.get(k).is_some_and(|&i| self.masked[i])
    }

    /// For an `Open`/`Close` at significant index `k`: the significant
    /// index of its partner.
    pub fn partner_sig(&self, k: usize) -> Option<usize> {
        let i = *self.sig.get(k)?;
        let p = self.partner[i]?;
        let sp = self.sig_pos[p];
        (sp != usize::MAX).then_some(sp)
    }

    /// True when the significant tokens starting at `k` spell out `needle`
    /// (one atom per token, exact text match).
    pub fn seq_at(&self, k: usize, needle: &[&str]) -> bool {
        needle
            .iter()
            .enumerate()
            .all(|(j, atom)| self.s(k + j) == *atom)
    }

    /// Steps past the group opening at `k` (if `k` is an `Open`), returning
    /// the index after its `Close`; otherwise `k + 1`.
    pub fn skip_group(&self, k: usize) -> usize {
        match self.kind(k) {
            Some(TokenKind::Open(_)) => match self.partner_sig(k) {
                Some(close) => close + 1,
                None => self.len(), // unbalanced: stop scanning
            },
            _ => k + 1,
        }
    }

    /// Marks every token of every `#[cfg(test)]` item: the attribute, any
    /// further attributes, and the item through its `;` or matched body.
    fn compute_mask(&self) -> Vec<bool> {
        let mut masked = vec![false; self.tokens.len()];
        let mut k = 0;
        while k < self.len() {
            if !self.is_cfg_test_attr(k) {
                k += 1;
                continue;
            }
            let start = k;
            // Past this attribute, then any stacked attributes.
            let mut j = self.skip_attr(k);
            while self.s(j) == "#" && matches!(self.kind(j + 1), Some(TokenKind::Open(_))) {
                j = self.skip_attr(j);
            }
            // The item extends to the first `;` at this level (bodyless
            // item) or through the first brace group at this level.
            let mut end = j;
            loop {
                match self.kind(end) {
                    None => {
                        end = self.len().saturating_sub(1);
                        break;
                    }
                    Some(TokenKind::Open(Delim::Brace)) => {
                        end = self.partner_sig(end).unwrap_or(self.len() - 1);
                        break;
                    }
                    Some(TokenKind::Open(_)) => end = self.skip_group(end),
                    _ if self.s(end) == ";" => break,
                    _ => end += 1,
                }
            }
            for kk in start..=end.min(self.len().saturating_sub(1)) {
                masked[self.sig[kk]] = true;
            }
            k = end + 1;
        }
        masked
    }

    /// True when significant index `k` starts `#[cfg(test)]` (attribute
    /// contents exactly `cfg ( test )`).
    fn is_cfg_test_attr(&self, k: usize) -> bool {
        self.s(k) == "#"
            && matches!(self.kind(k + 1), Some(TokenKind::Open(Delim::Bracket)))
            && self.seq_at(k + 2, &["cfg", "(", "test", ")"])
            && self.partner_sig(k + 1) == Some(k + 6)
    }

    /// Steps past an attribute starting at `k` (`#` + bracket group).
    fn skip_attr(&self, k: usize) -> usize {
        self.skip_group(k + 1)
    }
}

/// Pairs delimiters with a stack and assigns nesting depths. Mismatched
/// closers are left unpaired (depth still monotone).
fn pair_delims(tokens: &[Token]) -> (Vec<Option<usize>>, Vec<usize>) {
    let mut partner = vec![None; tokens.len()];
    let mut depth = vec![0usize; tokens.len()];
    let mut stack: Vec<(usize, Delim)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Open(d) => {
                depth[i] = stack.len();
                stack.push((i, d));
            }
            TokenKind::Close(d) => {
                if let Some(&(open, od)) = stack.last() {
                    if od == d {
                        stack.pop();
                        partner[open] = Some(i);
                        partner[i] = Some(open);
                    }
                }
                depth[i] = stack.len();
            }
            _ => depth[i] = stack.len(),
        }
    }
    (partner, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_masks_whole_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let masked_of = |name: &str| {
            let k = (0..f.len()).find(|&k| f.s(k) == name).unwrap();
            f.masked_at(k)
        };
        assert!(!masked_of("live"));
        assert!(masked_of("tests"));
        assert!(masked_of("t"));
        assert!(!masked_of("after"));
    }

    #[test]
    fn cfg_test_masks_single_item_and_bodyless_item() {
        let src = "#[cfg(test)]\nfn helper() { body(); }\nfn live() {}\n\
                   #[cfg(test)]\nmod tests;\nfn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let masked_of = |name: &str| {
            let k = (0..f.len()).find(|&k| f.s(k) == name).unwrap();
            f.masked_at(k)
        };
        assert!(masked_of("helper"));
        assert!(masked_of("body"));
        assert!(!masked_of("live"));
        assert!(masked_of("tests"));
        assert!(!masked_of("also_live"));
    }

    #[test]
    fn stacked_attributes_stay_with_the_item() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct Shadow { x: u32 }\nstruct Real;\n";
        let f = SourceFile::parse("x.rs", src);
        let masked_of = |name: &str| {
            let k = (0..f.len()).find(|&k| f.s(k) == name).unwrap();
            f.masked_at(k)
        };
        assert!(masked_of("Shadow"));
        assert!(!masked_of("Real"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { x.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let k = (0..f.len()).find(|&k| f.s(k) == "unwrap").unwrap();
        assert!(!f.masked_at(k));
    }

    #[test]
    fn depth_and_partner_track_groups() {
        let src = "f(a, g(b), c); { h[0]; }";
        let f = SourceFile::parse("x.rs", src);
        let at = |text: &str| (0..f.len()).find(|&k| f.s(k) == text).unwrap();
        assert_eq!(f.depth_at(at("a")), 1);
        assert_eq!(f.depth_at(at("b")), 2);
        assert_eq!(f.depth_at(at("h")), 1);
        let open = at("(");
        let close = f.partner_sig(open).unwrap();
        assert_eq!(f.s(close), ")");
        assert!(f.depth_at(open) == f.depth_at(close));
    }
}
