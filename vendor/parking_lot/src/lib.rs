//! Offline vendor shim for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` (and `RwLock`) with `parking_lot`'s
//! panic-free, non-poisoning guard API — the only surface this workspace
//! uses. Poisoned locks are recovered rather than propagated, matching
//! `parking_lot`'s semantics of not poisoning at all.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Recovers from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
