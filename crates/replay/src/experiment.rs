//! Experiment configuration and execution.

use wcc_audit::AuditReport;
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{Deployment, DeploymentOptions, RawReport};
use wcc_traces::{synthetic, ModSchedule, Trace, TraceSpec};
use wcc_types::SimDuration;

/// Everything needed to reproduce one replay: trace spec, protocol, mean
/// file lifetime and seed.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The workload.
    pub spec: TraceSpec,
    /// The protocol under test.
    pub protocol: ProtocolConfig,
    /// Mean file lifetime driving the modifier (`None` → the spec's paper
    /// default).
    pub mean_lifetime: Option<SimDuration>,
    /// RNG seed for trace generation and the modifier.
    pub seed: u64,
    /// Deployment knobs.
    pub options: DeploymentOptions,
}

impl ExperimentConfig {
    /// Starts building a config over `spec`.
    pub fn builder(spec: TraceSpec) -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig {
                spec,
                protocol: ProtocolConfig::new(ProtocolKind::Invalidation),
                mean_lifetime: None,
                seed: 42,
                options: DeploymentOptions::default(),
            },
        }
    }

    /// The effective mean lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.mean_lifetime.unwrap_or(self.spec.default_lifetime)
    }
}

/// Builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Selects the protocol (default tuning).
    #[must_use]
    pub fn protocol(mut self, kind: ProtocolKind) -> Self {
        self.cfg.protocol = ProtocolConfig::new(kind);
        self
    }

    /// Selects a fully tuned protocol config.
    #[must_use]
    pub fn protocol_config(mut self, cfg: ProtocolConfig) -> Self {
        self.cfg.protocol = cfg;
        self
    }

    /// Overrides the mean file lifetime.
    #[must_use]
    pub fn mean_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.cfg.mean_lifetime = Some(lifetime);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the deployment options.
    #[must_use]
    pub fn options(mut self, options: DeploymentOptions) -> Self {
        self.cfg.options = options;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ExperimentConfig {
        self.cfg
    }
}

/// One replay's results plus its provenance.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Trace name.
    pub trace: String,
    /// Protocol replayed.
    pub protocol: ProtocolKind,
    /// Mean file lifetime used.
    pub mean_lifetime: SimDuration,
    /// Modifications performed.
    pub files_modified: u64,
    /// Seed used.
    pub seed: u64,
    /// The measurements.
    pub raw: RawReport,
    /// The consistency auditor's verdict, when the replay ran with
    /// [`DeploymentOptions::audit`] set.
    pub audit: Option<AuditReport>,
}

/// Materialises the workload for a config (deterministic).
pub fn materialise(cfg: &ExperimentConfig) -> (Trace, ModSchedule) {
    let trace = synthetic::generate(&cfg.spec, cfg.seed);
    let mods = ModSchedule::generate(
        cfg.spec.num_docs,
        cfg.lifetime(),
        cfg.spec.duration,
        cfg.seed,
    );
    (trace, mods)
}

/// Runs one experiment end-to-end.
pub fn run_experiment(cfg: &ExperimentConfig) -> ReplayReport {
    let (trace, mods) = materialise(cfg);
    run_on(cfg, &trace, &mods)
}

/// Runs one experiment over an already-materialised workload (so a trio
/// shares the identical trace and modification schedule, as in the paper).
pub fn run_on(cfg: &ExperimentConfig, trace: &Trace, mods: &ModSchedule) -> ReplayReport {
    run_on_sharded(cfg, trace, mods, 1)
}

/// Like [`run_on`], but drives the replay over `shards` engine shards (see
/// [`wcc_simnet::shard`]). The report is byte-identical to the sequential
/// one — `shards` deliberately does not appear in it.
pub fn run_on_sharded(
    cfg: &ExperimentConfig,
    trace: &Trace,
    mods: &ModSchedule,
    shards: usize,
) -> ReplayReport {
    let mut deployment = Deployment::build(trace, mods, &cfg.protocol, cfg.options.clone());
    if shards > 1 {
        deployment.run_sharded(shards);
    } else {
        deployment.run();
    }
    let audit = cfg.options.audit.then(|| deployment.audit());
    ReplayReport {
        trace: trace.name.clone(),
        protocol: cfg.protocol.kind,
        mean_lifetime: cfg.lifetime(),
        files_modified: mods.modifications().len() as u64,
        seed: cfg.seed,
        raw: deployment.collect(),
        audit,
    }
}

/// Runs one experiment end-to-end over `shards` engine shards.
pub fn run_experiment_sharded(cfg: &ExperimentConfig, shards: usize) -> ReplayReport {
    let (trace, mods) = materialise(cfg);
    run_on_sharded(cfg, &trace, &mods, shards)
}

/// Runs the paper's three-way comparison (adaptive TTL, polling-every-time,
/// invalidation) over one identical workload — one block of Tables 3/4.
///
/// The three replays fan out over [`crate::parallel`]'s worker pool (job
/// count from `WCC_JOBS` or the core count); the reports are byte-identical
/// to a sequential run. Use [`crate::parallel::run_trio_jobs`] for an
/// explicit job count.
pub fn run_trio(base: &ExperimentConfig) -> [ReplayReport; 3] {
    crate::parallel::run_trio_jobs(base, None)
}

/// The §6 two-tier-lease evaluation: plain invalidation vs. two-tier over
/// one identical workload.
#[derive(Debug, Clone)]
pub struct TwoTierComparison {
    /// Plain-invalidation run.
    pub plain: ReplayReport,
    /// Two-tier run.
    pub two_tier: ReplayReport,
}

impl TwoTierComparison {
    /// Extra `If-Modified-Since` requests the two-tier scheme trades for its
    /// smaller site lists.
    pub fn extra_ims(&self) -> i64 {
        self.two_tier.raw.ims as i64 - self.plain.raw.ims as i64
    }

    /// Site-list entry reduction: `(plain entries, two-tier entries)`.
    pub fn entries(&self) -> (u64, u64) {
        (
            self.plain.raw.sitelist.total_entries,
            self.two_tier.raw.sitelist.total_entries,
        )
    }

    /// Max site-list length reduction (among all lists at end of run).
    pub fn max_list(&self) -> (u64, u64) {
        (
            self.plain.raw.sitelist.max_list_len,
            self.two_tier.raw.sitelist.max_list_len,
        )
    }
}

/// Runs the two-tier comparison for `base` (whose protocol is ignored).
/// `lease` is the two-tier full lease; the plain run uses infinite leases.
pub fn two_tier_comparison(base: &ExperimentConfig, lease: SimDuration) -> TwoTierComparison {
    let (trace, mods) = materialise(base);
    let mut plain_cfg = base.clone();
    plain_cfg.protocol = ProtocolConfig::new(ProtocolKind::Invalidation);
    let mut two_tier_cfg = base.clone();
    two_tier_cfg.protocol = ProtocolConfig::new(ProtocolKind::TwoTierLease).with_lease(lease);
    TwoTierComparison {
        plain: run_on(&plain_cfg, &trace, &mods),
        two_tier: run_on(&two_tier_cfg, &trace, &mods),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(scale: u64) -> ExperimentConfig {
        ExperimentConfig::builder(TraceSpec::epa().scaled_down(scale))
            .seed(3)
            .build()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = ExperimentConfig::builder(TraceSpec::sdsc())
            .protocol(ProtocolKind::AdaptiveTtl)
            .mean_lifetime(SimDuration::from_days(2))
            .seed(9)
            .build();
        assert_eq!(cfg.protocol.kind, ProtocolKind::AdaptiveTtl);
        assert_eq!(cfg.lifetime(), SimDuration::from_days(2));
        assert_eq!(cfg.seed, 9);
        // Default lifetime comes from the spec.
        assert_eq!(base(100).lifetime(), SimDuration::from_days(50));
    }

    #[test]
    fn experiments_are_reproducible() {
        let cfg = base(300);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.raw.total_messages, b.raw.total_messages);
        assert_eq!(a.raw.total_bytes, b.raw.total_bytes);
        assert_eq!(a.raw.hits, b.raw.hits);
        assert_eq!(a.raw.latency.max(), b.raw.latency.max());
    }

    #[test]
    fn trio_shares_workload_and_orders_columns() {
        let trio = run_trio(&base(300));
        assert_eq!(trio[0].protocol, ProtocolKind::AdaptiveTtl);
        assert_eq!(trio[1].protocol, ProtocolKind::PollEveryTime);
        assert_eq!(trio[2].protocol, ProtocolKind::Invalidation);
        // Identical workload: same request count and modification count.
        assert!(trio.windows(2).all(|w| {
            w[0].raw.requests == w[1].raw.requests && w[0].files_modified == w[1].files_modified
        }));
    }

    #[test]
    fn trio_reproduces_paper_shape_on_scaled_epa() {
        let trio = run_trio(&base(100));
        let (ttl, poll, inval) = (&trio[0].raw, &trio[1].raw, &trio[2].raw);
        // Polling sends the most messages.
        assert!(poll.total_messages > ttl.total_messages);
        assert!(poll.total_messages > inval.total_messages);
        // Strong protocols never serve stale cache bytes here.
        assert_eq!(poll.stale_hits, 0);
        assert_eq!(inval.final_violations, 0);
        // Polling's minimum latency (always one server round trip) exceeds
        // the others' (pure cache hits).
        assert!(poll.latency.min() >= ttl.latency.min());
        assert!(poll.latency.min() >= inval.latency.min());
    }

    #[test]
    fn two_tier_shrinks_site_lists_for_extra_ims() {
        let base = ExperimentConfig::builder(TraceSpec::sask().scaled_down(100))
            .seed(5)
            .build();
        let cmp = two_tier_comparison(&base, SimDuration::from_days(30));
        let (plain_entries, tt_entries) = cmp.entries();
        assert!(
            tt_entries < plain_entries,
            "two-tier should shrink the table: {tt_entries} vs {plain_entries}"
        );
        assert!(cmp.extra_ims() >= 0, "two-tier never sends fewer IMS");
        // Strong consistency preserved.
        assert_eq!(cmp.two_tier.raw.final_violations, 0);
    }
}
