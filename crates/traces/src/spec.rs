//! Calibration targets for the five evaluation traces (the paper's Table 2).
//!
//! File counts are *derived from the paper's own numbers*: the modifier
//! touches one uniform-random file every `N` seconds, so the number of
//! modifications in a replay is `duration × files / mean_lifetime`.
//! Inverting the modification counts reported in Tables 3 and 4:
//!
//! | trace | mods | lifetime | duration | ⇒ files |
//! |---|---|---|---|---|
//! | EPA | 72 | 50 d | 1 d | 3600 |
//! | SASK | 1148 | 14 d | 8 d | ≈2009 |
//! | ClarkNet | 40 | 50 d | 10 h | 4800 |
//! | NASA | 144 | 7 d | 1 d | 1008 |
//! | SDSC | 57 / 576 | 25 d / 2.5 d | 1 d | ≈1430 |

use wcc_types::{ByteSize, SimDuration};

/// Calibration targets for one synthetic trace.
///
/// # Examples
///
/// ```
/// use wcc_traces::TraceSpec;
///
/// let spec = TraceSpec::sask();
/// assert_eq!(spec.duration.as_secs(), 8 * 86_400);
/// let mini = spec.clone().scaled_down(10);
/// assert_eq!(mini.total_requests, spec.total_requests / 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Trace name.
    pub name: &'static str,
    /// Trace duration.
    pub duration: SimDuration,
    /// Total requests to generate.
    pub total_requests: u64,
    /// Document population on the server.
    pub num_docs: u32,
    /// Client population.
    pub num_clients: u32,
    /// Mean document size.
    pub avg_doc_size: ByteSize,
    /// Zipf exponent for document popularity.
    pub doc_zipf: f64,
    /// Zipf exponent for client activity.
    pub client_zipf: f64,
    /// Strength of the diurnal arrival modulation in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Default mean file lifetime used by the paper's headline experiment
    /// on this trace (Tables 3/4).
    pub default_lifetime: SimDuration,
    /// Number of origin servers the workload spans (the paper's traces are
    /// all single-origin; federation families raise this to 50–100+).
    pub num_origins: u32,
    /// Zipf exponent for origin popularity: how skewed the request shares
    /// across the federation's origins are (irrelevant when
    /// `num_origins == 1`).
    pub origin_zipf: f64,
}

impl TraceSpec {
    /// EPA: the EPA WWW server at Research Triangle Park, NC.
    /// One day, 40 658 requests, mean file size 21 KB; paper replays it with
    /// a 50-day mean lifetime (72 files modified).
    pub fn epa() -> Self {
        TraceSpec {
            name: "EPA",
            duration: SimDuration::from_days(1),
            total_requests: 40_658,
            num_docs: 3_600,
            num_clients: 2_333,
            avg_doc_size: ByteSize::from_kib(21),
            doc_zipf: 0.85,
            client_zipf: 0.70,
            diurnal_amplitude: 0.5,
            default_lifetime: SimDuration::from_days(50),
            num_origins: 1,
            origin_zipf: 0.0,
        }
    }

    /// SDSC: the San Diego Supercomputer Center WWW server.
    /// One day, 25 430 requests, mean file size 14 KB; replayed with both
    /// 25-day (57 mods) and 2.5-day (576 mods) lifetimes.
    pub fn sdsc() -> Self {
        TraceSpec {
            name: "SDSC",
            duration: SimDuration::from_days(1),
            total_requests: 25_430,
            num_docs: 1_430,
            num_clients: 1_530,
            avg_doc_size: ByteSize::from_kib(14),
            doc_zipf: 0.80,
            client_zipf: 0.70,
            diurnal_amplitude: 0.5,
            default_lifetime: SimDuration::from_days(25),
            num_origins: 1,
            origin_zipf: 0.0,
        }
    }

    /// ClarkNet: a commercial ISP for the Baltimore–Washington DC area.
    /// Ten hours, 61 703 requests, mean file size 13 KB; 50-day lifetime
    /// (40 files modified).
    pub fn clarknet() -> Self {
        TraceSpec {
            name: "ClarkNet",
            duration: SimDuration::from_hours(10),
            total_requests: 61_703,
            num_docs: 4_800,
            num_clients: 3_022,
            avg_doc_size: ByteSize::from_kib(13),
            doc_zipf: 0.80,
            client_zipf: 0.70,
            diurnal_amplitude: 0.3,
            default_lifetime: SimDuration::from_days(50),
            num_origins: 1,
            origin_zipf: 0.0,
        }
    }

    /// NASA: the Kennedy Space Center WWW server.
    /// One day, 61 823 requests, mean file size 44 KB, very high popularity
    /// (max 3138 distinct clients on one document); 7-day lifetime.
    pub fn nasa() -> Self {
        TraceSpec {
            name: "NASA",
            duration: SimDuration::from_days(1),
            total_requests: 61_823,
            num_docs: 1_008,
            num_clients: 4_435,
            avg_doc_size: ByteSize::from_kib(44),
            doc_zipf: 0.90,
            client_zipf: 0.65,
            diurnal_amplitude: 0.5,
            default_lifetime: SimDuration::from_days(7),
            num_origins: 1,
            origin_zipf: 0.0,
        }
    }

    /// SASK: the University of Saskatchewan Web server.
    /// Eight days, 51 471 requests, mean file size 12 KB; 14-day lifetime
    /// (1148 files modified).
    pub fn sask() -> Self {
        TraceSpec {
            name: "SASK",
            duration: SimDuration::from_days(8),
            total_requests: 51_471,
            num_docs: 2_009,
            num_clients: 1_772,
            avg_doc_size: ByteSize::from_kib(12),
            doc_zipf: 0.80,
            client_zipf: 0.70,
            diurnal_amplitude: 0.5,
            default_lifetime: SimDuration::from_days(14),
            num_origins: 1,
            origin_zipf: 0.0,
        }
    }

    /// All five paper traces.
    pub fn all() -> Vec<TraceSpec> {
        vec![
            TraceSpec::epa(),
            TraceSpec::sdsc(),
            TraceSpec::clarknet(),
            TraceSpec::nasa(),
            TraceSpec::sask(),
        ]
    }

    /// Looks a spec up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<TraceSpec> {
        TraceSpec::all()
            .into_iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// A proportionally smaller version of this workload for tests and
    /// examples: requests, documents and clients all divided by `factor`
    /// (duration is kept, so request *rate* drops too).
    ///
    /// A zero `factor` is clamped to 1 (no scaling) rather than dividing by
    /// zero, so CLI-supplied `--scale` values can be passed through
    /// unchecked.
    #[must_use]
    pub fn scaled_down(mut self, factor: u64) -> Self {
        let factor = factor.max(1);
        self.total_requests = (self.total_requests / factor).max(1);
        // Federation specs keep their origin count when scaled: a reduced
        // 64-origin scenario still exercises 64 origins, just with less
        // traffic — so the document floor is one per origin.
        let min_docs = self.num_origins.max(1) as u64;
        self.num_docs = ((self.num_docs as u64 / factor).max(min_docs)) as u32;
        self.num_clients = ((self.num_clients as u64 / factor).max(1)) as u32;
        self
    }

    /// Turns this spec into a federation of `origins` servers whose request
    /// shares follow `Zipf(origin_zipf)` (see
    /// [`synthetic::generate_federation`](crate::synthetic::generate_federation)).
    #[must_use]
    pub fn with_origins(mut self, origins: u32, origin_zipf: f64) -> Self {
        self.num_origins = origins.max(1);
        self.origin_zipf = origin_zipf;
        self.num_docs = self.num_docs.max(self.num_origins);
        self
    }

    /// The modifier period `N` (one touch every `N` seconds) that yields the
    /// given mean file lifetime for this trace's document population:
    /// `N = lifetime / files`.
    pub fn modifier_period(&self, mean_lifetime: SimDuration) -> SimDuration {
        mean_lifetime.div(self.num_docs as u64)
    }

    /// The number of modifications a full replay with the given lifetime
    /// will perform.
    pub fn expected_modifications(&self, mean_lifetime: SimDuration) -> u64 {
        let period = self.modifier_period(mean_lifetime);
        if period.is_zero() {
            0
        } else {
            self.duration.as_micros() / period.as_micros()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modification_counts_match_paper() {
        // The derivation that fixed the file counts must reproduce the
        // papers' reported "files modified" numbers.
        let cases = [
            (TraceSpec::epa(), SimDuration::from_days(50), 72),
            (TraceSpec::sask(), SimDuration::from_days(14), 1148),
            (TraceSpec::clarknet(), SimDuration::from_days(50), 40),
            (TraceSpec::nasa(), SimDuration::from_days(7), 144),
            (TraceSpec::sdsc(), SimDuration::from_days(25), 57),
        ];
        for (spec, lifetime, expected) in cases {
            let mods = spec.expected_modifications(lifetime);
            let tolerance = (expected as f64 * 0.02).ceil() as i64 + 1;
            assert!(
                (mods as i64 - expected).abs() <= tolerance,
                "{}: {mods} mods vs paper {expected}",
                spec.name
            );
        }
        // SDSC's fast-churn variant.
        let sdsc_fast = TraceSpec::sdsc()
            .expected_modifications(SimDuration::from_secs((2.5 * 86_400.0) as u64));
        assert!(
            (sdsc_fast as i64 - 576).abs() <= 13,
            "sdsc fast: {sdsc_fast}"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(TraceSpec::by_name("epa"), Some(TraceSpec::epa()));
        assert_eq!(TraceSpec::by_name("NASA"), Some(TraceSpec::nasa()));
        assert_eq!(TraceSpec::by_name("zork"), None);
        assert_eq!(TraceSpec::all().len(), 5);
    }

    #[test]
    fn scaling_is_proportional_and_floored() {
        let spec = TraceSpec::epa().scaled_down(100);
        assert_eq!(spec.total_requests, 406);
        assert_eq!(spec.num_docs, 36);
        assert_eq!(spec.num_clients, 23);
        let tiny = TraceSpec::epa().scaled_down(10_000_000);
        assert_eq!(tiny.total_requests, 1);
        assert_eq!(tiny.num_docs, 1);
    }

    #[test]
    fn zero_scale_clamps_to_one() {
        assert_eq!(TraceSpec::epa().scaled_down(0), TraceSpec::epa());
        assert_eq!(
            TraceSpec::sask().scaled_down(0),
            TraceSpec::sask().scaled_down(1)
        );
    }

    #[test]
    fn modifier_period_inverts_lifetime() {
        let spec = TraceSpec::epa();
        let period = spec.modifier_period(SimDuration::from_days(50));
        // 50 days / 3600 files = 1200 s.
        assert_eq!(period, SimDuration::from_secs(1200));
    }
}
