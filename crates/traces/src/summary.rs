//! Table 2: trace summaries.

use crate::Trace;
use std::collections::{HashMap, HashSet};
use std::fmt;
use wcc_types::{ByteSize, ClientId, SimDuration};

/// The statistics the paper's Table 2 reports for each trace.
///
/// "File popularity shows the maximum number of different client sites that
/// requested the same document (the average is shown in parenthesis)."
///
/// # Examples
///
/// ```
/// use wcc_traces::{synthetic, TraceSpec, TraceSummary};
///
/// let trace = synthetic::generate(&TraceSpec::epa().scaled_down(100), 1);
/// let s = TraceSummary::of(&trace);
/// println!("{s}");
/// assert!(s.num_files > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Trace name.
    pub name: String,
    /// Trace duration.
    pub duration: SimDuration,
    /// Total requests.
    pub total_requests: u64,
    /// Distinct documents actually requested.
    pub num_files: u64,
    /// Mean size of the requested documents.
    pub avg_file_size: ByteSize,
    /// Maximum number of distinct clients that requested one document.
    pub max_popularity: u64,
    /// Average number of distinct clients per requested document.
    pub avg_popularity: f64,
    /// Distinct client sites in the trace.
    pub num_clients: u64,
}

impl TraceSummary {
    /// Computes the summary of a trace.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut per_doc_clients: HashMap<u32, HashSet<ClientId>> = HashMap::new();
        let mut clients: HashSet<ClientId> = HashSet::new();
        for rec in &trace.records {
            per_doc_clients
                .entry(rec.url.doc())
                .or_default()
                .insert(rec.client);
            clients.insert(rec.client);
        }
        let num_files = per_doc_clients.len() as u64;
        let max_popularity = per_doc_clients
            .values()
            .map(|s| s.len() as u64)
            .max()
            .unwrap_or(0);
        let total_popularity: u64 = per_doc_clients.values().map(|s| s.len() as u64).sum();
        let avg_popularity = if num_files == 0 {
            0.0
        } else {
            total_popularity as f64 / num_files as f64
        };
        let total_size: ByteSize = per_doc_clients.keys().map(|&d| trace.doc_size(d)).sum();
        let avg_file_size =
            ByteSize::from_bytes(total_size.as_u64().checked_div(num_files).unwrap_or(0));
        TraceSummary {
            name: trace.name.clone(),
            duration: trace.duration,
            total_requests: trace.records.len() as u64,
            num_files,
            avg_file_size,
            max_popularity,
            avg_popularity,
            num_clients: clients.len() as u64,
        }
    }

    /// The header line matching [`TraceSummary`]'s `Display` row.
    pub fn header() -> &'static str {
        "Trace      Duration   Requests    Files  AvgSize    Popularity  Clients"
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>8} {:>10} {:>8} {:>8} {:>7} ({:>5.1}) {:>8}",
            self.name,
            self.duration.to_string(),
            self.total_requests,
            self.num_files,
            self.avg_file_size.to_string(),
            self.max_popularity,
            self.avg_popularity,
            self.num_clients,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecord;
    use wcc_types::{ServerId, SimTime, Url};

    fn mini_trace() -> Trace {
        let server = ServerId::new(0);
        let mk = |at, client, doc| TraceRecord {
            at: SimTime::from_secs(at),
            client: ClientId::from_raw(client),
            url: Url::new(server, doc),
        };
        Trace {
            name: "MINI".into(),
            server,
            duration: SimDuration::from_hours(1),
            doc_sizes: vec![
                ByteSize::from_kib(10),
                ByteSize::from_kib(20),
                ByteSize::from_kib(99), // never requested
            ],
            records: vec![
                mk(1, 1, 0),
                mk(2, 2, 0),
                mk(3, 1, 0), // repeat view: popularity counts distinct clients
                mk(4, 1, 1),
            ],
        }
    }

    #[test]
    fn summary_counts_distinct_clients_per_doc() {
        let s = TraceSummary::of(&mini_trace());
        assert_eq!(s.total_requests, 4);
        assert_eq!(s.num_files, 2, "unrequested files excluded");
        assert_eq!(s.max_popularity, 2);
        assert!((s.avg_popularity - 1.5).abs() < 1e-12);
        assert_eq!(s.num_clients, 2);
        assert_eq!(s.avg_file_size, ByteSize::from_kib(15));
    }

    #[test]
    fn empty_trace_summary() {
        let t = Trace {
            name: "EMPTY".into(),
            server: ServerId::new(0),
            duration: SimDuration::from_hours(1),
            doc_sizes: vec![],
            records: vec![],
        };
        let s = TraceSummary::of(&t);
        assert_eq!(s.total_requests, 0);
        assert_eq!(s.num_files, 0);
        assert_eq!(s.max_popularity, 0);
        assert_eq!(s.avg_popularity, 0.0);
        assert_eq!(s.avg_file_size, ByteSize::ZERO);
    }

    #[test]
    fn display_is_one_line() {
        let s = TraceSummary::of(&mini_trace());
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("MINI"));
        assert!(!TraceSummary::header().is_empty());
    }
}
