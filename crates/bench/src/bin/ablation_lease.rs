//! Ablation A3: lease-duration sweep.
//!
//! §6: "if the lease is three days, the total size of site lists is bounded
//! by the total number of requests seen by the server for the last three
//! days" — shorter leases trade site-list storage and invalidation fan-out
//! for extra `If-Modified-Since` revalidations. This sweep quantifies the
//! trade-off on the 8-day SASK trace.

use wcc_bench::{parse_jobs, parse_scale, TABLE_SEED};
use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_replay::{run_batch, ExperimentConfig};
use wcc_traces::TraceSpec;
use wcc_types::SimDuration;

fn main() {
    let scale = parse_scale(std::env::args());
    println!("=== Ablation A3: lease-duration sweep (SASK, scale 1/{scale}) ===\n");
    println!(
        "{:<12}{:>12}{:>12}{:>14}{:>14}{:>12}{:>12}",
        "lease", "entries", "storage", "invalidations", "IMS", "messages", "violations"
    );
    let leases = [
        ("1h", SimDuration::from_hours(1)),
        ("6h", SimDuration::from_hours(6)),
        ("1d", SimDuration::from_days(1)),
        ("3d", SimDuration::from_days(3)),
        ("8d", SimDuration::from_days(8)),
        ("30d", SimDuration::from_days(30)),
    ];
    let jobs = parse_jobs(std::env::args());
    // The whole sweep (plus the infinite-lease anchor) fans out as one batch.
    let mut configs: Vec<ExperimentConfig> = leases
        .iter()
        .map(|(_, lease)| {
            ExperimentConfig::builder(TraceSpec::sask().scaled_down(scale))
                .protocol_config(
                    ProtocolConfig::new(ProtocolKind::LeaseInvalidation).with_lease(*lease),
                )
                .mean_lifetime(SimDuration::from_days(14))
                .seed(TABLE_SEED)
                .build()
        })
        .collect();
    configs.push(
        ExperimentConfig::builder(TraceSpec::sask().scaled_down(scale))
            .protocol(ProtocolKind::Invalidation)
            .mean_lifetime(SimDuration::from_days(14))
            .seed(TABLE_SEED)
            .build(),
    );
    let mut reports = run_batch(&configs, jobs);
    let plain = reports.pop().expect("anchor report");
    for ((label, _), r) in leases.iter().zip(&reports) {
        println!(
            "{:<12}{:>12}{:>12}{:>14}{:>14}{:>12}{:>12}",
            label,
            r.raw.sitelist.total_entries,
            r.raw.sitelist.storage.to_string(),
            r.raw.invalidations,
            r.raw.ims,
            r.raw.total_messages,
            r.raw.final_violations,
        );
    }
    println!(
        "{:<12}{:>12}{:>12}{:>14}{:>14}{:>12}{:>12}",
        "infinite",
        plain.raw.sitelist.total_entries,
        plain.raw.sitelist.storage.to_string(),
        plain.raw.invalidations,
        plain.raw.ims,
        plain.raw.total_messages,
        plain.raw.final_violations,
    );
    println!(
        "\nExpected shape: entries/storage grow monotonically with the lease;\n\
         IMS shrinks as the lease grows; consistency violations stay zero at\n\
         every point (leases are a *strong*-consistency mechanism)."
    );
}
