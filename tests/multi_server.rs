//! Multi-server deployments: several origins, one shared proxy fleet.
//! Exercises the `ServerId` scoping the protocols are written against.

use wcc_core::{ProtocolConfig, ProtocolKind};
use wcc_httpsim::{Deployment, DeploymentOptions};
use wcc_simnet::FaultPlan;
use wcc_traces::{synthetic, ModSchedule, Trace, TraceSpec};
use wcc_types::{ServerId, SimDuration, SimTime};

fn workloads() -> Vec<(Trace, ModSchedule)> {
    let spec_a = TraceSpec::epa().scaled_down(150);
    let spec_b = TraceSpec::sdsc().scaled_down(150);
    let trace_a = synthetic::generate(&spec_a, 131).reassign_server(ServerId::new(0));
    let trace_b = synthetic::generate(&spec_b, 132).reassign_server(ServerId::new(1));
    let mods_a = ModSchedule::generate(
        spec_a.num_docs,
        SimDuration::from_hours(8),
        spec_a.duration,
        131,
    );
    let mods_b = ModSchedule::generate(
        spec_b.num_docs,
        SimDuration::from_hours(8),
        spec_b.duration,
        132,
    );
    vec![(trace_a, mods_a), (trace_b, mods_b)]
}

fn build(kind: ProtocolKind) -> Deployment {
    Deployment::build_multi(
        &workloads(),
        &ProtocolConfig::new(kind),
        DeploymentOptions::default(),
    )
}

#[test]
fn two_origins_serve_their_own_documents() {
    let loads = workloads();
    let total_requests: u64 = loads.iter().map(|(t, _)| t.records.len() as u64).sum();
    let mut d = build(ProtocolKind::Invalidation);
    d.run();
    let r = d.collect();
    assert!(r.finished);
    assert_eq!(r.requests, total_requests);
    assert_eq!(r.gets + r.ims, r.replies_200 + r.replies_304);
    assert_eq!(r.final_violations, 0);
    assert!(r.writes_complete);
    // Each origin handled only its own trace's traffic.
    for (i, (trace, _)) in loads.iter().enumerate() {
        let origin = d.origin_at(i);
        let c = origin.counters();
        assert!(c.gets + c.ims <= trace.records.len() as u64 + 64);
        assert!(c.gets + c.ims > 0, "origin {i} idle");
        assert_eq!(origin.consistency().server(), ServerId::new(i as u32));
    }
}

#[test]
fn trio_ordering_survives_multiple_servers() {
    let mut totals = Vec::new();
    for kind in ProtocolKind::PAPER_TRIO {
        let mut d = build(kind);
        d.run();
        let r = d.collect();
        assert!(r.finished, "{kind}");
        totals.push((kind, r.total_messages));
    }
    let poll = totals
        .iter()
        .find(|(k, _)| *k == ProtocolKind::PollEveryTime)
        .expect("poll")
        .1;
    let inval = totals
        .iter()
        .find(|(k, _)| *k == ProtocolKind::Invalidation)
        .expect("inval")
        .1;
    assert!(poll > inval, "poll {poll} vs inval {inval}");
}

#[test]
fn server_crash_is_scoped_to_that_server() {
    // Crash origin 1 mid-run; its recovery bulk-invalidates only *its*
    // documents. Server 0's promised-fresh copies must survive untouched.
    let mut d = build(ProtocolKind::Invalidation);
    // Rough placement: a dry run is overkill here; crash well inside the
    // replay using a generous wall estimate.
    let probe = {
        let mut probe = build(ProtocolKind::Invalidation);
        probe.run();
        probe.collect().wall_duration
    };
    let from = SimTime::ZERO + probe.mul_f64(0.3);
    let to = SimTime::ZERO + probe.mul_f64(0.5);
    d.apply_faults(&FaultPlan::new().outage(d.origin_ids()[1], from, to));
    d.run();
    let r = d.collect();
    assert!(r.finished);
    assert_eq!(r.final_violations, 0);
    assert_eq!(
        r.bulk_invalidations, 4,
        "one bulk INVALIDATE per proxy, from the crashed origin only"
    );
    // Some server-0 entries are still promised fresh (not marked
    // questionable by server 1's recovery).
    let mut live_server0 = 0;
    let mut questionable_server1 = 0;
    for i in 0..4 {
        for (key, entry) in d.proxy(i).cache().iter() {
            match key.url().server().index() {
                0 if !entry.freshness.questionable => live_server0 += 1,
                1 if entry.freshness.questionable => questionable_server1 += 1,
                _ => {}
            }
        }
    }
    assert!(live_server0 > 0, "server-0 promises must survive");
    assert!(
        questionable_server1 > 0,
        "server-1 recovery must have marked its entries"
    );
}

#[test]
fn multi_server_replays_are_deterministic() {
    let run = || {
        let mut d = build(ProtocolKind::LeaseInvalidation);
        d.run();
        d.collect()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.latency.max(), b.latency.max());
}
