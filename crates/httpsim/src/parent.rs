//! A parent (second-tier) proxy cache — the hierarchical-caching extension.
//!
//! The paper's §2 notes that Worrell's thesis found invalidation attractive
//! *given* a caching hierarchy, "which significantly reduces the overhead
//! for invalidation", but evaluates only the flat case because "hierarchical
//! caches are not yet widely present". This node supplies the missing tier:
//! child proxies fetch through it, so the origin's site list holds a single
//! entry per document (the parent) and one `INVALIDATE` per modification
//! fans out down the tree instead of across every client site.
//!
//! The parent is both halves of the protocol at once: a
//! [`ProxyPolicy`] + cache towards the origin, and a
//! [`ServerConsistency`] (site lists, leases, pending acks) towards its
//! children — the same state machines as everywhere else in the workspace.

use crate::cost::CostModel;
use crate::SimMsg;
use wcc_cache::CacheStore;
use wcc_core::{ProtocolConfig, ProxyAction, ProxyPolicy, ServerConsistency};
use wcc_proto::{GetRequest, HttpMsg, Message, Reply, ReplyStatus, RequestId};
use wcc_simnet::{Ctx, Node};
use wcc_types::{Body, ByteSize, ClientId, DocMeta, FxHashMap, NodeId, SimTime, Url};

/// Counters the parent maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParentCounters {
    /// Requests received from children.
    pub child_requests: u64,
    /// Of those, served from the parent cache without contacting the origin.
    pub parent_hits: u64,
    /// Requests forwarded upstream.
    pub upstream_gets: u64,
    /// Upstream `If-Modified-Since` requests.
    pub upstream_ims: u64,
    /// `INVALIDATE`s received from the origin.
    pub invalidations_received: u64,
    /// `INVALIDATE`s relayed to children.
    pub invalidations_relayed: u64,
    /// Upstream replies discarded because an `INVALIDATE` overtook them.
    pub inval_races: u64,
    /// Bytes sent by the parent (up + down).
    pub bytes_sent: ByteSize,
}

#[derive(Debug)]
struct PendingUpstream {
    child: NodeId,
    original: GetRequest,
    /// An `INVALIDATE` arrived while this upstream request was in flight;
    /// the reply must be discarded and refetched (callback-race rule).
    invalidated: bool,
}

/// The parent-tier node. Wired by
/// [`Deployment`](crate::Deployment) when hierarchy mode is enabled.
#[derive(Debug)]
pub struct ParentNode {
    /// The identity this parent presents to the origin.
    identity: ClientId,
    policy: ProxyPolicy,
    cache: CacheStore,
    /// Child-facing protocol half: per-document lists of child sites.
    children_state: ServerConsistency,
    /// Child identity → child node, for invalidation routing.
    child_routes: FxHashMap<ClientId, NodeId>,
    origin: NodeId,
    costs: CostModel,
    doc_scale: u64,
    pending: FxHashMap<RequestId, PendingUpstream>,
    next_req: RequestId,
    /// Latest trace time observed (used for child-lease decisions on
    /// invalidation relays, which carry no timestamp).
    trace_now: SimTime,
    /// Hit reports from children that arrived while the parent held no
    /// copy of the document (e.g. on an invalidation ack after the parent's
    /// own copy was dropped); drained onto the next upstream request.
    orphan_reports: FxHashMap<Url, u64>,
    pub(crate) counters: ParentCounters,
}

impl ParentNode {
    pub(crate) fn new(
        identity: ClientId,
        cfg: &ProtocolConfig,
        cache: CacheStore,
        costs: CostModel,
        doc_scale: u64,
        server: wcc_types::ServerId,
    ) -> Self {
        ParentNode {
            identity,
            policy: ProxyPolicy::new(cfg),
            cache,
            children_state: ServerConsistency::new(cfg, server),
            child_routes: FxHashMap::default(),
            origin: NodeId::new(0),
            costs,
            doc_scale,
            pending: FxHashMap::default(),
            next_req: RequestId::default(),
            trace_now: SimTime::ZERO,
            orphan_reports: FxHashMap::default(),
            counters: ParentCounters::default(),
        }
    }

    pub(crate) fn wire(&mut self, origin: NodeId, routes: FxHashMap<ClientId, NodeId>) {
        self.origin = origin;
        self.child_routes = routes;
    }

    /// Parent counters.
    pub fn counters(&self) -> &ParentCounters {
        &self.counters
    }

    /// The child-facing protocol state (site lists towards children).
    pub fn children_state(&self) -> &ServerConsistency {
        &self.children_state
    }

    /// The parent's own cache.
    pub fn cache(&self) -> &CacheStore {
        &self.cache
    }

    /// The parent's upstream-facing policy (for end-of-run assertions).
    pub fn policy(&self) -> &ProxyPolicy {
        &self.policy
    }

    fn parent_key(&self, url: Url) -> wcc_types::ScopedUrl {
        url.scoped(self.identity)
    }

    /// Folds a downstream hit report into this tier: onto the cached entry
    /// when present, otherwise into the orphan buffer so it still reaches
    /// the origin on the next upstream request.
    fn absorb_report(&mut self, url: Url, hits: u64) {
        if hits == 0 {
            return;
        }
        let key = self.parent_key(url);
        if self.cache.peek(key).is_some() {
            self.cache.add_unreported_hits(key, hits);
        } else {
            *self.orphan_reports.entry(url).or_default() += hits;
        }
    }

    /// The full report to attach to an upstream request for `url`.
    fn drain_report(&mut self, url: Url, own: u64) -> u64 {
        own + self.orphan_reports.remove(&url).unwrap_or(0)
    }

    fn send(&mut self, to: NodeId, msg: HttpMsg, ctx: &mut Ctx<'_, SimMsg>) {
        let size = msg.wire_size();
        self.counters.bytes_sent += size;
        ctx.send(to, SimMsg::Net(Message::Http(msg)), size);
    }

    /// Answers `get` from the parent's cached copy `meta`, registering the
    /// child and granting it a lease through the child-facing half.
    fn reply_from_cache(
        &mut self,
        child: NodeId,
        get: &GetRequest,
        meta: DocMeta,
        ctx: &mut Ctx<'_, SimMsg>,
    ) {
        let grant = self
            .children_state
            .on_get(get.url, get.client, get.ims, meta, get.issued_at);
        let status = if grant.send_body {
            ctx.consume(self.costs.serve_200_cpu(meta.size()));
            ReplyStatus::Ok(Body::synthetic(meta, self.doc_scale))
        } else {
            ctx.consume(self.costs.serve_304);
            ReplyStatus::NotModified
        };
        let reply = HttpMsg::Reply(Reply {
            req: get.req,
            url: get.url,
            client: get.client,
            status,
            lease: grant.lease,
            piggyback: grant.piggyback,
            volume_lease: grant.volume_lease,
        });
        self.send(child, reply, ctx);
    }

    fn handle_child_get(&mut self, child: NodeId, get: GetRequest, ctx: &mut Ctx<'_, SimMsg>) {
        ctx.consume(self.costs.request_parse);
        self.counters.child_requests += 1;
        self.trace_now = self.trace_now.max(get.issued_at);
        let key = self.parent_key(get.url);
        // Fold the child cache's hit report into this tier's counter so it
        // propagates to the origin on the parent's next upstream contact.
        self.absorb_report(get.url, get.cache_hits);
        let disposition = self.policy.on_request(key, get.issued_at, &mut self.cache);
        match disposition.action {
            ProxyAction::ServeFromCache => {
                self.counters.parent_hits += 1;
                let meta = self.cache.peek(key).expect("parent hit implies entry").meta;
                self.reply_from_cache(child, &get, meta, ctx);
            }
            ProxyAction::SendGet { ims } => {
                let req = self.next_req;
                self.next_req = self.next_req.next();
                if ims.is_some() {
                    self.counters.upstream_ims += 1;
                } else {
                    self.counters.upstream_gets += 1;
                }
                let upstream = HttpMsg::Get(GetRequest {
                    req,
                    url: get.url,
                    client: self.identity,
                    ims,
                    issued_at: get.issued_at,
                    cache_hits: self.drain_report(get.url, disposition.report_hits),
                });
                self.pending.insert(
                    req,
                    PendingUpstream {
                        child,
                        original: get,
                        invalidated: false,
                    },
                );
                let origin = self.origin;
                self.send(origin, upstream, ctx);
            }
        }
    }

    /// Forwards a plain refetch upstream for a pending child request.
    fn refetch_upstream(&mut self, child: NodeId, original: GetRequest, ctx: &mut Ctx<'_, SimMsg>) {
        let req = self.next_req;
        self.next_req = self.next_req.next();
        self.counters.upstream_gets += 1;
        let url = original.url;
        let issued_at = original.issued_at;
        self.pending.insert(
            req,
            PendingUpstream {
                child,
                original,
                invalidated: false,
            },
        );
        let upstream = HttpMsg::Get(GetRequest {
            req,
            url,
            client: self.identity,
            ims: None,
            issued_at,
            cache_hits: 0,
        });
        let origin = self.origin;
        self.send(origin, upstream, ctx);
    }

    fn handle_upstream_reply(&mut self, reply: Reply, ctx: &mut Ctx<'_, SimMsg>) {
        let Some(PendingUpstream {
            child,
            original,
            invalidated,
        }) = self.pending.remove(&reply.req)
        else {
            return;
        };
        if invalidated {
            // The INVALIDATE overtook this reply: refetch the fresh version
            // rather than caching (and leasing out) a stale one.
            self.counters.inval_races += 1;
            self.refetch_upstream(child, original, ctx);
            return;
        }
        let key = self.parent_key(reply.url);
        self.policy.on_volume_grant(key, reply.volume_lease);
        let now = original.issued_at;
        let meta = match reply.status {
            ReplyStatus::Ok(body) => {
                self.policy
                    .on_reply_200(key, body.meta(), reply.lease, now, &mut self.cache);
                body.meta()
            }
            ReplyStatus::NotModified => {
                if !self
                    .policy
                    .on_reply_304(key, reply.lease, now, &mut self.cache)
                {
                    // Parent copy evicted mid-validation: refetch upstream
                    // as a plain GET for the waiting child.
                    self.refetch_upstream(child, original, ctx);
                    return;
                }
                self.cache.peek(key).expect("validated entry").meta
            }
        };
        self.reply_from_cache(child, &original, meta, ctx);
    }

    fn handle_invalidate(&mut self, url: Url, ctx: &mut Ctx<'_, SimMsg>) {
        ctx.consume(self.costs.proxy_inval_cpu);
        self.counters.invalidations_received += 1;
        // Callback race: poison any in-flight upstream request for this
        // document — its reply may predate the modification.
        for pending in self.pending.values_mut() {
            if pending.original.url == url {
                pending.invalidated = true;
            }
        }
        // Drop the parent copy and ack the origin, reporting the dying
        // copy's unreported hits (§7 metering).
        let own = self
            .policy
            .on_invalidate(url, self.identity, &mut self.cache)
            .unwrap_or(0);
        let deleted_hits = self.drain_report(url, own);
        let ack = HttpMsg::InvalAck {
            url,
            client: self.identity,
            cache_hits: deleted_hits,
        };
        let origin = self.origin;
        self.send(origin, ack, ctx);
        // Relay down the tree: only children holding live-leased copies.
        let recipients = self.children_state.on_modify(url, self.trace_now);
        for child_identity in recipients {
            let Some(&node) = self.child_routes.get(&child_identity) else {
                continue;
            };
            ctx.consume(self.costs.inval_send);
            self.counters.invalidations_relayed += 1;
            let msg = HttpMsg::Invalidate {
                url,
                client: child_identity,
            };
            self.send(node, msg, ctx);
        }
    }
}

impl Node<SimMsg> for ParentNode {
    fn on_message(&mut self, from: NodeId, msg: SimMsg, ctx: &mut Ctx<'_, SimMsg>) {
        match msg {
            SimMsg::Net(Message::Http(HttpMsg::Get(get))) => self.handle_child_get(from, get, ctx),
            SimMsg::Net(Message::Http(HttpMsg::Reply(reply))) => {
                self.handle_upstream_reply(reply, ctx)
            }
            SimMsg::Net(Message::Http(HttpMsg::Invalidate { url, .. })) => {
                self.handle_invalidate(url, ctx)
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalidateBatch { entries, .. })) => {
                // A coalesced round from the origin: each entry gets the
                // full per-copy treatment (drop, §7 report, per-copy ack,
                // relay down the tree).
                for entry in entries {
                    self.handle_invalidate(entry.url, ctx);
                }
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalAck {
                url,
                client,
                cache_hits,
            })) => {
                // Fold the child's dying-copy report into the parent's own
                // counter so it reaches the origin eventually.
                self.absorb_report(url, cache_hits);
                self.children_state.on_inval_ack(url, client);
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalidateServer { server })) => {
                ctx.consume(self.costs.proxy_inval_cpu);
                self.policy.on_invalidate_server(server, &mut self.cache);
                let relay_targets: Vec<NodeId> = {
                    let mut v: Vec<NodeId> = self.child_routes.values().copied().collect();
                    v.sort_unstable();
                    v
                };
                for node in relay_targets {
                    self.send(node, HttpMsg::InvalidateServer { server }, ctx);
                }
                // Ack once the parent itself has applied the bulk
                // invalidation; relaying to children is best-effort (their
                // copies are already marked questionable here).
                self.send(from, HttpMsg::InvalidateServerAck { server }, ctx);
            }
            SimMsg::Net(Message::Http(HttpMsg::InvalidateServerAck { .. })) => {
                // A child acking the relayed bulk invalidation; the origin's
                // retry loop only tracks its direct peers, so nothing to do.
            }
            // Parents sit outside the coordinator barrier and never see
            // these; spelled out (no `_`) so a new wire variant is a
            // compile error and a lint finding here.
            other @ (SimMsg::Net(Message::Http(
                HttpMsg::Hello { .. }
                | HttpMsg::MetricsGet
                | HttpMsg::Notify { .. }
                | HttpMsg::InvalidateBatchAck { .. },
            ))
            | SimMsg::Net(Message::Coord(_))
            | SimMsg::Dispatch { .. }) => {
                debug_assert!(false, "parent got unexpected message {other:?}");
            }
        }
    }
}
