//! Identifiers for clients, servers and simulation nodes.

use core::fmt;

/// The identity of a *real* browsing client.
///
/// The paper assigns every real client a "clientid, which is a 32-byte
/// integer concatenating the four bytes in its IP address" (§5.1 — the text
/// plainly means 32-*bit*). Requests carry the `ClientId` so the accelerator
/// can register the site in its invalidation table, and proxies scope cache
/// entries per real client (`url@clientid`) to simulate unshared caches.
///
/// # Examples
///
/// ```
/// use wcc_types::ClientId;
///
/// let c = ClientId::from_ip([192, 168, 0, 7]);
/// assert_eq!(u32::from(c), 0xC0A8_0007);
/// assert_eq!(c.to_string(), "192.168.0.7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from the four bytes of an IPv4 address.
    pub const fn from_ip(octets: [u8; 4]) -> Self {
        ClientId(u32::from_be_bytes(octets))
    }

    /// Creates a client id from a raw 32-bit value.
    pub const fn from_raw(raw: u32) -> Self {
        ClientId(raw)
    }

    /// The four IPv4 octets this id concatenates.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The pseudo-client partition this real client is handled by, following
    /// the paper's scheme: "pseudo-client *i* handles real clients whose
    /// clientid mod 4 is *i*", generalised to `n` pseudo-clients.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn partition(self, n: u32) -> u32 {
        assert!(n > 0, "partition count must be positive");
        self.0 % n
    }

    /// The element of `targets` that handles this client under the paper's
    /// partition scheme — the single implementation every fan-out path
    /// (direct, decoupled sender, batched proposer) routes through, so the
    /// client→proxy mapping cannot drift between them.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn assigned<T>(self, targets: &[T]) -> &T {
        assert!(!targets.is_empty(), "partition count must be positive");
        &targets[self.partition(targets.len() as u32) as usize]
    }
}

impl From<ClientId> for u32 {
    fn from(id: ClientId) -> u32 {
        id.0
    }
}

impl From<u32> for ClientId {
    fn from(raw: u32) -> ClientId {
        ClientId(raw)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientId({self})")
    }
}

impl core::str::FromStr for ClientId {
    type Err = ParseClientIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or(ParseClientIdError)?;
            *slot = part.parse().map_err(|_| ParseClientIdError)?;
        }
        if parts.next().is_some() {
            return Err(ParseClientIdError);
        }
        Ok(ClientId::from_ip(octets))
    }
}

/// Error returned when parsing a dotted-quad [`ClientId`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseClientIdError;

impl fmt::Display for ParseClientIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dotted-quad client id")
    }
}

impl std::error::Error for ParseClientIdError {}

/// The identity of an origin Web server (one per trace in the paper's
/// experiments, but the protocols support many).
///
/// # Examples
///
/// ```
/// use wcc_types::ServerId;
///
/// let s = ServerId::new(0);
/// assert_eq!(s.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id from a dense index.
    pub const fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// The dense index of this server.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServerId({})", self.0)
    }
}

/// The address of a node (an actor) inside the discrete-event simulator:
/// pseudo-clients, the pseudo-server, the accelerator, the time coordinator
/// and the modifier process are all nodes.
///
/// # Examples
///
/// ```
/// use wcc_types::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "node3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index assigned by the simulator.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_id_ip_round_trip() {
        let c = ClientId::from_ip([10, 0, 42, 255]);
        assert_eq!(c.octets(), [10, 0, 42, 255]);
        assert_eq!(c.to_string(), "10.0.42.255");
    }

    #[test]
    fn client_id_parse() {
        let c: ClientId = "128.105.2.17".parse().unwrap();
        assert_eq!(c, ClientId::from_ip([128, 105, 2, 17]));
        assert!("1.2.3".parse::<ClientId>().is_err());
        assert!("1.2.3.4.5".parse::<ClientId>().is_err());
        assert!("1.2.3.999".parse::<ClientId>().is_err());
        assert!("a.b.c.d".parse::<ClientId>().is_err());
    }

    #[test]
    fn partitioning_matches_paper_scheme() {
        // "Pseudo-client i handles real clients whose clientid mod 4 is i."
        let c = ClientId::from_raw(10);
        assert_eq!(c.partition(4), 2);
        let c = ClientId::from_raw(7);
        assert_eq!(c.partition(4), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn partition_zero_panics() {
        ClientId::from_raw(1).partition(0);
    }

    #[test]
    fn assigned_matches_partition() {
        let targets = ["p0", "p1", "p2"];
        for raw in 0..16u32 {
            let c = ClientId::from_raw(raw);
            assert_eq!(
                *c.assigned(&targets),
                targets[c.partition(3) as usize],
                "client {raw}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn assigned_empty_panics() {
        let empty: [u8; 0] = [];
        ClientId::from_raw(1).assigned(&empty);
    }

    #[test]
    fn node_and_server_display() {
        assert_eq!(NodeId::new(5).to_string(), "node5");
        assert_eq!(ServerId::new(2).to_string(), "server2");
        assert_eq!(format!("{:?}", NodeId::new(5)), "NodeId(5)");
    }
}
