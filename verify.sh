#!/usr/bin/env sh
# Tier-1 verification: style, lints, release build, full test suite, repo
# hygiene lint, fuzz + bench smoke. Any failing step fails the script.
#
# This mirrors the CI matrix (.github/workflows/ci.yml) in one process:
#   lint job  -> rustfmt --check, clippy -D warnings, xtask-lint
#   test job  -> release build + root and workspace test suites
#                (CI also repeats the test job on beta)
#   serve job -> `wcc serve --self-check` + a reduced `wcc bench serve`
#                (CI runs 1000 connections and gates the JSON report)
#   bench job -> trajectory run + the bench-regression gate, which compares
#                against ci/bench-baseline.json: deterministic fields exact,
#                wall-clock timings within ±15% (plus 100 ms grace)
# The gate itself is CI-only — local hardware differs too much for the
# timing comparison to be meaningful — but the trajectory smoke run below
# still proves the harness and its byte-identity check work.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> xtask-lint"
cargo run --quiet --bin xtask-lint

echo "==> xtask-lint --waivers (stale-waiver audit)"
cargo run --quiet --bin xtask-lint -- --waivers

echo "==> wcc fuzz (smoke)"
./target/release/wcc fuzz --iters 25 --seed 1 --shrink

echo "==> wcc replay --shards 2 (smoke)"
# Single-trace sharded replay: drives the arena-allocated event path and
# the batched cross-shard window delivery end to end.
./target/release/wcc replay --trace epa --protocol invalidation --scale 20 --shards 2

echo "==> wcc replay --inval-batch 8 (smoke)"
# Batched invalidation proposer: per-write fan-out coalesced into
# InvalidateBatch rounds (count threshold 8) with adaptive per-document
# leases; the replay must still report zero consistency violations.
./target/release/wcc replay --trace epa --protocol invalidation --scale 20 \
  --inval-batch 8 --adaptive-lease

echo "==> wcc replay --family (smoke)"
# Scenario-family path: the flash-crowd federation replayed sharded. The
# nightly workflow sweeps all five families sequential-vs-sharded; this
# just proves the family generator and multi-origin replay path run.
./target/release/wcc replay --family flash-crowd --scale 20 --shards 2

echo "==> wcc serve --self-check (smoke)"
# Serving-tier self-check: spawn an origin+proxy daemon pair, push two
# pipelined GETs over a real socket, scrape /metrics, shut down cleanly.
timeout 60 ./target/release/wcc serve --self-check

echo "==> wcc bench serve (smoke)"
# 64 keep-alive connections through the readiness reactor; exits non-zero
# on any stale serve. CI's serve job runs the same bench at 1000
# connections and gates the JSON report.
timeout 120 ./target/release/wcc bench serve --connections 64 --requests 8 --in-process >/dev/null

echo "==> bench trajectory (smoke)"
# Exits non-zero if the fanned-out or sharded grid diverges from the
# sequential run.
./target/release/trajectory --scale 100 --shards 2 --out /tmp/BENCH_replay.smoke.json

echo "verify: OK"
