//! A multi-server federation: one proxy fleet caching for three origins,
//! each with its own trace and churn, under the invalidation protocol.
//!
//! ```sh
//! cargo run --release --example federation
//! ```

use webcache::core::{ProtocolConfig, ProtocolKind};
use webcache::httpsim::{Deployment, DeploymentOptions};
use webcache::traces::{synthetic, ModSchedule, TraceSpec};
use webcache::types::{ServerId, SimDuration};

fn main() {
    // Three origins with different characters: big-file NASA, busy
    // ClarkNet, slow-churn EPA.
    let specs = [
        (TraceSpec::nasa().scaled_down(40), SimDuration::from_days(2)),
        (
            TraceSpec::clarknet().scaled_down(40),
            SimDuration::from_hours(8),
        ),
        (TraceSpec::epa().scaled_down(40), SimDuration::from_days(10)),
    ];
    let workloads: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, (spec, lifetime))| {
            let trace =
                synthetic::generate(spec, 40 + i as u64).reassign_server(ServerId::new(i as u32));
            let mods =
                ModSchedule::generate(spec.num_docs, *lifetime, spec.duration, 40 + i as u64);
            (trace, mods)
        })
        .collect();

    let cfg = ProtocolConfig::new(ProtocolKind::Invalidation);
    let mut deployment = Deployment::build_multi(&workloads, &cfg, DeploymentOptions::default());
    deployment.run();
    let r = deployment.collect();

    println!(
        "federated replay: {} requests across 3 origins\n",
        r.requests
    );
    println!(
        "{:<10}{:>10}{:>8}{:>14}{:>14}",
        "origin", "requests", "mods", "invalidations", "site storage"
    );
    for (i, (trace, mods)) in workloads.iter().enumerate() {
        let origin = deployment.origin_at(i);
        let c = origin.counters();
        println!(
            "{:<10}{:>10}{:>8}{:>14}{:>14}",
            trace.name,
            trace.records.len(),
            mods.modifications().len(),
            c.invalidations_sent,
            origin.consistency().table().stats().storage.to_string(),
        );
    }
    println!(
        "\ntotals: {} messages · {} · strong consistency: {} violations, \
         writes complete = {}",
        r.total_messages, r.total_bytes, r.final_violations, r.writes_complete
    );
    assert_eq!(r.final_violations, 0);
}
