//! Ablation A2: Harvest's expired-first replacement vs. pure LRU, under
//! adaptive TTL with a constrained cache.
//!
//! §5.2 explains SASK's depressed adaptive-TTL hit ratio: "Harvest's
//! implementation of adaptive TTL replaces expired documents first. Coupled
//! with adaptive TTL's conservative estimate of the file's lifetime, this
//! policy can create undesirable effects" — a just-modified, soon-reaccessed
//! document gets a short TTL and becomes the first eviction victim.
//!
//! The effect requires requests that *revisit just-modified documents*, so
//! this ablation applies the generator's modification-interest rewriter
//! (`wcc_traces::synthetic::with_modification_interest`) before replaying.

// Building options by mutating a default is the intended style here.
#![allow(clippy::field_reassign_with_default)]

use wcc_bench::parse_jobs;
use wcc_bench::{parse_scale, TABLE_SEED};
use wcc_cache::ReplacementPolicy;
use wcc_core::ProtocolKind;
use wcc_httpsim::DeploymentOptions;
use wcc_replay::experiment::run_on;
use wcc_replay::{effective_jobs, parallel, ExperimentConfig, ReplayReport};
use wcc_traces::{synthetic, ModSchedule, Trace, TraceSpec};
use wcc_types::{ByteSize, SimDuration};

fn workload(scale: u64) -> (Trace, ModSchedule) {
    let spec = TraceSpec::sask().scaled_down(scale);
    // Brisk churn: short TTL estimates dominate the cache.
    let lifetime = SimDuration::from_days(2);
    let trace = synthetic::generate(&spec, TABLE_SEED);
    let mods = ModSchedule::generate(spec.num_docs, lifetime, spec.duration, TABLE_SEED);
    // 35% of requests within 6 hours of a modification chase that document.
    let hot = synthetic::with_modification_interest(
        &trace,
        &mods,
        0.35,
        SimDuration::from_hours(6),
        TABLE_SEED,
    );
    (hot, mods)
}

fn config(policy: ReplacementPolicy, kind: ProtocolKind, scale: u64) -> ExperimentConfig {
    let mut options = DeploymentOptions::default();
    options.replacement = policy;
    // Constrain the cache so replacement decisions matter (per proxy).
    options.cache_capacity = ByteSize::from_mib((8 / scale).max(1));
    ExperimentConfig::builder(TraceSpec::sask())
        .protocol(kind)
        .seed(TABLE_SEED)
        .options(options)
        .build()
}

fn main() {
    let scale = parse_scale(std::env::args());
    println!(
        "=== Ablation A2: replacement policy under a constrained cache \
         (SASK + modification-interest, scale 1/{scale}) ===\n"
    );
    let (trace, mods) = workload(scale);
    let kinds = [ProtocolKind::AdaptiveTtl, ProtocolKind::Invalidation];
    // All four (policy, protocol) replays share the rewritten workload and
    // fan out together.
    let configs: Vec<ExperimentConfig> = kinds
        .iter()
        .flat_map(|&kind| {
            [ReplacementPolicy::ExpiredFirstLru, ReplacementPolicy::Lru]
                .map(|policy| config(policy, kind, scale))
        })
        .collect();
    let jobs = effective_jobs(parse_jobs(std::env::args()));
    let reports: Vec<ReplayReport> =
        parallel::map_indexed(&configs, jobs, |cfg| run_on(cfg, &trace, &mods));
    for (kind, pair) in kinds.iter().zip(reports.chunks(2)) {
        let kind = *kind;
        let (expired_first, lru) = (&pair[0], &pair[1]);
        println!("--- protocol: {kind} ---");
        println!("{:<26}{:>16}{:>16}", "", "expired-first", "pure LRU");
        println!(
            "{:<26}{:>15.2}%{:>15.2}%",
            "Hit ratio",
            expired_first.raw.hit_ratio() * 100.0,
            lru.raw.hit_ratio() * 100.0
        );
        println!(
            "{:<26}{:>16}{:>16}",
            "File transfers", expired_first.raw.replies_200, lru.raw.replies_200
        );
        println!(
            "{:<26}{:>16}{:>16}",
            "Evictions", expired_first.raw.cache_evictions, lru.raw.cache_evictions
        );
        println!(
            "{:<26}{:>16}{:>16}",
            "Expired evictions",
            expired_first.raw.cache_expired_evictions,
            lru.raw.cache_expired_evictions
        );
        println!(
            "{:<26}{:>16}{:>16}",
            "Total messages", expired_first.raw.total_messages, lru.raw.total_messages
        );
        println!(
            "{:<26}{:>16}{:>16}",
            "Stale hits", expired_first.raw.stale_hits, lru.raw.stale_hits
        );
        println!();
    }
    println!(
        "Reading the result: two effects compete under adaptive TTL. The\n\
         paper's SASK anomaly — expired-first throws away just-modified,\n\
         short-TTL documents that modification-chasing requests want next —\n\
         pushes transfers up; but expired-first also shields unexpired\n\
         popular documents that pure LRU would evict, pushing transfers\n\
         down. Which dominates depends on the workload's re-access pattern;\n\
         the policies measurably diverge only for adaptive TTL, while\n\
         invalidation (no TTL state; stale copies already deleted by\n\
         INVALIDATEs) is exactly insensitive — the paper's structural point."
    );
}
