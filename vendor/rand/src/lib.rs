//! Offline vendor shim for the `rand` crate.
//!
//! The build environment has no access to the crates registry, so this
//! workspace vendors a minimal, std-only stand-in that covers exactly the
//! API surface the workspace uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension trait (`gen`, `gen_range`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the simulation requires. It is **not** a
//! cryptographic RNG and is not stream-compatible with the real `rand`
//! crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (the shim's `RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from the "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from 64 random bits (the shim's `Standard` distribution).
pub trait Standard {
    /// Converts 64 uniform bits into a uniform value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample using `bits` as the entropy source.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening
/// multiply (Lemire reduction without the rejection step).
fn mul_reduce(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_reduce(bits(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return bits() as $t; // full 64-bit domain
                }
                start.wrapping_add(mul_reduce(bits(), span as u64) as $t)
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::from_bits_standard(bits());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f64::from_bits_standard(bits());
        start + u * (end - start)
    }
}

trait F64Bits {
    fn from_bits_standard(bits: u64) -> f64;
}

impl F64Bits for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Builds a generator from a 64-bit seed (inherent, so callers do
        /// not need the [`SeedableRng`] trait in scope).
        pub fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::seed_from_u64(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
